#!/usr/bin/env python3
"""Inline Python expressions in CWL documents (paper §V, Listings 5 and 6).

Demonstrates the two uses the paper shows:

1. an ``InlinePythonRequirement`` expression that rewrites a tool argument
   (capitalising every word of the input message before it reaches ``echo``), and
2. a per-input ``validate:`` rule that rejects a job order whose data file is not
   a CSV — before the tool ever runs.

Run from the repository root::

    python examples/inline_python_expressions.py
"""

from __future__ import annotations

import os
import tempfile

import repro
from repro.cwl.errors import InputValidationError
from repro.core.inline_python import InlinePythonRequirementError

EXAMPLES_DIR = os.path.dirname(os.path.abspath(__file__))
CWL_DIR = os.path.join(EXAMPLES_DIR, "cwl")


def main() -> None:
    repro.load(repro.thread_config(max_threads=2))
    workdir = tempfile.mkdtemp(prefix="repro-inline-python-")
    os.chdir(workdir)

    try:
        # --- Listing 5: expression rewriting an argument -----------------------
        capitalize = repro.CWLApp(os.path.join(CWL_DIR, "capitalize_python.cwl"))
        future = capitalize(message="towards combining the python and cwl ecosystems",
                            stdout="capitalized.txt")
        future.result()
        with open("capitalized.txt", encoding="utf-8") as handle:
            print("capitalised message:", handle.read().strip())

        # --- Listing 6: validate: rule on an input ------------------------------
        with open("measurements.csv", "w", encoding="utf-8") as handle:
            handle.write("sample,value\nA,1\nB,2\n")
        with open("notes.txt", "w", encoding="utf-8") as handle:
            handle.write("not a csv\n")

        validate_csv = repro.CWLApp(os.path.join(CWL_DIR, "validate_csv.cwl"))

        good = validate_csv(data_file="measurements.csv", stdout="validated.txt")
        good.result()
        print("CSV accepted; first line:",
              open("validated.txt", encoding="utf-8").readline().strip())

        bad = validate_csv(data_file="notes.txt", stdout="rejected.txt")
        try:
            bad.result()
        except (InputValidationError, InlinePythonRequirementError, Exception) as exc:
            print("non-CSV rejected before execution:", type(exc).__name__, "-", exc)
    finally:
        repro.clear()


if __name__ == "__main__":
    main()
