#!/usr/bin/env python3
"""The paper's image-processing workflow written in Parsl with imported CWL tools
(paper Listing 4).

A set of synthetic PNG images is generated, then each image is pushed through the
three-stage pipeline — resize, sepia filter, blur — by chaining CWLApps through
DataFutures.  All per-image pipelines run concurrently; Parsl interleaves stages
as their dependencies resolve.

Run from the repository root::

    python examples/image_pipeline_parsl.py [--images 8] [--executor threads|htex]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import tempfile

import repro
from repro.imaging.synthetic import generate_image_files
from repro.parsl.dataflow.futures import AppFuture

EXAMPLES_DIR = os.path.dirname(os.path.abspath(__file__))
CWL_DIR = os.path.join(EXAMPLES_DIR, "cwl")


def process_img(resize_image: repro.CWLApp, filter_image: repro.CWLApp, blur_image: repro.CWLApp,
                image: str, index: int, size: int = 128, sepia: bool = True,
                radius: int = 1) -> AppFuture:
    """One instance of the three-stage pipeline, mirroring the paper's process_img()."""
    resized = resize_image(
        input_image=image,
        size=size,
        output_image=f"resized_{index:04d}.png",
    )
    filtered = filter_image(
        input_image=resized.outputs[0],
        sepia=sepia,
        output_image=f"filtered_{index:04d}.png",
    )
    blurred = blur_image(
        input_image=filtered.outputs[0],
        radius=radius,
        output_image=f"blurred_{index:04d}.png",
    )
    return blurred


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--images", type=int, default=8, help="number of synthetic images")
    parser.add_argument("--size", type=int, default=128, help="resize target")
    parser.add_argument("--executor", choices=("threads", "htex"), default="threads")
    args = parser.parse_args()

    # Configuration and executor setup (swap for a Perlmutter/site config on a real cluster).
    if args.executor == "htex":
        repro.load(repro.htex_config(nodes=3, workers_per_node=4))
    else:
        repro.load(repro.thread_config(max_threads=8))

    workdir = tempfile.mkdtemp(prefix="repro-image-pipeline-")
    os.chdir(workdir)

    try:
        # Creating CWLApps from the CommandLineTool definitions.
        resize_image = repro.CWLApp(os.path.join(CWL_DIR, "resize_image.cwl"))
        filter_image = repro.CWLApp(os.path.join(CWL_DIR, "filter_image.cwl"))
        blur_image = repro.CWLApp(os.path.join(CWL_DIR, "blur_image.cwl"))

        # Workload: synthetic images standing in for the paper's photo directory.
        images = generate_image_files("input_images", args.images, width=96, height=96)

        # Start an instance of the workflow for every image.
        final_imgs = [
            process_img(resize_image, filter_image, blur_image, image, index, size=args.size)
            for index, image in enumerate(images)
        ]

        # Wait for results.
        concurrent.futures.wait(final_imgs, return_when=concurrent.futures.ALL_COMPLETED)
        produced = [future.outputs[0].result().filepath for future in final_imgs]
        print(f"processed {len(produced)} images in {workdir}")
        for path in produced[:5]:
            print("  ", path)
        if len(produced) > 5:
            print(f"   ... and {len(produced) - 5} more")
    finally:
        repro.clear()


if __name__ == "__main__":
    main()
