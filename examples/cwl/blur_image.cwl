cwlVersion: v1.2
class: CommandLineTool
id: blur_image
doc: Blur a PNG image with a box blur of the given radius.
baseCommand: [python3, -m, repro.imaging.cli, blur]
inputs:
  input_image:
    type: File
    inputBinding:
      position: 1
  radius:
    type: int
    default: 1
    inputBinding:
      prefix: --radius
  output_image:
    type: string
    default: blurred.png
    inputBinding:
      prefix: --output
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
