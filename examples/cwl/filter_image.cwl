cwlVersion: v1.2
class: CommandLineTool
id: filter_image
doc: Apply a sepia filter to a PNG image.
baseCommand: [python3, -m, repro.imaging.cli, filter]
inputs:
  input_image:
    type: File
    inputBinding:
      position: 1
  sepia:
    type: boolean
    default: false
    inputBinding:
      prefix: --sepia
  output_image:
    type: string
    default: filtered.png
    inputBinding:
      prefix: --output
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
