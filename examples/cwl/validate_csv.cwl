cwlVersion: v1.2
class: CommandLineTool
id: validate_csv
doc: >
  Print a data file after checking, via a per-input InlinePython validate:
  rule, that it is a CSV file (paper Listing 6).  Non-CSV job orders are
  rejected before the command ever runs.
baseCommand: cat
requirements:
  - class: InlinePythonRequirement
    expressionLib:
      - |
        def ensure_csv(data_file):
            name = data_file.get("basename") or data_file.get("path", "")
            if not str(name).endswith(".csv"):
                raise ValueError("Invalid file %r: expected a .csv data file" % name)
            return True
inputs:
  data_file:
    type: File
    validate: f"{ensure_csv($(inputs.data_file))}"
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: validated.txt
