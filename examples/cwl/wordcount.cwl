cwlVersion: v1.2
class: CommandLineTool
id: wordcount
doc: Count the words in a text file.
baseCommand: [wc, -w]
inputs:
  text_file:
    type: File
    inputBinding:
      position: 1
outputs:
  count:
    type: stdout
stdout: count.txt
