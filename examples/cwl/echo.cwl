cwlVersion: v1.2
class: CommandLineTool
id: echo
doc: Echo a message to standard output (paper Listing 1).
baseCommand: echo
inputs:
  message:
    type: string
    default: Hello World
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: hello.txt
