cwlVersion: v1.2
class: CommandLineTool
id: capitalize_python
doc: >
  Echo a message with every word capitalised by an InlinePythonRequirement
  expression (paper Listing 5).
baseCommand: echo
requirements:
  - class: InlinePythonRequirement
    expressionLib:
      - |
        def capitalize_words(message):
            return message.title()
inputs:
  message:
    type: string
outputs:
  output:
    type: stdout
stdout: capitalized.txt
arguments:
  - f"{capitalize_words($(inputs.message))}"
