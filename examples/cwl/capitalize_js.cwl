cwlVersion: v1.2
class: CommandLineTool
id: capitalize_js
doc: >
  Echo a message with every word capitalised by an InlineJavascriptRequirement
  expression — the baseline the paper compares InlinePython against (Fig. 2).
baseCommand: echo
requirements:
  - class: InlineJavascriptRequirement
    expressionLib:
      - |
        function capitalizeWords(message) {
          return message.split(" ").map(function(word) {
            if (word.length == 0) { return word; }
            return word.charAt(0).toUpperCase() + word.slice(1);
          }).join(" ");
        }
inputs:
  message:
    type: string
outputs:
  output:
    type: stdout
stdout: capitalized.txt
arguments:
  - $(capitalizeWords(inputs.message))
