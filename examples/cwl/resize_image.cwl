cwlVersion: v1.2
class: CommandLineTool
id: resize_image
doc: Resize a PNG image to a square of the requested size.
baseCommand: [python3, -m, repro.imaging.cli, resize]
inputs:
  input_image:
    type: File
    inputBinding:
      position: 1
  size:
    type: int
    inputBinding:
      prefix: --size
  output_image:
    type: string
    default: resized.png
    inputBinding:
      prefix: --output
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
