cwlVersion: v1.2
class: Workflow
id: scatter_images
doc: >
  Scatter wrapper around the image pipeline: run the three-stage pipeline for
  every image of an input array (the paper's Figure 1 workload).
requirements:
  - class: ScatterFeatureRequirement
  - class: SubworkflowFeatureRequirement
inputs:
  input_images: File[]
  size: int
  sepia: boolean
  radius: int
outputs:
  final_outputs:
    type: File[]
    outputSource: process_image/final_output
steps:
  process_image:
    run: image_pipeline.cwl
    scatter: input_image
    scatterMethod: dotproduct
    in:
      input_image: input_images
      size: size
      sepia: sepia
      radius: radius
    out: [final_output]
