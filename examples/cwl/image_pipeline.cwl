cwlVersion: v1.2
class: Workflow
id: image_pipeline
doc: >
  The paper's evaluation workflow (Listing 3): resize an image, apply a sepia
  filter, then blur the result.  Each step runs one of the image command-line
  tools; intermediate file names are fixed per step via valueFrom.
requirements:
  - class: StepInputExpressionRequirement
inputs:
  input_image: File
  size: int
  sepia: boolean
  radius: int
outputs:
  final_output:
    type: File
    outputSource: blur_image/output_image
steps:
  resize_image:
    run: resize_image.cwl
    in:
      input_image: input_image
      size: size
      output_image:
        valueFrom: resized.png
    out: [output_image]
  filter_image:
    run: filter_image.cwl
    in:
      input_image: resize_image/output_image
      sepia: sepia
      output_image:
        valueFrom: filtered.png
    out: [output_image]
  blur_image:
    run: blur_image.cwl
    in:
      input_image: filter_image/output_image
      radius: radius
      output_image:
        valueFrom: blurred.png
    out: [output_image]
