#!/usr/bin/env python3
"""Run the same CWL workflow with all three runners and compare wall-clock times.

This is a miniature, human-readable version of the paper's Figure 1 experiment:
the scatter-wrapped image-processing workflow is executed over N synthetic images
with

* the cwltool-like reference runner (``--parallel``),
* the Toil-like runner (single-machine batch system),
* the Parsl bridge (ThreadPoolExecutor), via the CWL Workflow bridge.

Run from the repository root::

    python examples/runner_comparison.py [--images 8]
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

import repro
from repro import api
from repro.cwl.runtime import RuntimeContext
from repro.imaging.synthetic import generate_image_files

EXAMPLES_DIR = os.path.dirname(os.path.abspath(__file__))
CWL_DIR = os.path.join(EXAMPLES_DIR, "cwl")


def workload(images_dir: str, count: int) -> dict:
    images = generate_image_files(images_dir, count, width=96, height=96)
    return {
        "input_images": [{"class": "File", "path": path} for path in images],
        "size": 64,
        "sepia": True,
        "radius": 1,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--images", type=int, default=8)
    parser.add_argument("--workers", type=int, default=8)
    args = parser.parse_args()

    base = tempfile.mkdtemp(prefix="repro-runner-comparison-")
    job_order = workload(os.path.join(base, "images"), args.images)
    workflow_path = os.path.join(CWL_DIR, "scatter_images.cwl")
    timings = {}

    # cwltool-like reference runner with --parallel, via the unified API.
    result = api.run(workflow_path, job_order, engine="reference",
                     runtime_context=RuntimeContext(basedir=os.path.join(base, "cwltool")),
                     parallel=True, max_workers=args.workers)
    timings["cwltool-like (--parallel)"] = result.wall_time_s

    # Toil-like runner on the single-machine batch system, via the unified API.
    result = api.run(workflow_path, job_order, engine="toil",
                     job_store_dir=os.path.join(base, "jobstore"),
                     runtime_context=RuntimeContext(basedir=os.path.join(base, "toil")),
                     max_workers=args.workers)
    timings["toil-like (single machine)"] = result.wall_time_s

    # Parsl integration: the same pipeline written as chained CWLApps (Listing 4 style —
    # the per-image sub-workflow is a nested Workflow, which the CWLWorkflowBridge does
    # not scatter, so the Parsl program drives the three CommandLineTools directly).
    import concurrent.futures

    repro.load(repro.thread_config(max_threads=args.workers))
    cwd = os.getcwd()
    parsl_dir = os.path.join(base, "parsl")
    os.makedirs(parsl_dir, exist_ok=True)
    os.chdir(parsl_dir)
    try:
        resize = repro.CWLApp(os.path.join(CWL_DIR, "resize_image.cwl"))
        filt = repro.CWLApp(os.path.join(CWL_DIR, "filter_image.cwl"))
        blur = repro.CWLApp(os.path.join(CWL_DIR, "blur_image.cwl"))
        start = time.perf_counter()
        finals = []
        for index, image in enumerate(job_order["input_images"]):
            resized = resize(input_image=image["path"], size=job_order["size"],
                             output_image=f"resized_{index}.png")
            filtered = filt(input_image=resized.outputs[0], sepia=job_order["sepia"],
                            output_image=f"filtered_{index}.png")
            finals.append(blur(input_image=filtered.outputs[0], radius=job_order["radius"],
                               output_image=f"blurred_{index}.png"))
        concurrent.futures.wait(finals)
        if any(f.exception() is not None for f in finals):
            raise RuntimeError("one or more Parsl pipelines failed")
        timings["parsl-cwl (ThreadPoolExecutor)"] = time.perf_counter() - start
    finally:
        os.chdir(cwd)
        repro.clear()

    print(f"\n{args.images} images, {args.workers} workers:")
    for name, seconds in sorted(timings.items(), key=lambda item: item[1]):
        print(f"  {name:35s} {seconds:7.2f} s")


if __name__ == "__main__":
    main()
