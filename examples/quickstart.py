#!/usr/bin/env python3
"""Quickstart: import a CWL CommandLineTool into Parsl and run it (paper Listing 2).

Run from the repository root::

    python examples/quickstart.py

The script loads a local thread-pool Parsl configuration, imports the ``echo``
CommandLineTool from ``examples/cwl/echo.cwl`` as a :class:`repro.CWLApp`,
invokes it asynchronously, waits for the future and prints the output file.
"""

from __future__ import annotations

import os
import tempfile

import repro

EXAMPLES_DIR = os.path.dirname(os.path.abspath(__file__))
ECHO_CWL = os.path.join(EXAMPLES_DIR, "cwl", "echo.cwl")


def main() -> None:
    # 1. Load a Parsl configuration (the analogue of parsl.configs.local_threads).
    repro.load(repro.thread_config(max_threads=4))

    workdir = tempfile.mkdtemp(prefix="repro-quickstart-")
    os.chdir(workdir)

    try:
        # 2. Import the CWL CommandLineTool definition as a Parsl app.
        echo = repro.CWLApp(ECHO_CWL)
        print("Imported tool:", echo.describe())

        # 3. Execute the CommandLineTool through Parsl; a future is returned.
        future = echo(message="Hello, World!", stdout="hello.txt")

        # 4. Wait for the future before reading the output.
        future.result()
        with open("hello.txt", "r", encoding="utf-8") as handle:
            print("hello.txt contains:", handle.read().strip())

        # Outputs are also available as DataFutures:
        for data_future in future.outputs:
            print("output file:", data_future.filepath, "->", data_future.result().filepath)
    finally:
        repro.clear()


if __name__ == "__main__":
    main()
