#!/usr/bin/env python3
"""The unified execution API: one call, any engine.

Runs the same CWL CommandLineTool through every registered engine —
``reference`` (cwltool-like), ``toil`` (Toil-like) and ``parsl`` (the paper's
bridge) — and shows that the :class:`repro.api.ExecutionResult` is the same
shape for all of them, including the per-job event stream.

Run from the repository root::

    python examples/unified_api.py
"""

from __future__ import annotations

import os
import tempfile

from repro import api

EXAMPLES_DIR = os.path.dirname(os.path.abspath(__file__))
ECHO_CWL = os.path.join(EXAMPLES_DIR, "cwl", "echo.cwl")


def main() -> None:
    print("registered engines:", ", ".join(api.list_engines()))

    hooks = api.ExecutionHooks(
        on_job_start=lambda event: print(f"  [hook] job {event.job!r} started"),
        on_job_end=lambda event: print(f"  [hook] job {event.job!r} finished "
                                       f"(ok={event.ok}, {event.duration_s:.3f}s)"),
    )

    for engine in ("reference", "toil", "parsl"):
        workdir = tempfile.mkdtemp(prefix=f"repro-unified-{engine}-")
        os.chdir(workdir)
        print(f"\nengine={engine!r}")
        result = api.run(ECHO_CWL, {"message": f"hello from {engine}"},
                         engine=engine, hooks=hooks)
        with open(result.outputs["output"]["path"], encoding="utf-8") as handle:
            print(f"  {result.summary()}")
            print(f"  output: {handle.read().strip()!r}")

    # Sessions amortise engine setup over many runs and support async submit.
    with api.Session(engine="reference") as session:
        handles = [session.submit(ECHO_CWL, {"message": f"async #{i}"})
                   for i in range(3)]
        print("\nasync results:",
              [h.result().outputs["output"]["basename"] for h in handles])


if __name__ == "__main__":
    main()
