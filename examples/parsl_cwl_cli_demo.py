#!/usr/bin/env python3
"""Drive the ``parsl-cwl`` command-line runner programmatically (paper §III-B).

Equivalent to running, from a shell::

    parsl-cwl examples/configs/local_threads.yml examples/cwl/echo.cwl --message='Hello'

Run from the repository root::

    python examples/parsl_cwl_cli_demo.py
"""

from __future__ import annotations

import os
import tempfile

from repro.core.cli import main as parsl_cwl_main

EXAMPLES_DIR = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    config = os.path.join(EXAMPLES_DIR, "configs", "local_threads.yml")
    tool = os.path.join(EXAMPLES_DIR, "cwl", "echo.cwl")
    outdir = tempfile.mkdtemp(prefix="repro-parsl-cwl-cli-")

    exit_code = parsl_cwl_main([
        "--outdir", outdir,
        config,
        tool,
        "--message", "Hello from the parsl-cwl runner",
    ])
    print("parsl-cwl exit code:", exit_code)
    print("output directory:", outdir, "->", sorted(os.listdir(outdir)))


if __name__ == "__main__":
    main()
