"""Figure 1a — image-processing workflow runtime on three nodes.

The paper's distributed configuration: three 48-core nodes managed by Slurm.

* ``cwltool --parallel``        → ReferenceRunner (parallel threads; cwltool has no
                                  multi-node mode, matching the paper's setup where it
                                  runs on one node of the allocation)
* ``toil-cwl-runner --batchSystem slurm`` → ToilStyleRunner over the *simulated* Slurm
                                  cluster: every task is a separate scheduler job
* Parsl-CWL (HighThroughputExecutor)      → CWLApps on an HTEX pilot block spanning the
                                  three simulated nodes (workers are real local processes)

The simulated cluster replaces the physical one (see DESIGN.md §substitutions); the
expected shape is linear scaling with Parsl-CWL fastest, Toil paying per-task
scheduler overhead.
"""

from __future__ import annotations

import concurrent.futures
import os

import pytest

import repro
from repro.cluster.nodes import NodeInventory
from repro.cluster.scheduler import SimulatedSlurmCluster
from repro.core import CWLApp
from repro.cwl.runners.toil.batch import SlurmBatchSystem
from repro.cwl.runtime import RuntimeContext

IMAGE_COUNTS = [2, 4, 8]
NODES = 3
CORES_PER_NODE = 8          # scaled down from the paper's 48 to stay laptop-friendly
WORKERS_PER_NODE = 2
FIGURE = "Figure 1a (three nodes): workflow runtime [s] vs number of images"


def make_cluster() -> SimulatedSlurmCluster:
    return SimulatedSlurmCluster(NodeInventory.homogeneous(NODES, cores=CORES_PER_NODE))


def run_reference(workflow_path, job_order, workdir):
    result = repro.api.run(str(workflow_path), job_order, engine="reference",
                           runtime_context=RuntimeContext(basedir=str(workdir)),
                           parallel=True, max_workers=NODES * WORKERS_PER_NODE)
    assert len(result.outputs["final_outputs"]) == len(job_order["input_images"])


def run_toil_slurm(workflow_path, job_order, workdir):
    cluster = make_cluster()
    try:
        result = repro.api.run(
            str(workflow_path), job_order, engine="toil",
            job_store_dir=str(workdir / "jobstore"),
            batch_system=SlurmBatchSystem(cluster=cluster),
            runtime_context=RuntimeContext(basedir=str(workdir)),
            max_workers=NODES * WORKERS_PER_NODE,
            destroy_job_store_on_close=True,
        )
        assert len(result.outputs["final_outputs"]) == len(job_order["input_images"])
    finally:
        cluster.shutdown()


def run_parsl_htex(cwl_dir, job_order, workdir):
    cluster = make_cluster()
    previous = os.getcwd()
    os.makedirs(workdir, exist_ok=True)
    os.chdir(workdir)
    repro.load(repro.htex_config(nodes=NODES, workers_per_node=WORKERS_PER_NODE,
                                 cores_per_node=CORES_PER_NODE, cluster=cluster,
                                 run_dir=str(workdir / "runinfo")))
    try:
        resize = CWLApp(str(cwl_dir / "resize_image.cwl"))
        filt = CWLApp(str(cwl_dir / "filter_image.cwl"))
        blur = CWLApp(str(cwl_dir / "blur_image.cwl"))
        finals = []
        for index, image in enumerate(job_order["input_images"]):
            resized = resize(input_image=image["path"], size=job_order["size"],
                             output_image=f"resized_{index}.png")
            filtered = filt(input_image=resized.outputs[0], sepia=job_order["sepia"],
                            output_image=f"filtered_{index}.png")
            blurred = blur(input_image=filtered.outputs[0], radius=job_order["radius"],
                           output_image=f"blurred_{index}.png")
            finals.append(blurred)
        concurrent.futures.wait(finals)
        assert all(f.exception() is None for f in finals)
    finally:
        repro.clear()
        cluster.shutdown()
        os.chdir(previous)


RUNNERS = {
    "cwltool-like (--parallel)": "reference",
    "toil-like (slurm)": "toil",
    "parsl-cwl (HTEX, 3 nodes)": "parsl",
}


@pytest.mark.parametrize("count", IMAGE_COUNTS)
@pytest.mark.parametrize("series", list(RUNNERS))
def test_fig1a_three_nodes(benchmark, series, count, image_workload, cwl_dir, tmp_path,
                           series_recorder):
    job_order = image_workload(count)
    kind = RUNNERS[series]

    def run():
        if kind == "reference":
            run_reference(cwl_dir / "scatter_images.cwl", dict(job_order), tmp_path / "ref")
        elif kind == "toil":
            run_toil_slurm(cwl_dir / "scatter_images.cwl", dict(job_order), tmp_path / "toil")
        else:
            run_parsl_htex(cwl_dir, dict(job_order), tmp_path / "parsl")

    benchmark.pedantic(run, rounds=1, iterations=1)
    series_recorder.record(FIGURE, series, count, benchmark.stats.stats.mean)


def test_fig1a_shape_toil_pays_per_task_scheduler_overhead(series_recorder):
    """Shape check: the Toil-like runner (one scheduler job per task) is not faster than
    Parsl-CWL's pilot-job execution at the largest workload."""
    largest = IMAGE_COUNTS[-1]
    figure = series_recorder.points.get(FIGURE, {})
    if not figure:
        pytest.skip("benchmarks did not run")
    parsl = figure.get(("parsl-cwl (HTEX, 3 nodes)", largest))
    toil = figure.get(("toil-like (slurm)", largest))
    if parsl is None or toil is None:
        pytest.skip("not all series were measured")
    assert parsl <= toil * 1.2, f"parsl={parsl:.3f}s vs toil-slurm={toil:.3f}s"


def test_fig1a_shape_runtime_grows_with_workload(series_recorder):
    """Shape check: each runner's runtime grows (roughly linearly) with the image count."""
    figure = series_recorder.points.get(FIGURE, {})
    if not figure:
        pytest.skip("benchmarks did not run")
    for series in RUNNERS:
        xs = sorted(x for (name, x) in figure if name == series)
        if len(xs) < 2:
            continue
        first, last = figure[(series, xs[0])], figure[(series, xs[-1])]
        assert last >= first * 0.8, f"{series}: runtime should not shrink as images increase"
