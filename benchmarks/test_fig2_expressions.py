"""Figure 2 — expression-evaluation runtime vs number of words (2 → 1024).

The paper compares the time to run the Listing-5 workflow (echo a message whose
words are capitalised by an embedded expression) as the message length grows:

* InlineJavaScript via cwltool   → capitalize_js.cwl through the ReferenceRunner
  (a fresh JavaScript engine is built per evaluation, as cwltool spawns node.js)
* InlineJavaScript via Toil      → capitalize_js.cwl through the ToilStyleRunner
  (which now defaults to the compiled-expression pipeline — parse-once ASTs,
  shared library scopes — so its curve sits well below the reference runner's)
* InlinePython via Parsl-CWL     → capitalize_python.cwl through a CWLApp
  (the Python expression evaluates natively in the runner's interpreter)

The paper reports a superlinear increase for the JavaScript runners and an
essentially flat curve for InlinePython; the same shape is asserted here, plus
the compiled-pipeline acceptance bar: at the largest workload the toil and
parsl series are at least 2× faster than the uncached reference series.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.core import CWLApp
from repro.cwl.runtime import RuntimeContext
from repro.imaging.synthetic import word_corpus

WORD_COUNTS = [2, 16, 128, 1024]
FIGURE = "Figure 2: expression runtime [s] vs number of words"


def message_of(count: int) -> str:
    return " ".join(word_corpus(count, seed=42))


def run_js_reference(cwl_dir, message, workdir):
    result = repro.api.run(str(cwl_dir / "capitalize_js.cwl"), {"message": message},
                           engine="reference",
                           runtime_context=RuntimeContext(basedir=str(workdir)))
    assert result.outputs["output"]["size"] > 0


def run_js_toil(cwl_dir, message, workdir):
    result = repro.api.run(str(cwl_dir / "capitalize_js.cwl"), {"message": message},
                           engine="toil", job_store_dir=str(workdir / "jobstore"),
                           runtime_context=RuntimeContext(basedir=str(workdir)),
                           destroy_job_store_on_close=True)
    assert result.outputs["output"]["size"] > 0


def run_python_parsl(cwl_dir, message, workdir):
    previous = os.getcwd()
    os.makedirs(workdir, exist_ok=True)
    os.chdir(workdir)
    repro.load(repro.thread_config(max_threads=2, run_dir=str(workdir / "runinfo")))
    try:
        app = CWLApp(str(cwl_dir / "capitalize_python.cwl"))
        future = app(message=message, stdout="capitalized.txt")
        assert future.result() == 0
    finally:
        repro.clear()
        os.chdir(previous)


SERIES = {
    "InlineJavaScript (cwltool-like)": run_js_reference,
    "InlineJavaScript (toil-like)": run_js_toil,
    "InlinePython (parsl-cwl)": run_python_parsl,
}


@pytest.mark.parametrize("words", WORD_COUNTS)
@pytest.mark.parametrize("series", list(SERIES))
def test_fig2_expression_scaling(benchmark, series, words, cwl_dir, tmp_path, series_recorder):
    message = message_of(words)
    runner = SERIES[series]

    def run():
        runner(cwl_dir, message, tmp_path / series.replace(" ", "_"))

    # Three rounds, best-of recorded: per-job jitter (subprocess spawn, job
    # store IO) would otherwise drown the expression-pipeline signal the
    # figure exists to show.
    benchmark.pedantic(run, rounds=3, iterations=2)
    series_recorder.record(FIGURE, series, words, benchmark.stats.stats.min)


def test_fig2_shape_python_flat_javascript_grows(series_recorder):
    """Shape check: JS expression cost grows with word count much faster than InlinePython.

    The paper shows roughly constant InlinePython cost and a superlinear JS curve;
    here we assert (a) the JS growth factor from the smallest to the largest word
    count exceeds the InlinePython growth factor, and (b) at 1024 words InlinePython
    is faster than both JavaScript runners.
    """
    figure = series_recorder.points.get(FIGURE, {})
    if not figure:
        pytest.skip("benchmarks did not run")
    smallest, largest = WORD_COUNTS[0], WORD_COUNTS[-1]

    def growth(series):
        small = figure.get((series, smallest))
        large = figure.get((series, largest))
        if small is None or large is None or small == 0:
            return None
        return large / small

    js_growth = growth("InlineJavaScript (cwltool-like)")
    py_growth = growth("InlinePython (parsl-cwl)")
    if js_growth is None or py_growth is None:
        pytest.skip("not all series were measured")
    assert js_growth > py_growth, (
        f"JS growth {js_growth:.2f}x should exceed InlinePython growth {py_growth:.2f}x"
    )

    js_large = figure.get(("InlineJavaScript (cwltool-like)", largest))
    toil_large = figure.get(("InlineJavaScript (toil-like)", largest))
    py_large = figure.get(("InlinePython (parsl-cwl)", largest))
    if None not in (js_large, toil_large, py_large):
        assert py_large <= js_large
        assert py_large <= toil_large


def test_fig2_compiled_engines_at_least_2x_faster_than_reference(series_recorder):
    """Acceptance: toil (compiled pipeline) and parsl beat the uncached
    reference series by at least 2× on the largest workload, while the
    reference series itself keeps its uncached cost model (asserted by
    ``test_fig2_shape_python_flat_javascript_grows`` above)."""
    figure = series_recorder.points.get(FIGURE, {})
    if not figure:
        pytest.skip("benchmarks did not run")
    largest = WORD_COUNTS[-1]
    reference = figure.get(("InlineJavaScript (cwltool-like)", largest))
    toil = figure.get(("InlineJavaScript (toil-like)", largest))
    parsl = figure.get(("InlinePython (parsl-cwl)", largest))
    if None in (reference, toil, parsl):
        pytest.skip("not all series were measured")
    assert toil * 2 <= reference, (
        f"compiled toil series ({toil:.4f}s) should be at least 2x faster than the "
        f"uncached reference series ({reference:.4f}s) at {largest} words"
    )
    assert parsl * 2 <= reference, (
        f"parsl series ({parsl:.4f}s) should be at least 2x faster than the "
        f"uncached reference series ({reference:.4f}s) at {largest} words"
    )
