"""Ablation A2 — executor comparison on an identical task bag.

The paper argues that Parsl's pluggable executors let the same workflow scale from
a laptop to an HPC system.  This ablation runs the same bag of short bash tasks on
each executor so their per-task overheads can be compared directly:

* ThreadPoolExecutor (the Fig. 1b configuration),
* ProcessPoolExecutor,
* WorkQueue-style resource-aware executor,
* HighThroughputExecutor with a local provider (the pilot-job path of Fig. 1a).
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.parsl import bash_app
from repro.parsl.config import Config
from repro.parsl.configs import htex_local_config, local_process_config, thread_config, workqueue_config

TASKS = 16

CONFIG_FACTORIES = {
    "threads": lambda run_dir: thread_config(max_threads=4, run_dir=run_dir),
    "processes": lambda run_dir: local_process_config(max_workers=4, run_dir=run_dir),
    "workqueue": lambda run_dir: workqueue_config(total_cores=4, run_dir=run_dir),
    "htex-local": lambda run_dir: htex_local_config(workers=4, run_dir=run_dir),
}


@bash_app
def tiny_task(index: int, stdout=None):
    return f"echo task {index}"


@pytest.mark.parametrize("executor_name", list(CONFIG_FACTORIES))
def test_executor_task_bag(benchmark, executor_name, tmp_path_factory):
    base = tmp_path_factory.mktemp(f"exec_{executor_name}")

    def run_bag():
        previous = os.getcwd()
        os.chdir(base)
        repro.load(CONFIG_FACTORIES[executor_name](str(base / "runinfo")))
        try:
            futures = [tiny_task(i, stdout=str(base / f"task_{i}.txt")) for i in range(TASKS)]
            assert all(f.result() == 0 for f in futures)
        finally:
            repro.clear()
            os.chdir(previous)

    benchmark.pedantic(run_bag, rounds=1, iterations=1)
