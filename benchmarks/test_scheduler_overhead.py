"""Scheduler-core overhead: thread-pool vs asyncio pipelined dispatch.

Three figures, all prefixed ``SCHED`` (written to ``BENCH_sched.json``):

* ``SCHED per-node overhead`` — pure dispatch cost per node (µs) on
  layered DAGs of 100 / 1,000 / 10,000 nodes whose bodies are no-ops.
  This models the cache-warm replay case: every job is a cache hit, so
  scheduler bookkeeping *is* the runtime.  The pipelined core coalesces
  these tiny jobs into batches instead of paying a thread-pool round-trip
  per node, and must come out cheaper per node at 10k.
* ``SCHED io-heavy pipelining`` — wall time on a DAG whose node lifecycle
  is I/O-bound (sleeps in stage / exec / collect).  Both cores get the
  same execution concurrency (8 in-flight jobs); the pipelined core
  additionally overlaps staging and collection of *different* jobs with
  execution and must beat the serial stage→exec→collect lifecycle.
* ``SCHED event emission`` — per-event cost (µs) of the
  :class:`~repro.api.events.EventRecorder` hot path with and without user
  hooks: without hooks the recorder appends raw tuples and defers
  ``JobEvent`` construction until ``.events`` is read.
"""

from __future__ import annotations

import time

import pytest

from repro.cwl.graph import GraphNode, WorkflowGraph
from repro.cwl.scheduler import GraphScheduler, PipelineScheduler
from repro.testing.generator import layered_dag_structure

PER_NODE_SIZES = (100, 1_000, 10_000)


def build_layered_graph(nodes: int, *, seed: int = 7) -> WorkflowGraph:
    """A synthetic WorkflowGraph with the deterministic layered-DAG shape."""
    graph = WorkflowGraph()
    structure = layered_dag_structure(nodes, seed=seed)
    for name, _deps in structure:
        graph.nodes[name] = GraphNode(id=name, kind="step", step=None,
                                      workflow=None)
        graph.predecessors[name] = []
    for name, deps in structure:
        graph.predecessors[name].extend(deps)
    graph._finalise()
    return graph


class _TinyNoopExecutor:
    """All-tiny executor: models a fully cache-warm replay (no real work)."""

    def is_tiny(self, node) -> bool:
        return True

    def stage(self, node):
        return None

    def execute(self, node, staged):
        return None

    def collect(self, node, staged, result):
        return None


class _SleepStageExecutor:
    """I/O-bound lifecycle: every stage blocks, none burns CPU."""

    def __init__(self, stage_s: float, exec_s: float, collect_s: float) -> None:
        self.stage_s = stage_s
        self.exec_s = exec_s
        self.collect_s = collect_s

    def is_tiny(self, node) -> bool:
        return False

    def stage(self, node):
        time.sleep(self.stage_s)
        return node.id

    def execute(self, node, staged):
        time.sleep(self.exec_s)
        return staged

    def collect(self, node, staged, result):
        time.sleep(self.collect_s)
        return None


# ------------------------------------------------------------ per-node cost


@pytest.mark.parametrize("nodes", PER_NODE_SIZES)
def test_per_node_overhead_threadpool_vs_pipeline(nodes, series_recorder):
    """Per-node dispatch µs: the pipelined core must win on warm replays."""
    graph = build_layered_graph(nodes)
    start = time.perf_counter()
    GraphScheduler(graph, lambda node: None, parallel=True, max_workers=8).run()
    threadpool_s = time.perf_counter() - start

    graph = build_layered_graph(nodes)
    scheduler = PipelineScheduler(graph, executor=_TinyNoopExecutor(),
                                  max_inflight=64, max_workers=8)
    start = time.perf_counter()
    scheduler.run()
    pipeline_s = time.perf_counter() - start

    assert scheduler.stage_timings["tiny_nodes"] == nodes
    assert scheduler.stage_timings["tiny_batches"] <= nodes

    series_recorder.record("SCHED per-node overhead", "thread-pool (us/node)",
                          nodes, threadpool_s / nodes * 1e6)
    series_recorder.record("SCHED per-node overhead", "pipelined (us/node)",
                          nodes, pipeline_s / nodes * 1e6)
    if nodes == max(PER_NODE_SIZES):
        assert pipeline_s < threadpool_s, (
            f"pipelined core slower than thread pool on the {nodes}-node "
            f"warm DAG: {pipeline_s:.3f}s vs {threadpool_s:.3f}s")


# ------------------------------------------------------- I/O-heavy overlap


def build_independent_graph(nodes: int) -> WorkflowGraph:
    """``nodes`` mutually independent step nodes (a pure fan-out DAG)."""
    graph = WorkflowGraph()
    for index in range(nodes):
        name = f"n{index}"
        graph.nodes[name] = GraphNode(id=name, kind="step", step=None,
                                      workflow=None)
        graph.predecessors[name] = []
    graph._finalise()
    return graph


def test_io_heavy_pipelining_beats_serial_lifecycle(series_recorder):
    """Overlapped stage/exec/collect vs the serial per-node lifecycle.

    64 independent nodes, each with a 4ms stage, 8ms exec (a subprocess
    wait: I/O, not CPU) and 4ms collect.  Both cores get the same
    ``max_workers=8`` worker pool.  Under the serial lifecycle a worker
    thread is pinned for the *whole* 16ms of its node, capping concurrency
    at 8 jobs; the pipelined core parks executions on the supervised exec
    lane (``max_inflight=32``) so its 8 workers spend their time only on
    staging and collection, overlapped with the waits of other jobs.
    """
    stage_s, exec_s, collect_s = 0.004, 0.008, 0.004
    nodes = 64

    def serial_lifecycle(node):
        time.sleep(stage_s)
        time.sleep(exec_s)
        time.sleep(collect_s)

    start = time.perf_counter()
    GraphScheduler(build_independent_graph(nodes), serial_lifecycle,
                   parallel=True, max_workers=8).run()
    serial_s = time.perf_counter() - start

    scheduler = PipelineScheduler(
        build_independent_graph(nodes),
        executor=_SleepStageExecutor(stage_s, exec_s, collect_s),
        max_inflight=32, max_workers=8)
    start = time.perf_counter()
    scheduler.run()
    pipelined_s = time.perf_counter() - start

    timings = scheduler.stage_timings
    assert timings["nodes"] == nodes
    assert timings["stage_s"] > 0 and timings["exec_s"] > 0
    assert timings["collect_s"] > 0

    series_recorder.record("SCHED io-heavy pipelining", "serial lifecycle (s)",
                          nodes, serial_s)
    series_recorder.record("SCHED io-heavy pipelining", "pipelined (s)",
                          nodes, pipelined_s)
    assert pipelined_s < serial_s, (
        f"pipelining did not beat the serial lifecycle: "
        f"{pipelined_s:.3f}s vs {serial_s:.3f}s")


# ------------------------------------------------------------ event hot path


def test_event_emission_lazy_vs_hooked(series_recorder):
    """Hook-less emission (raw tuples) must undercut eager JobEvent builds."""
    from repro.api.events import EventRecorder, ExecutionHooks

    count = 20_000

    def run(recorder) -> float:
        start = time.perf_counter()
        for index in range(count):
            token = recorder.job_started(f"job{index}")
            recorder.job_finished(token, cache="hit")
        return time.perf_counter() - start

    lazy = EventRecorder(hooks=None)
    lazy_s = run(lazy)

    hooked = EventRecorder(hooks=ExecutionHooks(
        on_job_start=lambda event: None, on_job_end=lambda event: None))
    hooked_s = run(hooked)

    # Materialisation still yields the full, ordered event stream.
    events = lazy.events
    assert len(events) == 2 * count
    assert events[0].kind == "start" and events[1].kind == "end"
    assert events[1].cache == "hit" and events[1].duration_s is not None

    series_recorder.record("SCHED event emission", "no hooks (us/event)",
                          count, lazy_s / (2 * count) * 1e6)
    series_recorder.record("SCHED event emission", "hooked (us/event)",
                          count, hooked_s / (2 * count) * 1e6)
    assert lazy_s < hooked_s, (
        f"lazy event emission not cheaper: {lazy_s:.3f}s vs {hooked_s:.3f}s")
