"""Ablation A4 — per-task overhead of the runner machinery at different scatter widths.

The Fig. 1 experiment scatters an entire three-stage sub-workflow; this ablation
isolates the per-task cost of each runner on the *cheapest possible* tool (echo)
so that runner overhead, not image processing, dominates.  Comparing the slope of
runtime vs scatter width across runners gives the per-task overhead the paper's
Figure 1 gap is made of.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.core import CWLApp
from repro.cwl.runtime import RuntimeContext

WIDTHS = [4, 16]
FIGURE = "Ablation A4: scatter of `echo` — runtime [s] vs scatter width"

SCATTER_ECHO = {
    "cwlVersion": "v1.2",
    "class": "Workflow",
    "requirements": [{"class": "ScatterFeatureRequirement"}],
    "inputs": {"messages": "string[]"},
    "outputs": {"outs": {"type": "File[]", "outputSource": "say/output"}},
    "steps": {
        "say": {
            "run": {
                "class": "CommandLineTool",
                "baseCommand": "echo",
                "inputs": {"message": {"type": "string", "inputBinding": {"position": 1}}},
                "outputs": {"output": "stdout"},
                "stdout": "echoed.txt",
            },
            "scatter": "message",
            "in": {"message": "messages"},
            "out": ["output"],
        }
    },
}


def job_order(width: int):
    return {"messages": [f"message number {i}" for i in range(width)]}


def run_reference(width, workdir):
    result = repro.api.run(dict(SCATTER_ECHO), job_order(width), engine="reference",
                           runtime_context=RuntimeContext(basedir=str(workdir)),
                           parallel=True, max_workers=8)
    assert len(result.outputs["outs"]) == width


def run_toil(width, workdir):
    result = repro.api.run(dict(SCATTER_ECHO), job_order(width), engine="toil",
                           job_store_dir=str(workdir / "jobstore"),
                           runtime_context=RuntimeContext(basedir=str(workdir)),
                           max_workers=8, destroy_job_store_on_close=True)
    assert len(result.outputs["outs"]) == width


def run_parsl(width, workdir, cwl_dir):
    previous = os.getcwd()
    os.makedirs(workdir, exist_ok=True)
    os.chdir(workdir)
    repro.load(repro.thread_config(max_threads=8, run_dir=str(workdir / "runinfo")))
    try:
        echo = CWLApp(str(cwl_dir / "echo.cwl"))
        futures = [echo(message=f"message number {i}", stdout=f"echo_{i}.txt")
                   for i in range(width)]
        assert all(f.result() == 0 for f in futures)
    finally:
        repro.clear()
        os.chdir(previous)


SERIES = ["cwltool-like", "toil-like", "parsl-cwl"]


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("series", SERIES)
def test_scatter_width_overhead(benchmark, series, width, tmp_path, cwl_dir, series_recorder):
    def run():
        if series == "cwltool-like":
            run_reference(width, tmp_path / "ref")
        elif series == "toil-like":
            run_toil(width, tmp_path / "toil")
        else:
            run_parsl(width, tmp_path / "parsl", cwl_dir)

    benchmark.pedantic(run, rounds=1, iterations=1)
    series_recorder.record(FIGURE, series, width, benchmark.stats.stats.mean)


def test_scatter_per_task_overhead_report(series_recorder):
    """Report per-task overhead (slope) per runner; Parsl's should be the smallest or tied."""
    figure = series_recorder.points.get(FIGURE, {})
    if not figure:
        pytest.skip("benchmarks did not run")
    slopes = {}
    for series in SERIES:
        small = figure.get((series, WIDTHS[0]))
        large = figure.get((series, WIDTHS[-1]))
        if small is None or large is None:
            continue
        slopes[series] = (large - small) / (WIDTHS[-1] - WIDTHS[0])
    if len(slopes) < 3:
        pytest.skip("not all series were measured")
    assert slopes["parsl-cwl"] <= slopes["toil-like"] * 1.2
