"""Ablation A3 — where does the JavaScript expression cost go?

Figure 2's superlinear JavaScript curve comes from two compounding costs: the
per-evaluation engine construction (cwltool starts a fresh node.js sandbox) and
the evaluation itself.  This ablation separates them on the pure-Python engine:

* tokenize / parse / evaluate costs for the capitalisation expression,
* a full evaluation with a fresh engine per call (cwltool-style) versus a cached
  engine (what a long-lived Python runner can do),
* the equivalent InlinePython evaluation for reference.
"""

from __future__ import annotations

import pytest

from repro.core.inline_python import InlinePythonEvaluator
from repro.cwl.expressions.evaluator import ExpressionEvaluator
from repro.cwl.expressions.jsengine.parser import parse_expression, parse_program
from repro.cwl.expressions.jsengine.tokenizer import tokenize
from repro.imaging.synthetic import word_corpus

WORDS = 256

JS_LIB = """
function capitalize_words(message) {
  var words = message.split(' ');
  var out = [];
  for (var i = 0; i < words.length; i++) {
    var w = words[i];
    if (w.length > 0) {
      out.push(w.charAt(0).toUpperCase() + w.slice(1));
    }
  }
  return out.join(' ');
}
"""

PY_LIB = ["def capitalize_words(message):\n    return message.title()\n"]


@pytest.fixture(scope="module")
def message():
    return " ".join(word_corpus(WORDS, seed=7))


@pytest.fixture(scope="module")
def context(message):
    return {"inputs": {"message": message}, "runtime": {}, "self": None}


def test_js_tokenize_cost(benchmark):
    benchmark(tokenize, JS_LIB)


def test_js_parse_expression_cost(benchmark):
    benchmark(parse_expression, "capitalize_words(inputs.message)")


def test_js_parse_library_cost(benchmark):
    benchmark(parse_program, JS_LIB)


def test_js_fresh_engine_per_evaluation(benchmark, context):
    """cwltool-style: rebuild the engine (and re-parse the library) for every evaluation."""
    evaluator = ExpressionEvaluator(expression_lib=[JS_LIB], cache_engine=False)
    result = benchmark(evaluator.evaluate, "$(capitalize_words(inputs.message))", context)
    assert result.split(" ")[0][0].isupper()


def test_js_cached_engine_evaluation(benchmark, context):
    """Long-lived-runner style: the engine (and parsed library) are reused."""
    evaluator = ExpressionEvaluator(expression_lib=[JS_LIB], cache_engine=True)
    evaluator.evaluate("$(capitalize_words(inputs.message))", context)  # warm the cache
    result = benchmark(evaluator.evaluate, "$(capitalize_words(inputs.message))", context)
    assert result.split(" ")[0][0].isupper()


def test_inline_python_evaluation(benchmark, context):
    """The paper's InlinePython path: native Python evaluation of the same expression."""
    evaluator = InlinePythonEvaluator(expression_lib=PY_LIB)
    result = benchmark(evaluator.evaluate,
                       'f"{capitalize_words($(inputs.message))}"', context)
    assert result.split(" ")[0][0].isupper()
