"""Job-cache benchmarks: warm re-runs vs cold runs on one shared store.

The compiled-expression pipeline (PR 2) and the event-driven scheduler (PR 3)
removed the runner-side overheads; what remains per job is the job *body* —
subprocess spawn, staging IO, recomputation.  The content-addressed job cache
(`repro.cwl.jobcache`) removes that too for repeated invocations: a warm
re-run restores outputs by hardlink staging instead of executing.

Two workloads, re-run warm against the store their cold run populated:

* **fig2** — the Figure-2 expression workload (`capitalize_js.cwl`) at
  growing word counts.  The warm path skips command-line construction (the
  cache key proves it unchanged), so even the 1024-word JS evaluation
  disappears from the warm series.
* **DAG wide fan-out** — the PR 3 scheduler workload (N independent sleeping
  steps); warm re-runs collapse to manifest reads + hardlinks.

Both run on the **toil** engine (job store + batch system, the heaviest
baseline), plus a *reference-engine* warm series driven off the toil-warmed
store to demonstrate cross-engine sharing.  The acceptance bar — warm ≥ 5×
faster than cold at the largest size, with ``cache_stats`` hits equal to the
job count and bit-identical outputs — is asserted by the shape checks below.

Series land in ``BENCH_cache.json`` (figures prefixed ``CACHE``; see
``conftest.pytest_terminal_summary``), uploaded by CI next to the other
BENCH artifacts.
"""

from __future__ import annotations

import time

import pytest

from repro import api
from repro.cwl.loader import load_document
from repro.cwl.runtime import RuntimeContext
from repro.imaging.synthetic import word_corpus
from test_dag_scheduling import wide_fanout_workflow

FIGURE_FIG2 = "CACHE fig2 warm vs cold (toil): runtime [s] vs words"
FIGURE_DAG = "CACHE DAG wide fan-out warm vs cold (toil): runtime [s] vs steps"

WORD_COUNTS = [128, 1024]
FANOUT_COUNTS = [4, 12]
WARM_ROUNDS = 3
DELAY = 0.05
MAX_WORKERS = 4


def file_bytes(value) -> bytes:
    with open(value["path"], "rb") as handle:
        return handle.read()


def timed(session, process, order):
    start = time.perf_counter()
    result = session.run(process, dict(order))
    return time.perf_counter() - start, result


def cold_and_warm(tmp_path, process, order, expected_jobs, engine="toil"):
    """One cold run populating a fresh store, then ``WARM_ROUNDS`` warm runs.

    Returns ``(cold_seconds, best_warm_seconds, store_dir)``; asserts the
    cache accounting and output parity along the way.
    """
    store = tmp_path / "store"
    workdir = tmp_path / "wd"
    workdir.mkdir(parents=True, exist_ok=True)
    options = dict(cache_dir=str(store), max_workers=MAX_WORKERS,
                   runtime_context=RuntimeContext(basedir=str(workdir)))
    if engine == "toil":
        options["job_store_dir"] = str(workdir / "jobstore")
    with api.Session(engine=engine, **options) as session:
        cold_s, cold = timed(session, process, order)
        assert cold.cache_stats["misses"] == cold.jobs_run == expected_jobs
        warm_times = []
        for _ in range(WARM_ROUNDS):
            warm_s, warm = timed(session, process, order)
            warm_times.append(warm_s)
        assert warm.cache_stats == {"hits": expected_jobs, "misses": 0}
        for key, value in cold.outputs.items():
            if isinstance(value, dict) and "path" in value:
                assert file_bytes(warm.outputs[key]) == file_bytes(value)
    return cold_s, min(warm_times), store


@pytest.mark.parametrize("words", WORD_COUNTS)
def test_cache_fig2_warm_vs_cold(words, tmp_path, cwl_dir, series_recorder):
    message = " ".join(word_corpus(words, seed=42))
    cold_s, warm_s, store = cold_and_warm(
        tmp_path, str(cwl_dir / "capitalize_js.cwl"), {"message": message},
        expected_jobs=1)
    series_recorder.record(FIGURE_FIG2, "toil cold", words, cold_s)
    series_recorder.record(FIGURE_FIG2, "toil warm", words, warm_s)

    # Cross-engine: the toil-populated store is warm for the reference engine.
    xwork = tmp_path / "xref"
    xwork.mkdir()
    start = time.perf_counter()
    cross = api.run(str(cwl_dir / "capitalize_js.cwl"), {"message": message},
                    engine="reference", cache_dir=str(store),
                    runtime_context=RuntimeContext(basedir=str(xwork)))
    series_recorder.record(FIGURE_FIG2, "reference warm (toil store)", words,
                           time.perf_counter() - start)
    assert cross.cache_stats == {"hits": 1, "misses": 0}


@pytest.mark.parametrize("count", FANOUT_COUNTS)
def test_cache_dag_fanout_warm_vs_cold(count, tmp_path, series_recorder):
    doc = load_document(wide_fanout_workflow(count))
    cold_s, warm_s, _store = cold_and_warm(
        tmp_path, doc, {"delay": DELAY}, expected_jobs=count)
    series_recorder.record(FIGURE_DAG, "toil cold", count, cold_s)
    series_recorder.record(FIGURE_DAG, "toil warm", count, warm_s)


# ------------------------------------------------------------- shape checks


def _point(series_recorder, figure, series, x):
    return series_recorder.points.get(figure, {}).get((series, x))


def test_cache_shape_fig2_warm_5x_faster(series_recorder):
    """Acceptance: the warm 1024-word fig2 re-run beats its cold run ≥5× on
    the toil engine."""
    largest = WORD_COUNTS[-1]
    cold = _point(series_recorder, FIGURE_FIG2, "toil cold", largest)
    warm = _point(series_recorder, FIGURE_FIG2, "toil warm", largest)
    if cold is None or warm is None:
        pytest.skip("fig2 cache series were not measured")
    assert warm * 5 <= cold, (
        f"warm fig2 re-run ({warm:.4f}s) should be at least 5x faster than "
        f"the cold run ({cold:.4f}s) at {largest} words"
    )


def test_cache_shape_dag_warm_5x_faster(series_recorder):
    """Acceptance: the warm wide-fan-out re-run beats its cold run ≥5× on the
    toil engine."""
    largest = FANOUT_COUNTS[-1]
    cold = _point(series_recorder, FIGURE_DAG, "toil cold", largest)
    warm = _point(series_recorder, FIGURE_DAG, "toil warm", largest)
    if cold is None or warm is None:
        pytest.skip("DAG cache series were not measured")
    assert warm * 5 <= cold, (
        f"warm fan-out re-run ({warm:.4f}s) should be at least 5x faster than "
        f"the cold run ({cold:.4f}s) at {largest} steps"
    )
