"""Ablation A5 — what does the compiled-expression pipeline buy?

Three configurations evaluate the same expression workload at increasing
evaluation counts:

* **uncached** — :class:`ExpressionEvaluator` with a fresh engine per
  evaluation (cwltool fidelity: re-scan, re-parse, rebuild the stdlib and
  re-run the expressionLib every time, the Figure 2 cost model),
* **cached engine** — the engine (and parsed library) reused, but every
  string still re-scanned and re-parsed per evaluation,
* **compiled** — :class:`CompiledEvaluator`: parse-once templates from the
  bounded LRU, closure-compiled ASTs, shared library scope.

The recorded series land in ``BENCH_expressions.json`` (figure → series →
points) so future PRs can track the trajectory; the shape test asserts the
headline claim — the compiled pipeline is at least 2× faster than the
uncached baseline on the largest workload.
"""

from __future__ import annotations

import pytest

from repro.cwl.expressions.compiler import CompiledEvaluator, compile_cache_stats
from repro.cwl.expressions.evaluator import ExpressionEvaluator

EVALUATION_COUNTS = [32, 128, 512]
FIGURE = "Ablation A5: expression pipeline runtime [s] vs evaluations"

JS_LIB = """
function addTag(word) {
  return "[" + word.toUpperCase() + "]";
}
"""

#: A small rotation of distinct strings: simple parameter references, JS
#: calls into the library, and an interpolated template — the mix one job's
#: bindings actually contain.
EXPRESSIONS = [
    "$(inputs.word)",
    "$(addTag(inputs.word))",
    "prefix $(inputs.word) :: $(addTag(inputs.word)) suffix",
    "${ return addTag(inputs.word) + '!'; }",
]


def run_workload(evaluator, count: int) -> None:
    for index in range(count):
        context = {"inputs": {"word": f"word{index}"}, "runtime": {}, "self": None}
        result = evaluator.evaluate(EXPRESSIONS[index % len(EXPRESSIONS)], context)
        assert result


def make_uncached():
    return ExpressionEvaluator(expression_lib=[JS_LIB], cache_engine=False)


def make_cached_engine():
    return ExpressionEvaluator(expression_lib=[JS_LIB], cache_engine=True)


def make_compiled():
    return CompiledEvaluator(expression_lib=[JS_LIB])


SERIES = {
    "uncached (fresh engine per evaluation)": make_uncached,
    "cached engine (re-parse per evaluation)": make_cached_engine,
    "compiled (parse-once AST cache)": make_compiled,
}


@pytest.mark.parametrize("count", EVALUATION_COUNTS)
@pytest.mark.parametrize("series", list(SERIES))
def test_ablation_compile_cache(benchmark, series, count, series_recorder):
    factory = SERIES[series]
    evaluator = factory()
    run_workload(evaluator, 4)  # warm caches so the fixed setup cost is excluded

    benchmark.pedantic(run_workload, args=(evaluator, count), rounds=1, iterations=2)
    series_recorder.record(FIGURE, series, count, benchmark.stats.stats.mean)


def test_ablation_shape_compiled_at_least_2x_faster(series_recorder):
    """Acceptance: compiled evaluation ≥ 2× faster than the uncached baseline."""
    figure = series_recorder.points.get(FIGURE, {})
    if not figure:
        pytest.skip("benchmarks did not run")
    largest = EVALUATION_COUNTS[-1]
    uncached = figure.get(("uncached (fresh engine per evaluation)", largest))
    compiled = figure.get(("compiled (parse-once AST cache)", largest))
    if uncached is None or compiled is None:
        pytest.skip("not all series were measured")
    assert compiled * 2 <= uncached, (
        f"compiled pipeline ({compiled:.4f}s) should be at least 2x faster than "
        f"the uncached baseline ({uncached:.4f}s) at {largest} evaluations"
    )


def test_ablation_compile_cache_is_actually_hit():
    """The workload's repeated strings must be served from the template LRU."""
    evaluator = CompiledEvaluator(expression_lib=[JS_LIB])
    run_workload(evaluator, 8)
    before = compile_cache_stats()["hits"]
    run_workload(evaluator, 64)
    after = compile_cache_stats()["hits"]
    assert after > before
