"""Figure 1b — image-processing workflow runtime on a single node.

The paper runs the scatter-wrapped resize→sepia→blur workflow over an increasing
number of images on one node (2×12-core CPUs) with three runners:

* ``cwltool --parallel``            → :class:`repro.cwl.runners.reference.ReferenceRunner` (parallel)
* ``toil-cwl-runner`` (single node) → :class:`repro.cwl.runners.toil.runner.ToilStyleRunner`
                                       with the single-machine batch system
* Parsl-CWL (ThreadPoolExecutor)    → chained :class:`repro.core.cwl_app.CWLApp` s, the
                                       program of Listing 4

Image counts are scaled down (the paper sweeps up to 1,000); the expected shape
is linear growth for all three runners with Parsl-CWL at or below cwltool
(the paper reports ≈1.5× at the largest point).
"""

from __future__ import annotations

import concurrent.futures
import os

import pytest

import repro
from repro.core import CWLApp
from repro.cwl.runtime import RuntimeContext

IMAGE_COUNTS = [2, 4, 8]
WORKERS = 8
FIGURE = "Figure 1b (single node): workflow runtime [s] vs number of images"


def run_reference(workflow_path, job_order, workdir):
    result = repro.api.run(str(workflow_path), job_order, engine="reference",
                           runtime_context=RuntimeContext(basedir=str(workdir)),
                           parallel=True, max_workers=WORKERS)
    assert len(result.outputs["final_outputs"]) == len(job_order["input_images"])


def run_toil(workflow_path, job_order, workdir):
    result = repro.api.run(str(workflow_path), job_order, engine="toil",
                           job_store_dir=str(workdir / "jobstore"),
                           runtime_context=RuntimeContext(basedir=str(workdir)),
                           max_workers=WORKERS, destroy_job_store_on_close=True)
    assert len(result.outputs["final_outputs"]) == len(job_order["input_images"])


def run_parsl_threads(cwl_dir, job_order, workdir):
    previous = os.getcwd()
    os.makedirs(workdir, exist_ok=True)
    os.chdir(workdir)
    repro.load(repro.thread_config(max_threads=WORKERS, run_dir=str(workdir / "runinfo")))
    try:
        resize = CWLApp(str(cwl_dir / "resize_image.cwl"))
        filt = CWLApp(str(cwl_dir / "filter_image.cwl"))
        blur = CWLApp(str(cwl_dir / "blur_image.cwl"))
        finals = []
        for index, image in enumerate(job_order["input_images"]):
            resized = resize(input_image=image["path"], size=job_order["size"],
                             output_image=f"resized_{index}.png")
            filtered = filt(input_image=resized.outputs[0], sepia=job_order["sepia"],
                            output_image=f"filtered_{index}.png")
            blurred = blur(input_image=filtered.outputs[0], radius=job_order["radius"],
                           output_image=f"blurred_{index}.png")
            finals.append(blurred)
        concurrent.futures.wait(finals)
        assert all(f.exception() is None for f in finals)
    finally:
        repro.clear()
        os.chdir(previous)


RUNNERS = {
    "cwltool-like (--parallel)": "reference",
    "toil-like (single_machine)": "toil",
    "parsl-cwl (ThreadPool)": "parsl",
}


@pytest.mark.parametrize("count", IMAGE_COUNTS)
@pytest.mark.parametrize("series", list(RUNNERS))
def test_fig1b_single_node(benchmark, series, count, image_workload, cwl_dir, tmp_path,
                           series_recorder):
    job_order = image_workload(count)
    kind = RUNNERS[series]

    def run():
        if kind == "reference":
            run_reference(cwl_dir / "scatter_images.cwl", dict(job_order), tmp_path / "ref")
        elif kind == "toil":
            run_toil(cwl_dir / "scatter_images.cwl", dict(job_order), tmp_path / "toil")
        else:
            run_parsl_threads(cwl_dir, dict(job_order), tmp_path / "parsl")

    benchmark.pedantic(run, rounds=1, iterations=1)
    series_recorder.record(FIGURE, series, count, benchmark.stats.stats.mean)


def test_fig1b_shape_parsl_not_slower_than_baselines(series_recorder):
    """Shape check: at the largest point Parsl-CWL is not slower than the baselines.

    (The paper reports Parsl-CWL ≈1.5× faster than cwltool at 1,000 images; at
    laptop scale we only assert the ordering with a 20% tolerance.)
    """
    largest = IMAGE_COUNTS[-1]
    figure = series_recorder.points.get(FIGURE, {})
    if not figure:
        pytest.skip("benchmarks did not run (e.g. --benchmark-skip)")
    parsl = figure.get(("parsl-cwl (ThreadPool)", largest))
    cwltool = figure.get(("cwltool-like (--parallel)", largest))
    toil = figure.get(("toil-like (single_machine)", largest))
    if parsl is None or cwltool is None or toil is None:
        pytest.skip("not all series were measured")
    assert parsl <= cwltool * 1.2, f"parsl={parsl:.3f}s vs cwltool={cwltool:.3f}s"
    assert parsl <= toil * 1.2, f"parsl={parsl:.3f}s vs toil={toil:.3f}s"
