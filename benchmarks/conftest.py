"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module reproduces one figure (or one ablation) from the paper.
Workload sizes are scaled down from the paper's (which used up to 1,000 images
on a 3×48-core cluster) so the full suite runs on a laptop in minutes; the
*series shapes* — which runner is faster, how runtimes grow with workload size —
are what the harness reports and asserts.

A session-scoped ``series_recorder`` collects (figure, series, x, seconds)
tuples from the benchmarks and prints paper-style tables at the end of the
session, so ``pytest benchmarks/ --benchmark-only`` output contains the same
rows the figures plot.
"""

from __future__ import annotations

import collections
import json
import os
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
CWL_DIR = REPO_ROOT / "examples" / "cwl"
CONFIG_DIR = REPO_ROOT / "examples" / "configs"


@pytest.fixture(scope="session")
def cwl_dir() -> Path:
    return CWL_DIR


@pytest.fixture(scope="session")
def config_dir() -> Path:
    return CONFIG_DIR


class SeriesRecorder:
    """Collects benchmark measurements keyed by (figure, series, x)."""

    def __init__(self) -> None:
        self.points = collections.defaultdict(dict)   # figure -> {(series, x): seconds}

    def record(self, figure: str, series: str, x, seconds: float) -> None:
        self.points[figure][(series, x)] = seconds

    def series(self, figure: str, series: str):
        figure_points = self.points.get(figure, {})
        xs = sorted({x for (name, x) in figure_points if name == series})
        return [(x, figure_points[(series, x)]) for x in xs]

    def as_json(self) -> dict:
        """Machine-readable form: figure -> series -> sorted [x, seconds] points."""
        payload: dict = {}
        for figure, figure_points in self.points.items():
            series_map: dict = {}
            for (series, x), seconds in figure_points.items():
                series_map.setdefault(series, []).append([x, seconds])
            for series, points in series_map.items():
                try:
                    points.sort(key=lambda point: point[0])
                except TypeError:
                    points.sort(key=lambda point: str(point[0]))
            payload[figure] = series_map
        return payload

    def tables(self) -> str:
        lines = []
        for figure in sorted(self.points):
            lines.append(f"\n=== {figure} ===")
            figure_points = self.points[figure]
            series_names = sorted({name for (name, _x) in figure_points})
            xs = sorted({x for (_name, x) in figure_points})
            header = "x".ljust(10) + "".join(name.rjust(28) for name in series_names)
            lines.append(header)
            for x in xs:
                row = str(x).ljust(10)
                for name in series_names:
                    value = figure_points.get((name, x))
                    row += (f"{value:28.3f}" if value is not None else " " * 28)
                lines.append(row)
        return "\n".join(lines)


_RECORDER = SeriesRecorder()


@pytest.fixture(scope="session")
def series_recorder() -> SeriesRecorder:
    return _RECORDER


#: Where the machine-readable benchmark series land (override with the
#: BENCH_EXPRESSIONS_JSON / BENCH_DAG_JSON / BENCH_CACHE_JSON environment
#: variables).  CI uploads all three files as artifacts so the perf
#: trajectory is trackable across PRs.  Figures whose name starts with
#: ``DAG`` (the scheduler benchmarks of ``test_dag_scheduling.py``) go to
#: ``BENCH_dag.json``; figures starting with ``CACHE`` (the job-cache
#: benchmarks of ``test_job_cache.py``) go to ``BENCH_cache.json``; figures
#: starting with ``SCHED`` (the scheduler-core benchmarks of
#: ``test_scheduler_overhead.py``) go to ``BENCH_sched.json``; everything
#: else (the paper figures and ablations) goes to ``BENCH_expressions.json``.
BENCH_JSON_ENV = "BENCH_EXPRESSIONS_JSON"
BENCH_JSON_DEFAULT = REPO_ROOT / "BENCH_expressions.json"
BENCH_DAG_JSON_ENV = "BENCH_DAG_JSON"
BENCH_DAG_JSON_DEFAULT = REPO_ROOT / "BENCH_dag.json"
BENCH_CACHE_JSON_ENV = "BENCH_CACHE_JSON"
BENCH_CACHE_JSON_DEFAULT = REPO_ROOT / "BENCH_cache.json"
BENCH_SCHED_JSON_ENV = "BENCH_SCHED_JSON"
BENCH_SCHED_JSON_DEFAULT = REPO_ROOT / "BENCH_sched.json"


def _write_series(terminalreporter, payload: dict, env: str, default, label: str):
    if not payload:
        return
    path = os.environ.get(env) or str(default)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    terminalreporter.write_line(f"{label} series written to {path}")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print the paper-style series tables and write the BENCH json files."""
    if _RECORDER.points:
        terminalreporter.write_line("")
        terminalreporter.write_line("Paper-figure series reproduced by this benchmark run")
        for line in _RECORDER.tables().splitlines():
            terminalreporter.write_line(line)
        payload = _RECORDER.as_json()
        dag_payload = {figure: series for figure, series in payload.items()
                       if figure.startswith("DAG")}
        cache_payload = {figure: series for figure, series in payload.items()
                         if figure.startswith("CACHE")}
        sched_payload = {figure: series for figure, series in payload.items()
                         if figure.startswith("SCHED")}
        expr_payload = {figure: series for figure, series in payload.items()
                        if not (figure.startswith("DAG")
                                or figure.startswith("CACHE")
                                or figure.startswith("SCHED"))}
        _write_series(terminalreporter, expr_payload, BENCH_JSON_ENV,
                      BENCH_JSON_DEFAULT, "Benchmark")
        _write_series(terminalreporter, dag_payload, BENCH_DAG_JSON_ENV,
                      BENCH_DAG_JSON_DEFAULT, "DAG scheduling")
        _write_series(terminalreporter, cache_payload, BENCH_CACHE_JSON_ENV,
                      BENCH_CACHE_JSON_DEFAULT, "Job-cache")
        _write_series(terminalreporter, sched_payload, BENCH_SCHED_JSON_ENV,
                      BENCH_SCHED_JSON_DEFAULT, "Scheduler-core")


@pytest.fixture
def engine_session():
    """Factory: open a :class:`repro.api.Session` for any registered engine.

    Benchmarks use this to drive every execution path through the one unified
    interface; all opened sessions are closed at teardown.
    """
    from repro import api

    sessions = []

    def open_session(engine: str, **engine_options):
        session = api.Session(engine=engine, **engine_options)
        sessions.append(session)
        return session

    yield open_session
    for session in sessions:
        session.close()


@pytest.fixture(scope="session")
def conformance_corpus():
    """The declarative conformance corpus, loaded once per benchmark session.

    Shared with the differential-matrix benchmark so corpus parsing cost is
    paid once, exactly like the tests/conformance tier does.
    """
    from repro.testing.corpus import load_corpus

    return load_corpus()


@pytest.fixture
def image_workload(tmp_path_factory):
    """Factory: generate N synthetic images and return the CWL job order for them."""
    from repro.imaging.synthetic import generate_image_files

    def build(count: int, size: int = 64):
        directory = tmp_path_factory.mktemp(f"images_{count}")
        paths = generate_image_files(directory, count, width=size, height=size)
        return {
            "input_images": [{"class": "File", "path": path} for path in paths],
            "size": 32,
            "sepia": True,
            "radius": 1,
        }

    return build


@pytest.fixture(autouse=True)
def _clean_state():
    """Never leak a loaded DataFlowKernel or the shared cluster between benchmarks."""
    yield
    from repro.cluster.scheduler import reset_default_cluster
    from repro.parsl.dataflow.dflow import DataFlowKernelLoader

    try:
        DataFlowKernelLoader.clear()
    except Exception:
        pass
    try:
        reset_default_cluster()
    except Exception:
        pass
