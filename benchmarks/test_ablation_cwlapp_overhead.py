"""Ablation A1 — what does importing a CWL tool cost compared with a native Parsl app?

Two costs are isolated:

* construction: parsing + validating the CWL document into a ``CWLApp`` versus
  defining an equivalent ``@bash_app`` in Python,
* per-invocation overhead: submitting and completing an ``echo`` task through a
  CWLApp (command built from the CWL definition on the execution side) versus the
  hand-written bash app.

This quantifies the "price of portability" that the paper's integration pays for
reusing CWL tool definitions instead of Python ones.
"""

from __future__ import annotations

import pytest

import repro
from repro.core import CWLApp
from repro.parsl import bash_app


@pytest.fixture
def parsl_session(tmp_path_factory):
    base = tmp_path_factory.mktemp("cwlapp_overhead")
    import os

    previous = os.getcwd()
    os.chdir(base)
    repro.load(repro.thread_config(max_threads=4, run_dir=str(base / "runinfo")))
    yield base
    repro.clear()
    os.chdir(previous)


def test_cwlapp_construction_cost(benchmark, cwl_dir):
    """Parse + validate echo.cwl into a CWLApp."""
    benchmark(lambda: CWLApp(str(cwl_dir / "echo.cwl")))


def test_native_bash_app_construction_cost(benchmark):
    """Define the equivalent bash app natively in Python."""

    def construct():
        @bash_app
        def echo(message: str, stdout=None):
            return f"echo {message}"

        return echo

    benchmark(construct)


def test_cwlapp_invocation_cost(benchmark, cwl_dir, parsl_session):
    app = CWLApp(str(cwl_dir / "echo.cwl"))
    counter = {"n": 0}

    def invoke():
        counter["n"] += 1
        future = app(message=f"invocation {counter['n']}", stdout=f"cwl_{counter['n']}.txt")
        assert future.result() == 0

    benchmark.pedantic(invoke, rounds=10, iterations=1)


def test_native_bash_app_invocation_cost(benchmark, parsl_session):
    @bash_app
    def echo(message: str, stdout=None):
        return f"echo {message}"

    counter = {"n": 0}

    def invoke():
        counter["n"] += 1
        future = echo(f"invocation {counter['n']}", stdout=f"native_{counter['n']}.txt")
        assert future.result() == 0

    benchmark.pedantic(invoke, rounds=10, iterations=1)
