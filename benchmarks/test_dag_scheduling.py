"""DAG scheduling benchmarks: the shared-pool scheduler vs the seed behaviour.

The seed engine re-scanned every pending step under a lock (O(V²) polling) and
ran each scattered step on its own nested ``ThreadPoolExecutor``, so scatter
inside parallel steps multiplied threads without bound and scatter fan-in
barriered downstream work.  The graph scheduler replaces both: one bounded
worker pool, dependency-counting wake-ups, shards as first-class nodes.

Three DAG shapes exercise what the seed could not do:

* **wide fan-out** — N independent sleeping steps.  Parallel runtime must
  approach ``ceil(N / max_workers) * t`` instead of ``N * t``.
* **deep diamonds** — a chain of diamond motifs (a → b,c → d).  The two
  middle steps of each diamond must overlap.
* **scatter × subworkflow** — the Figure-1 workload shape (scatter over a
  multi-step subworkflow) *plus* a side scatter.  The seed's nested pools
  made total threads ``max_workers²``-ish here; the scheduler must stay
  within the single global cap **while still speeding up** — that pair of
  assertions is what "beats the seed nested-pool behaviour" means once the
  nested pools no longer exist to race against.

Series land in ``BENCH_dag.json`` (figures prefixed ``DAG``; see
``conftest.pytest_terminal_summary``), uploaded by CI next to
``BENCH_expressions.json``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import api
from repro.cwl.loader import load_document
from repro.cwl.runtime import RuntimeContext

DELAY = 0.05
MAX_WORKERS = 4

FIGURE_WIDE = "DAG wide fan-out: runtime [s] vs independent steps"
FIGURE_DIAMOND = "DAG deep diamonds: runtime [s] vs diamond count"
FIGURE_NESTED = "DAG scatter x subworkflow: runtime [s] vs scatter width"


def sleep_tool() -> dict:
    """A tool that sleeps then writes a file named by its ``name`` input."""
    return {
        "class": "CommandLineTool",
        "baseCommand": [
            "python3", "-c",
            "import sys, time; time.sleep(float(sys.argv[1])); "
            "open(sys.argv[2], 'w').write(sys.argv[2])",
        ],
        "inputs": {
            "delay": {"type": "double", "inputBinding": {"position": 1}},
            "name": {"type": "string", "inputBinding": {"position": 2}},
            # Declared so upstream File outputs can be wired in as pure
            # ordering dependencies (the command ignores them).
            "after": {"type": "Any?"},
        },
        "outputs": {"out": {"type": "File", "outputBinding": {"glob": "$(inputs.name)"}}},
    }


def wide_fanout_workflow(count: int) -> dict:
    steps = {
        f"s{i}": {"run": sleep_tool(),
                  "in": {"delay": "delay", "name": {"default": f"wide_{i}.txt"}},
                  "out": ["out"]}
        for i in range(count)
    }
    return {
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "MultipleInputFeatureRequirement"}],
        "inputs": {"delay": "double"},
        "outputs": {"all": {"type": "Any",
                            "outputSource": [f"s{i}/out" for i in range(count)]}},
        "steps": steps,
    }


def deep_diamond_workflow(diamonds: int) -> dict:
    """``diamonds`` chained a → (b, c) → d motifs; b and c can overlap."""
    steps: dict = {}
    upstream = None
    for i in range(diamonds):
        top = {"delay": "delay", "name": {"default": f"top_{i}.txt"}}
        if upstream:
            top["after"] = upstream
        steps[f"top_{i}"] = {"run": sleep_tool(), "in": top, "out": ["out"]}
        for side in ("left", "right"):
            steps[f"{side}_{i}"] = {
                "run": sleep_tool(),
                "in": {"delay": "delay", "name": {"default": f"{side}_{i}.txt"},
                       "after": f"top_{i}/out"},
                "out": ["out"]}
        steps[f"join_{i}"] = {
            "run": sleep_tool(),
            "in": {"delay": "delay", "name": {"default": f"join_{i}.txt"},
                   "after": {"source": [f"left_{i}/out", f"right_{i}/out"]}},
            "out": ["out"]}
        upstream = f"join_{i}/out"
    return {
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "MultipleInputFeatureRequirement"}],
        "inputs": {"delay": "double"},
        "outputs": {"final": {"type": "Any", "outputSource": upstream}},
        "steps": steps,
    }


def nested_scatter_workflow() -> dict:
    """Scatter over a two-step subworkflow plus a side scatter (Figure-1 shape)."""
    child = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "StepInputExpressionRequirement"}],
        "inputs": {"delay": "double", "name": "string"},
        "outputs": {"result": {"type": "File", "outputSource": "second/out"}},
        "steps": {
            "first": {"run": sleep_tool(),
                      "in": {"delay": "delay",
                             "name": {"source": "name", "valueFrom": "$(self)_1.txt"}},
                      "out": ["out"]},
            "second": {"run": sleep_tool(),
                       "in": {"delay": "delay", "after": "first/out",
                              "name": {"source": "name", "valueFrom": "$(self)_2.txt"}},
                       "out": ["out"]},
        },
    }
    return {
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"},
                         {"class": "SubworkflowFeatureRequirement"},
                         {"class": "StepInputExpressionRequirement"}],
        "inputs": {"delay": "double", "names": "string[]", "side_names": "string[]"},
        "outputs": {"all": {"type": "Any", "outputSource": "pipe/result"},
                    "side": {"type": "Any", "outputSource": "extra/out"}},
        "steps": {
            "pipe": {"run": child, "scatter": "name",
                     "in": {"delay": "delay", "name": "names"}, "out": ["result"]},
            "extra": {"run": sleep_tool(), "scatter": "name",
                      "in": {"delay": "delay", "name": "side_names"},
                      "out": ["out"]},
        },
    }


def run_engine(engine: str, doc: dict, job_order: dict, workdir, **options):
    workdir.mkdir(parents=True, exist_ok=True)
    if engine in ("reference", "toil"):
        options.setdefault("runtime_context", RuntimeContext(basedir=str(workdir)))
        options.setdefault("max_workers", MAX_WORKERS)
    if engine == "toil":
        options.setdefault("job_store_dir", str(workdir / "jobstore"))
    return api.run(load_document(doc), dict(job_order), engine=engine, **options)


class ThreadSampler:
    """Samples live scheduler worker threads while a workload runs."""

    PREFIXES = ("cwl-dag", "cwl-workflow", "cwl-scatter")

    def __init__(self) -> None:
        self.peak = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._sample, daemon=True)

    def _sample(self) -> None:
        while not self._stop.is_set():
            live = sum(1 for t in threading.enumerate()
                       if t.name.startswith(self.PREFIXES))
            self.peak = max(self.peak, live)
            time.sleep(0.005)

    def __enter__(self) -> "ThreadSampler":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


WIDE_COUNTS = [4, 12]
WIDE_SERIES = {
    "reference (serial)": ("reference", {"parallel": False}),
    "reference (parallel)": ("reference", {"parallel": True}),
    "toil-like (parallel)": ("toil", {}),
    "parsl-workflow": ("parsl-workflow", {}),
}


@pytest.mark.parametrize("count", WIDE_COUNTS)
@pytest.mark.parametrize("series", list(WIDE_SERIES))
def test_dag_wide_fanout(benchmark, series, count, tmp_path, series_recorder,
                         monkeypatch):
    engine, options = WIDE_SERIES[series]
    doc = wide_fanout_workflow(count)
    workdir = tmp_path / series.replace(" ", "_")
    if engine == "parsl-workflow":
        workdir.mkdir(parents=True, exist_ok=True)
        monkeypatch.chdir(workdir)
        import repro

        options = dict(options,
                       config=repro.thread_config(max_threads=MAX_WORKERS,
                                                  run_dir=str(workdir / "runinfo")))

    def run():
        result = run_engine(engine, doc, {"delay": DELAY}, workdir, **options)
        assert len(result.outputs["all"]) == count

    benchmark.pedantic(run, rounds=1, iterations=1)
    series_recorder.record(FIGURE_WIDE, series, count, benchmark.stats.stats.mean)


# Three sizes per series so BENCH_dag.json records growth curves, not single
# points (the scatter×subworkflow series below likewise).
DIAMOND_COUNTS = [1, 2, 3]


@pytest.mark.parametrize("diamonds", DIAMOND_COUNTS)
@pytest.mark.parametrize("series", ["reference (serial)", "reference (parallel)"])
def test_dag_deep_diamonds(benchmark, series, diamonds, tmp_path, series_recorder):
    engine, options = WIDE_SERIES[series]
    doc = deep_diamond_workflow(diamonds)

    def run():
        result = run_engine(engine, doc, {"delay": DELAY},
                            tmp_path / series.replace(" ", "_"), **options)
        assert result.outputs["final"] is not None

    benchmark.pedantic(run, rounds=1, iterations=1)
    series_recorder.record(FIGURE_DIAMOND, series, diamonds, benchmark.stats.stats.mean)


NESTED_WIDTHS = [2, 4, 6]


@pytest.mark.parametrize("width", NESTED_WIDTHS)
@pytest.mark.parametrize("series", ["reference (serial)", "reference (parallel)"])
def test_dag_scatter_in_subworkflow(benchmark, series, width, tmp_path,
                                    series_recorder):
    """The seed's worst case: scatter shards inside a parallel workflow.  The
    shared pool must respect the global thread cap *and* still parallelise."""
    engine, options = WIDE_SERIES[series]
    doc = nested_scatter_workflow()
    names = [f"img{i}" for i in range(width)]
    side_names = [f"side{i}.txt" for i in range(width)]

    def run():
        with ThreadSampler() as sampler:
            result = run_engine(engine, doc,
                                {"delay": DELAY, "names": names,
                                 "side_names": side_names},
                                tmp_path / series.replace(" ", "_"), **options)
        assert len(result.outputs["all"]) == width
        assert sampler.peak <= MAX_WORKERS, \
            f"live scheduler threads ({sampler.peak}) exceeded max_workers ({MAX_WORKERS})"

    benchmark.pedantic(run, rounds=1, iterations=1)
    series_recorder.record(FIGURE_NESTED, series, width, benchmark.stats.stats.mean)


# ------------------------------------------------------------- shape checks

def _series_point(series_recorder, figure, series, x):
    return series_recorder.points.get(figure, {}).get((series, x))


def test_dag_shape_wide_fanout_parallel_beats_serial(series_recorder):
    """With N independent steps, the shared pool must run close to N/workers,
    clearly faster than serial execution (the seed's serial mode)."""
    largest = WIDE_COUNTS[-1]
    serial = _series_point(series_recorder, FIGURE_WIDE, "reference (serial)", largest)
    parallel = _series_point(series_recorder, FIGURE_WIDE, "reference (parallel)", largest)
    if serial is None or parallel is None:
        pytest.skip("wide fan-out series were not measured")
    assert parallel <= serial * 0.65, \
        f"parallel {parallel:.3f}s should clearly beat serial {serial:.3f}s"


def test_dag_shape_diamonds_overlap(series_recorder):
    """Each diamond's two middle steps must overlap under the scheduler."""
    diamonds = DIAMOND_COUNTS[-1]
    serial = _series_point(series_recorder, FIGURE_DIAMOND, "reference (serial)", diamonds)
    parallel = _series_point(series_recorder, FIGURE_DIAMOND, "reference (parallel)", diamonds)
    if serial is None or parallel is None:
        pytest.skip("diamond series were not measured")
    assert parallel <= serial * 0.95, \
        f"parallel {parallel:.3f}s should overlap diamond arms vs serial {serial:.3f}s"


def test_dag_shape_nested_scatter_speedup_within_thread_cap(series_recorder):
    """Scatter-inside-subworkflow parallelises within one bounded pool: faster
    than serial without the seed's nested-pool thread multiplication (the cap
    itself is asserted inside the benchmark run)."""
    width = NESTED_WIDTHS[-1]
    serial = _series_point(series_recorder, FIGURE_NESTED, "reference (serial)", width)
    parallel = _series_point(series_recorder, FIGURE_NESTED, "reference (parallel)", width)
    if serial is None or parallel is None:
        pytest.skip("nested scatter series were not measured")
    assert parallel <= serial * 0.7, \
        f"parallel {parallel:.3f}s should clearly beat serial {serial:.3f}s"
