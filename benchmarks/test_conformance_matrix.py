"""Differential-matrix overhead: what one conformance case costs per config.

Runs one scatter-workflow corpus case through the engine × cache matrix the
conformance harness uses, records per-configuration wall time (figure
``CONF_matrix``) and asserts the differential contract itself — zero
divergences — so the benchmark doubles as a conformance smoke check.
"""

from __future__ import annotations

import pytest

from repro.api.matrix import matrix_configs
from repro.testing.differential import run_case


@pytest.fixture
def scatter_case(conformance_corpus):
    return next(case for case in conformance_corpus
                if case.id == "wf_scatter_dotproduct")


def test_conformance_matrix_cost_per_config(scatter_case, series_recorder,
                                            tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    configs = matrix_configs(engines=("reference", "toil", "parsl"),
                             cache_modes=("off", "warm"))
    outcome = run_case(scatter_case, configs, str(tmp_path / "matrix"))
    assert outcome.passed, "\n".join(outcome.divergences)

    for config_outcome in outcome.outcomes:
        run = config_outcome.run
        if run.result is None:
            continue
        series_recorder.record("CONF_matrix", run.config.engine,
                               run.config.cache, run.result.wall_time_s)
        if run.config.engine in ("reference", "toil") and run.config.cache == "warm":
            assert run.cache_hits() > 0, run.config.label
