"""repro — reproduction of *Parsl+CWL: Towards Combining the Python and CWL Ecosystems*.

The package is organised as a set of substrates plus the paper's core contribution:

* :mod:`repro.parsl` — a from-scratch implementation of the Parsl parallel programming
  model (apps, futures, DataFlowKernel, executors, providers).
* :mod:`repro.cwl` — a from-scratch implementation of a CWL v1.2 subset (document model,
  expressions, command-line construction, output collection, reference and Toil-like
  runners).
* :mod:`repro.imaging` — a pure-numpy PNG codec and the image-processing command-line
  tools used by the paper's evaluation workflow.
* :mod:`repro.cluster` — a simulated Slurm-like cluster used by providers and batch
  systems so that "multi node" experiments can run on a laptop.
* :mod:`repro.core` — the paper's contribution: ``CWLApp``, the ``parsl-cwl`` runner,
  the TaPS-style YAML configuration loader and ``InlinePythonRequirement`` support.

The most commonly used entry points are re-exported here for convenience::

    import repro
    repro.load(repro.thread_config())
    echo = repro.CWLApp("echo.cwl")
    fut = echo(message="Hello, World!")
    fut.result()
"""

from __future__ import annotations

from repro.parsl import (
    Config,
    DataFlowKernel,
    bash_app,
    clear,
    dfk,
    join_app,
    load,
    python_app,
)
from repro.parsl.data_provider.files import File
from repro.parsl.configs import (
    htex_config,
    local_process_config,
    thread_config,
)
from repro.core.cwl_app import CWLApp
from repro.core.yaml_config import load_yaml_config
from repro.core.workflow_bridge import CWLWorkflowBridge
from repro import api
from repro.api import ExecutionHooks, ExecutionResult, Session

__version__ = "1.0.0"

__all__ = [
    "CWLApp",
    "CWLWorkflowBridge",
    "Config",
    "DataFlowKernel",
    "ExecutionHooks",
    "ExecutionResult",
    "File",
    "Session",
    "api",
    "bash_app",
    "clear",
    "dfk",
    "htex_config",
    "join_app",
    "load",
    "load_yaml_config",
    "local_process_config",
    "python_app",
    "thread_config",
    "__version__",
]
