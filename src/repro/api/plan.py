"""Execution-plan introspection: the workflow dataflow IR through the API.

``api.plan(process)`` (and :meth:`Session.plan`) compile a process into the
same :class:`~repro.cwl.graph.WorkflowGraph` every engine executes from and
return its node/edge/critical-path summary — the DAG a run *will* follow,
available without running anything.  Engines attach the same summary to
:attr:`ExecutionResult.plan` when they execute a Workflow.

Quick look::

    from repro import api

    plan = api.plan("examples/cwl/image_pipeline.cwl")
    print(plan.node_count, plan.critical_path)
    # 3 ['resize_image', 'filter_image', 'blur_image']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.cwl.graph import build_graph
from repro.cwl.schema import Workflow


@dataclass
class ExecutionPlan:
    """The dataflow graph a process execution will follow."""

    #: Id of the planned process (may be empty for anonymous documents).
    process_id: str
    #: ``"Workflow"`` or the process class name for single-process plans.
    kind: str
    #: One entry per graph node: id, kind, scope, step, priority, scatter, deps.
    nodes: List[Dict[str, Any]] = field(default_factory=list)
    #: ``[from, to]`` dependency edges (from must complete before to starts).
    edges: List[List[str]] = field(default_factory=list)
    #: Node ids along one longest dependency chain.
    critical_path: List[str] = field(default_factory=list)
    #: Length of that chain (the minimum number of sequential waves).
    critical_path_length: int = 0

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def scatter_nodes(self) -> List[str]:
        """Ids of nodes that expand into shards at runtime."""
        return [node["id"] for node in self.nodes if node.get("scatter")]

    def max_parallelism(self) -> int:
        """Width of the widest anti-chain approximation: nodes per depth level."""
        depth: Dict[str, int] = {}
        preds: Dict[str, List[str]] = {node["id"]: list(node.get("deps", []))
                                       for node in self.nodes}
        for node in self.nodes:  # nodes are topologically ordered
            node_id = node["id"]
            depth[node_id] = 1 + max((depth[p] for p in preds[node_id] if p in depth),
                                     default=0)
        widths: Dict[int, int] = {}
        for level in depth.values():
            widths[level] = widths.get(level, 0) + 1
        return max(widths.values(), default=0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "process_id": self.process_id,
            "kind": self.kind,
            "nodes": self.nodes,
            "edges": self.edges,
            "critical_path": self.critical_path,
            "critical_path_length": self.critical_path_length,
            "node_count": self.node_count,
            "edge_count": self.edge_count,
        }


def describe_workflow(workflow: Workflow) -> Dict[str, Any]:
    """The graph summary engines attach to :attr:`ExecutionResult.plan`."""
    return build_graph(workflow).describe()


def plan_for(process: Any) -> ExecutionPlan:
    """Build the :class:`ExecutionPlan` for an already-loaded process."""
    if isinstance(process, Workflow):
        description = describe_workflow(process)
        return ExecutionPlan(
            process_id=process.id or "",
            kind="Workflow",
            nodes=description["nodes"],
            edges=description["edges"],
            critical_path=description["critical_path"],
            critical_path_length=description["critical_path_length"],
        )
    node_id = process.id or type(process).__name__
    return ExecutionPlan(
        process_id=process.id or "",
        kind=type(process).__name__,
        nodes=[{"id": node_id, "kind": "step", "scope": "", "step": None,
                "priority": 1, "scatter": False, "deps": []}],
        edges=[],
        critical_path=[node_id],
        critical_path_length=1,
    )


def plan(process: Any) -> ExecutionPlan:
    """Compile ``process`` (path, dict or loaded Process) into its plan."""
    from repro.api.engine import Engine

    return plan_for(Engine.load_process(process))
