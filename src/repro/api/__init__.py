"""Unified execution API over every way this repository can run CWL.

The paper's contribution (the ``parsl-cwl`` bridge) coexists with the
cwltool-like :class:`~repro.cwl.runners.reference.ReferenceRunner`, the
Toil-like :class:`~repro.cwl.runners.toil.runner.ToilStyleRunner` and the
:class:`~repro.core.workflow_bridge.CWLWorkflowBridge` — four execution paths
with four calling conventions.  This package puts one facade in front of all
of them, the same way Parsl composes pluggable executors behind a single
DataFlowKernel:

* :class:`Engine` — the protocol every execution backend implements, plus a
  registry (:func:`register_engine` / :func:`get_engine` /
  :func:`list_engines`) with the built-in entries ``"reference"``, ``"toil"``,
  ``"parsl"`` and ``"parsl-workflow"``.
* :class:`Session` — run processes through a chosen engine:
  ``run(...) -> ExecutionResult`` blocks, ``submit(...) -> ExecutionHandle``
  is asynchronous.
* :class:`ExecutionResult` — the unified return shape (outputs, status,
  jobs_run, wall_time_s, per-job events) subsuming the runners' plain dicts,
  futures dicts and ``RunnerResult``.
* :class:`ExecutionHooks` — ``on_job_start`` / ``on_job_end`` callbacks so
  monitoring and benchmarks observe every engine through one interface.
* :func:`plan` / :meth:`Session.plan` — compile a process into the shared
  :class:`~repro.cwl.graph.WorkflowGraph` IR and return its node/edge/
  critical-path summary without executing anything (also attached to every
  workflow result as :attr:`ExecutionResult.plan`).
* :func:`run_matrix` / :class:`MatrixConfig` — execute one process across
  the engine × cache × compiled-expression × faults matrix with per-run
  isolation and canonicalised (engine-independent) outputs; the execution
  backbone of the conformance harness in :mod:`repro.testing`.
* Fault tolerance — :class:`RetryPolicy` (deterministic seeded backoff),
  per-job ``timeout_s``, ``on_error="continue"`` partial results,
  :func:`run_with_journal` / :func:`resume` for crash-safe runs, and the
  seeded fault-injection plans of :mod:`repro.cwl.faults`.

Quickstart::

    from repro import api

    result = api.run("examples/cwl/echo.cwl", {"message": "hi"},
                     engine="reference")
    print(result.outputs["output"]["path"], result.wall_time_s)

    with api.Session(engine="toil") as session:
        for order in job_orders:
            session.run("tool.cwl", order)
"""

from repro.api.engine import (
    Engine,
    EngineError,
    UnknownEngineError,
    get_engine,
    list_engines,
    register_engine,
    resolve_engine_name,
)
from repro.api.events import ExecutionHooks, JobEvent
from repro.api.matrix import (
    CACHE_MODES,
    ENGINE_ORDER,
    REFERENCE_CONFIG,
    MatrixConfig,
    MatrixRun,
    matrix_configs,
    run_config,
    run_matrix,
)
from repro.api.plan import ExecutionPlan, plan
from repro.api.result import ExecutionResult
from repro.api.resume import resume, resume_info, run_with_journal
from repro.api.session import ExecutionHandle, Session, run, submit
from repro.cwl.faults import FaultPlan, FaultSpec, fault_profiles, get_fault_profile
from repro.cwl.retry import RetryPolicy

# Importing the module registers the built-in engines.
from repro.api import engines as _builtin_engines  # noqa: F401  (side effect)

__all__ = [
    "CACHE_MODES",
    "ENGINE_ORDER",
    "Engine",
    "EngineError",
    "ExecutionHandle",
    "ExecutionHooks",
    "ExecutionPlan",
    "ExecutionResult",
    "FaultPlan",
    "FaultSpec",
    "JobEvent",
    "MatrixConfig",
    "MatrixRun",
    "REFERENCE_CONFIG",
    "RetryPolicy",
    "Session",
    "UnknownEngineError",
    "fault_profiles",
    "get_engine",
    "get_fault_profile",
    "list_engines",
    "matrix_configs",
    "plan",
    "register_engine",
    "resolve_engine_name",
    "resume",
    "resume_info",
    "run",
    "run_config",
    "run_matrix",
    "run_with_journal",
    "submit",
]
