"""The :class:`Engine` protocol and the engine registry.

An *engine* adapts one execution path (reference runner, Toil-like runner,
Parsl bridge, ...) to the single calling convention
``execute(process, job_order, hooks) -> ExecutionResult``.  Engines are
constructed through a registry of named factories so that callers — CLIs,
benchmarks, tests — select a backend by name:

.. code-block:: python

    register_engine("reference", ReferenceEngine, aliases=("cwltool",))
    engine = get_engine("reference", parallel=True)

Factories are any callable returning an :class:`Engine`; keyword options are
passed through from :func:`get_engine` (and from
:class:`~repro.api.session.Session`).
"""

from __future__ import annotations

import abc
import os
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.api.events import EventRecorder, ExecutionHooks
from repro.api.result import ExecutionResult
from repro.cwl.loader import load_document, load_document_cached
from repro.cwl.schema import Process

ProcessLike = Union[str, os.PathLike, Dict[str, Any], Process]


class EngineError(RuntimeError):
    """An engine cannot execute the given process."""


class UnknownEngineError(EngineError):
    """The requested engine name is not registered."""


class Engine(abc.ABC):
    """One execution backend behind the unified API."""

    #: Registry name; set by the concrete engine (and on registration).
    name: str = "engine"

    @abc.abstractmethod
    def execute(self, process: Process, job_order: Dict[str, Any],
                hooks: Optional[ExecutionHooks] = None) -> ExecutionResult:
        """Run ``process`` with ``job_order``; raises on failure."""

    def close(self) -> None:
        """Release engine resources (job stores, kernels, pools)."""

    # ----------------------------------------------------------------- helpers

    @staticmethod
    def load_process(process: ProcessLike) -> Process:
        """Accept a path, a parsed document dict or an already-loaded Process.

        Paths go through the loader's document cache (invalidated on mtime or
        size change): repeated ``api.run`` calls on the same file skip the
        YAML parse.  Runner-level fidelity is unaffected — the reference
        runner still revalidates per job and evaluates uncached.
        """
        if isinstance(process, Process):
            return process
        if isinstance(process, (str, os.PathLike)):
            return load_document_cached(process)
        return load_document(process)

    @staticmethod
    def recorder_for(hooks: Optional[ExecutionHooks]) -> EventRecorder:
        return EventRecorder(hooks)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


EngineFactory = Callable[..., Engine]

_REGISTRY: Dict[str, EngineFactory] = {}
_ALIASES: Dict[str, str] = {}


def register_engine(name: str, factory: EngineFactory, *,
                    aliases: Iterable[str] = (), replace: bool = False) -> None:
    """Register ``factory`` under ``name`` (plus optional aliases)."""
    key = name.lower()
    if key in _REGISTRY and not replace:
        raise ValueError(f"engine {name!r} is already registered "
                         "(pass replace=True to override)")
    _REGISTRY[key] = factory
    for alias in aliases:
        _ALIASES[alias.lower()] = key


def resolve_engine_name(name: str) -> str:
    """Canonical registry name for ``name`` (resolving aliases)."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise UnknownEngineError(
            f"unknown engine {name!r}; registered engines: {list_engines()}"
        )
    return key


def get_engine(name: str, **options: Any) -> Engine:
    """Instantiate the engine registered under ``name``.

    Keyword options are forwarded to the engine factory, so each engine keeps
    its backend-specific knobs (``parallel=`` for the reference runner,
    ``config=`` for the Parsl engines, ``batch_system=`` for Toil, ...).
    """
    key = resolve_engine_name(name)
    engine = _REGISTRY[key](**options)
    engine.name = key
    return engine


def list_engines() -> List[str]:
    """Sorted canonical names of all registered engines."""
    return sorted(_REGISTRY)
