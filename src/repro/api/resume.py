"""Crash-safe runs: journalled execution and ``resume()``.

:func:`run_with_journal` executes a process with a *run directory* attached:
an append-only JSONL journal of state transitions plus a job-cache store
scoped to the run.  If the process (or the whole interpreter) dies mid-run —
crash, SIGKILL, Ctrl-C — :func:`resume` picks the run back up from the same
directory: the document fingerprint is verified against the journal header,
the run re-executes against the same store, and every node that completed
before the interruption replays as a cache hit, so only incomplete nodes
actually re-execute.

This is deliberately *re-execution through the cache* rather than journal
replay: the journal tells us (and tests/operators) what happened, while
correctness of the resumed outputs rests on the content-addressed store —
the same mechanism that already guarantees warm-run equivalence across all
four engines.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.cwl.journal import (
    document_fingerprint,
    journal_header,
    node_states,
    open_run_dir,
    read_journal,
    run_cache_dir,
)

__all__ = ["run_with_journal", "resume", "resume_info"]


def run_with_journal(process_path: str,
                     job_order: Optional[Dict[str, Any]] = None, *,
                     run_dir: str, engine: str = "reference",
                     hooks: Any = None, **engine_options: Any):
    """Execute ``process_path`` with a journal + run-scoped cache attached.

    The run directory is created if missing.  ``engine_options`` pass through
    to the engine exactly like :func:`repro.api.run`; the journal and the
    run's private cache store are folded in on top (an explicit
    ``cache_dir=`` in the options wins over the run-scoped store).
    """
    from repro.api.session import run as api_run

    job_order = dict(job_order or {})
    journal = open_run_dir(run_dir, process_path=os.fspath(process_path),
                           job_order=_json_safe(job_order), engine=engine)
    options = dict(engine_options)
    options.setdefault("cache_dir", run_cache_dir(run_dir))
    options["journal"] = journal
    try:
        result = api_run(os.fspath(process_path), job_order, engine=engine,
                         hooks=hooks, **options)
    except BaseException as exc:
        journal.record("result", status="failed", error=str(exc),
                       error_class=type(exc).__name__)
        raise
    else:
        journal.record("result", status=result.status)
        return result
    finally:
        journal.close()


def resume(run_dir: str, *, engine: Optional[str] = None,
           hooks: Any = None, **engine_options: Any):
    """Resume an interrupted journalled run from its run directory.

    Reads the journal header, refuses to continue if the process document
    changed since the original run (fingerprint mismatch), then re-runs the
    workflow with the same job order and run-scoped cache: completed nodes
    replay as cache hits, incomplete nodes execute for real.  ``engine=``
    overrides the recorded engine (the cache store is engine-independent).
    """
    records = read_journal(run_dir)
    header = journal_header(records)
    process_path = header["process"]
    if not os.path.exists(process_path):
        raise FileNotFoundError(
            f"cannot resume {run_dir!r}: process document {process_path!r} "
            "no longer exists")
    current = document_fingerprint(process_path)
    if current != header.get("fingerprint"):
        raise ValueError(
            f"cannot resume {run_dir!r}: {process_path!r} changed since the "
            "original run (document fingerprint mismatch); start a fresh run")
    return run_with_journal(
        process_path, dict(header.get("job_order") or {}),
        run_dir=run_dir, engine=engine or header.get("engine", "reference"),
        hooks=hooks, **engine_options)


def resume_info(run_dir: str) -> Dict[str, Any]:
    """Inspect a run directory without executing anything.

    Returns the header plus the final recorded per-node states and whether a
    terminal ``result`` record exists (i.e. the run actually finished).
    """
    records = read_journal(run_dir)
    header = journal_header(records)
    results = [r for r in records if r.get("kind") == "result"]
    return {
        "process": header.get("process"),
        "engine": header.get("engine"),
        "job_order": header.get("job_order"),
        "node_states": node_states(records),
        "completed": bool(results),
        "status": results[-1].get("status") if results else None,
    }


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of a job order to JSON-serialisable values."""
    import json

    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        if isinstance(value, dict):
            return {str(k): _json_safe(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [_json_safe(v) for v in value]
        return repr(value)
