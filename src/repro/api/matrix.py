"""Run one process across an engine × cache × expression-pipeline matrix.

The conformance/differential harness (:mod:`repro.testing`) needs to execute
the *same* document and job order under every supported configuration and
compare the results.  This module is the API-level half of that: a
:class:`MatrixConfig` names one configuration, :func:`run_config` executes a
process under it (handling the cold/warm cache protocol and per-run working
directories) and returns a :class:`MatrixRun` whose outputs are already
normalised to the engine-independent canonical form of
:mod:`repro.cwl.canonical`.

A configuration has five axes:

========== ==========================================================
engine     any registry name (``reference``/``toil``/``parsl``/
           ``parsl-workflow``)
cache      ``"off"`` (job cache disabled), ``"cold"`` (fresh store,
           single run) or ``"warm"`` (a priming run populates the
           store, a second run — the one reported — replays from it)
compiled   ``None`` (engine default), ``True`` (compiled-expression
           pipeline) or ``False`` (fresh uncached evaluators)
faults     ``None`` (no injection) or the name of a
           :func:`repro.cwl.faults.fault_profiles` entry — a seeded
           deterministic fault plan plus the retry policy that rides
           with it, applied identically to every engine
pipeline   ``None`` (engine default: the thread-pool scheduler core)
           or ``True`` — the asyncio pipelined core on the runner
           engines; on the Parsl engines a bounded in-flight
           submission window (the bridge's ``max_inflight``)
========== ==========================================================
"""

from __future__ import annotations

import copy
import os
import shutil
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.api.result import ExecutionResult
from repro.cwl.canonical import canonical_outputs
from repro.cwl.errors import error_class, exit_class, unwrap_failure
from repro.cwl.runtime import RuntimeContext

#: All built-in engines, in reporting order.
ENGINE_ORDER = ("reference", "toil", "parsl", "parsl-workflow")
#: The cache axis.
CACHE_MODES = ("off", "cold", "warm")


@dataclass(frozen=True)
class MatrixConfig:
    """One point of the engine × cache × compiled matrix."""

    engine: str
    cache: str = "off"
    compiled: Optional[bool] = None
    #: Name of a fault profile (see :func:`repro.cwl.faults.fault_profiles`)
    #: to inject, or ``None``.  A *name* rather than the plan object keeps
    #: the config frozen/hashable; the plan is instantiated fresh per run.
    faults: Optional[str] = None
    #: ``True`` selects the asyncio pipelined scheduler core (runner
    #: engines) / a bounded submission window (Parsl engines); ``None``
    #: keeps each engine's default core.
    pipeline: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.cache not in CACHE_MODES:
            raise ValueError(f"unknown cache mode {self.cache!r} "
                             f"(expected one of {CACHE_MODES})")

    @property
    def label(self) -> str:
        """Stable human-readable identifier (used in reports and paths)."""
        compiled = {None: "default", True: "on", False: "off"}[self.compiled]
        label = f"{self.engine}/cache={self.cache}/compiled={compiled}"
        if self.faults:
            label += f"/faults={self.faults}"
        if self.pipeline:
            label += "/pipeline=on"
        return label


#: The oracle every other configuration is compared against: the
#: cwltool-fidelity reference runner, no cache, its default (uncached)
#: expression pipeline.
REFERENCE_CONFIG = MatrixConfig("reference")


@dataclass
class MatrixRun:
    """The normalised outcome of one configuration's execution."""

    config: MatrixConfig
    #: Canonical outputs (see :func:`repro.cwl.canonical.canonical_outputs`)
    #: when the run succeeded, else ``None``.
    outputs: Optional[Dict[str, Any]] = None
    #: Engine-independent outcome (``"success"`` or a failure class from
    #: :data:`repro.cwl.errors.EXIT_CLASSES`).
    exit_class: str = "success"
    #: Stable exception class name on failure.
    error_class: Optional[str] = None
    #: Failure message on failure.
    error: Optional[str] = None
    #: The raw result (present on success only).
    result: Optional[ExecutionResult] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.exit_class == "success"

    def cache_hits(self) -> int:
        return self.result.cache_hits() if self.result is not None else 0

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary (what conformance reports record per run)."""
        summary: Dict[str, Any] = {
            "config": self.config.label,
            "exit_class": self.exit_class,
        }
        if self.error is not None:
            summary["error_class"] = self.error_class
            summary["error"] = self.error
        if self.result is not None:
            summary["jobs_run"] = self.result.jobs_run
            summary["wall_time_s"] = round(self.result.wall_time_s, 6)
            if self.result.cache_stats is not None:
                summary["cache_stats"] = dict(self.result.cache_stats)
        return summary


def matrix_configs(engines: Sequence[str] = ENGINE_ORDER,
                   cache_modes: Sequence[str] = ("off",),
                   compiled_modes: Sequence[Optional[bool]] = (None,),
                   fault_modes: Sequence[Optional[str]] = (None,),
                   pipeline_modes: Sequence[Optional[bool]] = (None,),
                   ) -> List[MatrixConfig]:
    """The cross product of the five axes, in deterministic order."""
    return [MatrixConfig(engine, cache, compiled, faults, pipeline)
            for engine in engines
            for cache in cache_modes
            for compiled in compiled_modes
            for faults in fault_modes
            for pipeline in pipeline_modes]


def run_config(process: Any, job_order: Optional[Dict[str, Any]],
               config: MatrixConfig, workdir: str,
               max_workers: int = 4) -> MatrixRun:
    """Execute ``process`` under one configuration; never raises.

    ``workdir`` is this run's private directory (created if missing): job
    directories, the Parsl run dir and — for the cache modes — the job-cache
    store all live beneath it, so runs cannot observe each other.  The
    ``warm`` protocol performs a priming run in a sibling directory first and
    reports the second, store-replaying run.
    """
    workdir = os.path.abspath(workdir)
    cache_dir: Optional[str] = None
    if config.cache in ("cold", "warm"):
        cache_dir = os.path.join(workdir, "jobcache")
    if config.cache == "warm":
        _execute(process, job_order, config, os.path.join(workdir, "prime"),
                 cache_dir, max_workers)
    run_dir = os.path.join(workdir, "run") if config.cache == "warm" else workdir
    return _execute(process, job_order, config, run_dir, cache_dir, max_workers)


def run_matrix(process: Any, job_order: Optional[Dict[str, Any]] = None, *,
               configs: Optional[Sequence[MatrixConfig]] = None,
               workdir: Optional[str] = None,
               max_workers: int = 4) -> List[MatrixRun]:
    """Execute ``process`` under every configuration; returns one run each.

    With no ``configs``, the four engines run cache-off at their default
    expression pipeline.  With no ``workdir``, a temporary directory is used
    and removed afterwards (outputs are canonicalised — content-hashed —
    before the files disappear).
    """
    configs = list(configs) if configs is not None else matrix_configs()
    cleanup = workdir is None
    base = os.path.abspath(workdir) if workdir is not None \
        else tempfile.mkdtemp(prefix="repro-matrix-")
    try:
        runs = []
        for index, config in enumerate(configs):
            run_dir = os.path.join(base, f"{index:03d}-{_path_safe(config.label)}")
            runs.append(run_config(process, job_order, config, run_dir,
                                   max_workers=max_workers))
        return runs
    finally:
        if cleanup:
            shutil.rmtree(base, ignore_errors=True)


# ----------------------------------------------------------------- internals


def _path_safe(label: str) -> str:
    return label.replace("/", "_").replace("=", "-")


#: Executions chdir into their run directory (the Parsl bash apps execute in
#: the *current* working directory), so runs serialise process-wide: two
#: concurrent run_config calls must never interleave their cwd swaps.
_EXECUTE_LOCK = threading.Lock()


def _execute(process: Any, job_order: Optional[Dict[str, Any]],
             config: MatrixConfig, run_dir: str, cache_dir: Optional[str],
             max_workers: int) -> MatrixRun:
    from repro.api.session import run as api_run

    os.makedirs(run_dir, exist_ok=True)
    # Engines that execute in the current working directory (the Parsl bash
    # apps) must land in this run's private dir; restored afterwards.  The
    # lock makes the cwd swap safe under concurrent callers (they serialise).
    with _EXECUTE_LOCK:
        previous_cwd = os.getcwd()
        os.chdir(run_dir)
        try:
            result = api_run(
                _fresh(process), _fresh(job_order or {}),
                **_engine_options(config, run_dir, cache_dir, max_workers),
            )
        except Exception as exc:  # normalised, never propagated
            root = unwrap_failure(exc)
            return MatrixRun(config=config, exit_class=exit_class(exc),
                             error_class=error_class(exc), error=str(root))
        finally:
            os.chdir(previous_cwd)
    return MatrixRun(config=config, outputs=canonical_outputs(result.outputs),
                     result=result)


def _fresh(value: Any) -> Any:
    """Deep-copy dict-shaped documents/orders so runs cannot share mutations."""
    return copy.deepcopy(value) if isinstance(value, (dict, list)) else value


def _engine_options(config: MatrixConfig, run_dir: str,
                    cache_dir: Optional[str], max_workers: int) -> Dict[str, Any]:
    options: Dict[str, Any] = {"engine": config.engine}
    retry_policy = fault_plan = None
    if config.faults:
        from repro.cwl.faults import get_fault_profile

        profile = get_fault_profile(config.faults)
        # A fresh plan per execution: plans record what they injected, and
        # the prime/report runs of the warm protocol must not share that.
        fault_plan = profile.make_plan()
        retry_policy = profile.policy
    if config.engine in ("reference", "toil"):
        options["runtime_context"] = RuntimeContext(
            basedir=run_dir,
            compile_expressions=config.compiled,
            cache_dir=cache_dir,
            job_cache=False if cache_dir is None else None,
            retry_policy=retry_policy,
            fault_plan=fault_plan,
        )
        options["max_workers"] = max_workers
        if config.pipeline:
            options["pipeline"] = True
        if config.engine == "toil":
            options["job_store_dir"] = os.path.join(run_dir, "jobstore")
            options["destroy_job_store_on_close"] = True
    elif config.engine in ("parsl", "parsl-workflow"):
        import repro

        options["config"] = repro.thread_config(
            max_threads=max_workers, run_dir=os.path.join(run_dir, "runinfo"))
        options["compile_expressions"] = config.compiled
        options["cache_dir"] = cache_dir
        options["job_cache"] = False if cache_dir is None else None
        options["retry_policy"] = retry_policy
        options["fault_plan"] = fault_plan
        if config.pipeline:
            # Parsl engines have no pipelined scheduler core; the axis maps
            # to the bridge's bounded in-flight submission window instead.
            options["max_inflight"] = max_workers
    else:
        # Custom registered engines: run with their defaults; the cache and
        # compiled axes only apply to engines that understand the options.
        pass
    return options
