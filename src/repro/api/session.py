"""The :class:`Session` facade: one handle onto any registered engine.

A session binds an engine (by registry name or instance) with optional
:class:`~repro.api.events.ExecutionHooks` and offers:

* ``run(process, job_order) -> ExecutionResult`` — blocking execution,
* ``submit(process, job_order) -> ExecutionHandle`` — asynchronous execution
  on a background thread, with a Future-like handle.

Sessions are context managers; closing one shuts down the submit pool and
releases engine resources (Toil's job store / batch system, the Parsl
DataFlowKernel if the engine loaded it).
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Any, Dict, Optional, Union

from repro.api.engine import Engine, get_engine
from repro.api.events import ExecutionHooks
from repro.api.result import ExecutionResult


class ExecutionHandle:
    """Future-like handle for an asynchronous :meth:`Session.submit`."""

    def __init__(self, future: "concurrent.futures.Future[ExecutionResult]",
                 engine: str) -> None:
        self._future = future
        self.engine = engine

    def result(self, timeout: Optional[float] = None) -> ExecutionResult:
        """Block until the execution finishes; re-raises its failure."""
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        return self._future.exception(timeout)

    def done(self) -> bool:
        return self._future.done()

    def running(self) -> bool:
        return self._future.running()

    def cancel(self) -> bool:
        return self._future.cancel()

    def add_done_callback(self, fn: Any) -> None:
        self._future.add_done_callback(lambda _f: fn(self))

    def __repr__(self) -> str:
        state = "done" if self.done() else ("running" if self.running() else "pending")
        return f"<ExecutionHandle engine={self.engine!r} {state}>"


class Session:
    """Run CWL processes through one engine with one calling convention.

    Engine options pass through by keyword — most notably
    ``Session(engine, cache_dir=...)`` attaches the content-addressed job
    cache (:mod:`repro.cwl.jobcache`) on *any* engine: repeated runs of
    identical tool invocations restore their outputs from the store (zero-copy
    hardlink staging) instead of re-executing, per-job events carry
    ``cache="hit"|"miss"`` and each result reports ``cache_stats``.

    ``Session(engine, pipeline=True, max_inflight=...)`` selects the asyncio
    pipelined scheduler core on the runner engines (``reference``, ``toil``):
    staging, subprocess execution and output collection of *different* jobs
    overlap, the in-flight window is bounded by ``max_inflight``, and each
    workflow result carries per-stage wall time in
    :attr:`~repro.api.result.ExecutionResult.stage_timings`.  On the Parsl
    engines ``max_inflight`` bounds unfinished submissions during bridge
    submission instead.
    """

    def __init__(self, engine: Union[str, Engine] = "reference",
                 hooks: Optional[ExecutionHooks] = None,
                 **engine_options: Any) -> None:
        if isinstance(engine, Engine):
            if engine_options:
                raise ValueError("engine options are only accepted together with "
                                 "an engine *name* (got an Engine instance)")
            self.engine = engine
        else:
            self.engine = get_engine(engine, **engine_options)
        self.hooks = hooks
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------- execution

    def run(self, process: Any, job_order: Optional[Dict[str, Any]] = None,
            hooks: Optional[ExecutionHooks] = None) -> ExecutionResult:
        """Execute ``process`` and block until its outputs are concrete."""
        if self._closed:
            raise RuntimeError("session is closed")
        return self.engine.execute(process, job_order or {}, hooks or self.hooks)

    def plan(self, process: Any) -> "ExecutionPlan":
        """Compile ``process`` into its dataflow plan without executing it.

        Returns the :class:`~repro.api.plan.ExecutionPlan` built from the same
        :class:`~repro.cwl.graph.WorkflowGraph` IR every engine executes from
        (nodes, dependency edges, critical path, scatter nodes).
        """
        from repro.api.plan import plan as build_plan

        if self._closed:
            raise RuntimeError("session is closed")
        return build_plan(process)

    def submit(self, process: Any, job_order: Optional[Dict[str, Any]] = None,
               hooks: Optional[ExecutionHooks] = None) -> ExecutionHandle:
        """Start ``process`` on a background thread; returns a handle."""
        if self._closed:
            raise RuntimeError("session is closed")
        with self._lock:
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=4, thread_name_prefix="repro-api")
            future = self._pool.submit(
                self.engine.execute, process, job_order or {}, hooks or self.hooks)
        return ExecutionHandle(future, self.engine.name)

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Wait for submitted work, then release engine resources."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.engine.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<Session engine={self.engine.name!r}{' closed' if self._closed else ''}>"


def run(process: Any, job_order: Optional[Dict[str, Any]] = None, *,
        engine: Union[str, Engine] = "reference",
        hooks: Optional[ExecutionHooks] = None,
        **engine_options: Any) -> ExecutionResult:
    """One-shot execution: ``repro.api.run(doc, order, engine="toil")``.

    Opens a short-lived :class:`Session`, runs the process and closes the
    session again (releasing any backend the engine had to start).
    """
    with Session(engine=engine, hooks=hooks, **engine_options) as session:
        return session.run(process, job_order)


def submit(process: Any, job_order: Optional[Dict[str, Any]] = None, *,
           engine: Union[str, Engine] = "reference",
           hooks: Optional[ExecutionHooks] = None,
           **engine_options: Any) -> ExecutionHandle:
    """One-shot asynchronous execution; the session closes itself when done.

    The worker thread closes the session *before* resolving the handle, so by
    the time ``handle.result()`` returns, engine cleanup (job store, batch
    system, DataFlowKernel) has already happened.  The thread is non-daemonic:
    cleanup also runs if the interpreter exits while work is in flight.
    """
    session = Session(engine=engine, hooks=hooks, **engine_options)
    future: "concurrent.futures.Future[ExecutionResult]" = concurrent.futures.Future()

    def work() -> None:
        try:
            result = session.engine.execute(process, job_order or {},
                                            hooks or session.hooks)
        except BaseException as exc:  # resolved below, after cleanup
            outcome: Any = exc
            failed = True
        else:
            outcome = result
            failed = False
        try:
            session.close()
        except Exception:
            pass
        if failed:
            future.set_exception(outcome)
        else:
            future.set_result(outcome)

    threading.Thread(target=work, name="repro-api-submit").start()
    return ExecutionHandle(future, session.engine.name)
