"""The unified return shape of every engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.events import JobEvent


@dataclass
class ExecutionResult:
    """Outputs plus bookkeeping from one execution, whatever the engine.

    Subsumes the three return shapes of the underlying execution paths: the
    runners' :class:`~repro.cwl.runners.base.RunnerResult`, the plain output
    dict of ``run_tool_with_parsl`` and the futures dict of
    ``CWLWorkflowBridge.submit``.
    """

    #: The CWL output object (output id -> value), fully resolved.  Under
    #: ``on_error="continue"`` outputs poisoned by a failed step are ``None``.
    outputs: Dict[str, Any]
    #: ``"success"``, or ``"permanentFail"`` when ``on_error="continue"``
    #: completed a run with failed steps (on_error="stop" raises instead).
    status: str = "success"
    #: Registry name of the engine that produced this result.
    engine: str = ""
    #: Number of individual tool/expression jobs executed.
    jobs_run: int = 0
    #: Wall-clock seconds for the whole execution.
    wall_time_s: float = 0.0
    #: Per-job start/end events in observation order.
    events: List[JobEvent] = field(default_factory=list)
    #: Engine-specific extras (job store statistics, run directories, ...).
    details: Dict[str, Any] = field(default_factory=dict)
    #: The workflow dataflow plan (``WorkflowGraph.describe()`` — nodes, edges,
    #: critical path) when a Workflow was executed; ``None`` for single tools.
    plan: Optional[Dict[str, Any]] = None
    #: Job-cache accounting for this execution — ``{"hits": ..., "misses": ...}``
    #: (runner engines count exactly from per-job events; the Parsl engines
    #: report the store's counter delta) — or ``None`` when caching was off.
    cache_stats: Optional[Dict[str, int]] = None
    #: Failed node/step id -> error string (non-empty only under
    #: ``on_error="continue"``; with ``"stop"`` the first failure raises).
    failures: Dict[str, str] = field(default_factory=dict)
    #: Scheduler node states of the last workflow run
    #: (``pending``/``running``/``done``/``failed``/``skipped``); empty for
    #: single tools and engines that do not track them.
    node_states: Dict[str, str] = field(default_factory=dict)
    #: Per-stage wall time from the pipelined scheduler core
    #: (``stage_s``/``exec_s``/``collect_s`` cumulative seconds plus
    #: ``nodes``/``tiny_nodes``/``tiny_batches`` counts); ``None`` unless the
    #: run executed with ``pipeline=True``.
    stage_timings: Optional[Dict[str, Any]] = None

    def __getitem__(self, key: str) -> Any:
        """Convenience indexing straight into :attr:`outputs`."""
        return self.outputs[key]

    def cache_hits(self) -> int:
        """Number of jobs restored from the job cache (0 when caching is off)."""
        return int((self.cache_stats or {}).get("hits", 0))

    def job_names(self) -> List[str]:
        """Names of the jobs that ran, in start order."""
        return [e.job for e in self.events if e.kind == "start"]

    def retries(self) -> int:
        """Total retry events across all jobs (0 without a retry policy)."""
        return sum(1 for e in self.events if e.kind == "retry")

    def summary(self) -> str:
        """One human-readable line (used by CLIs in verbose mode)."""
        return (f"engine={self.engine or '?'} status={self.status} "
                f"jobs={self.jobs_run} wall_time={self.wall_time_s:.3f}s")
