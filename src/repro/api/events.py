"""Per-job event stream shared by every engine.

Engines report the start and end of each individual job (one CommandLineTool
or ExpressionTool invocation) to an :class:`EventRecorder`, which timestamps
the transitions, accumulates :class:`JobEvent` records for the
:class:`~repro.api.result.ExecutionResult`, and forwards them to the user's
:class:`ExecutionHooks` callbacks.  Recording is thread-safe: parallel
runners and the Parsl dataflow deliver events from worker threads.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional

HookCallback = Callable[["JobEvent"], Any]


@dataclass
class JobEvent:
    """One job lifecycle transition observed during an execution."""

    job: str
    kind: str  # "start", "retry" or "end"
    timestamp: float
    ok: bool = True
    error: Optional[str] = None
    #: Wall-clock seconds between start and end (set on "end" events).
    duration_s: Optional[float] = None
    #: Job-cache outcome on "end" events: ``"hit"`` (outputs restored from
    #: the content-addressed store), ``"miss"`` (executed and stored), or
    #: ``None`` when caching was off or the job kind is uncacheable.
    cache: Optional[str] = None
    #: 1-based execution attempt under the run's
    #: :class:`~repro.cwl.retry.RetryPolicy`.  On ``"retry"`` events: the
    #: attempt that just failed; on ``"end"`` events: the attempt that
    #: produced the outcome (1 when no retry happened).
    attempt: int = 1


@dataclass
class ExecutionHooks:
    """User-facing callbacks invoked as jobs start, retry and finish."""

    on_job_start: Optional[HookCallback] = None
    on_job_end: Optional[HookCallback] = None
    #: Fired once per retry, before the backoff sleep; the event carries the
    #: failed attempt number and the error that triggered the retry.
    on_job_retry: Optional[HookCallback] = None


@dataclass
class _ActiveJob:
    """Token returned by :meth:`EventRecorder.job_started`."""

    job: str
    started_at: float


class EventRecorder:
    """Collects job events for one execution and fans them out to hooks.

    Implements the observer protocol duck-typed by
    :class:`~repro.cwl.runners.base.BaseRunner` and
    :class:`~repro.core.workflow_bridge.CWLWorkflowBridge`:
    ``job_started(name) -> token`` and ``job_finished(token, ok, error)``.
    """

    def __init__(self, hooks: Optional[ExecutionHooks] = None) -> None:
        self.hooks = hooks
        #: Raw records: either a materialised :class:`JobEvent` (hook path) or
        #: a compact ``(kind, job, timestamp, ok, error, duration_s, cache,
        #: attempt)`` tuple.  Tuples become events lazily via :attr:`events`,
        #: so hook-less runs never pay dataclass construction on the hot path.
        self._records: List[Any] = []
        self._lock = threading.Lock()

    @property
    def events(self) -> List[JobEvent]:
        """Materialised event list (lazy: tuples become ``JobEvent`` here)."""
        with self._lock:
            records = list(self._records)
        return [
            r if type(r) is JobEvent else
            JobEvent(job=r[1], kind=r[0], timestamp=r[2], ok=r[3], error=r[4],
                     duration_s=r[5], cache=r[6], attempt=r[7])
            for r in records
        ]

    def job_started(self, job: str) -> _ActiveJob:
        now = time.time()
        hook = self.hooks.on_job_start if self.hooks else None
        if hook is None:
            record: Any = ("start", job, now, True, None, None, None, 1)
        else:
            record = JobEvent(job=job, kind="start", timestamp=now)
        with self._lock:
            self._records.append(record)
        if hook is not None:
            hook(record)
        return _ActiveJob(job=job, started_at=time.perf_counter())

    def job_retry(self, token: _ActiveJob, attempt: int,
                  error: Optional[str] = None,
                  delay_s: Optional[float] = None) -> None:
        """Record that attempt ``attempt`` of a job failed and will be retried."""
        hook = self.hooks.on_job_retry if self.hooks else None
        if hook is None:
            record: Any = ("retry", token.job, time.time(), False, error,
                           delay_s, None, attempt)
        else:
            record = JobEvent(
                job=token.job,
                kind="retry",
                timestamp=time.time(),
                ok=False,
                error=error,
                duration_s=delay_s,
                attempt=attempt,
            )
        with self._lock:
            self._records.append(record)
        if hook is not None:
            hook(record)

    def job_finished(self, token: _ActiveJob, ok: bool = True,
                     error: Optional[str] = None,
                     cache: Optional[str] = None,
                     attempt: int = 1) -> None:
        duration = time.perf_counter() - token.started_at
        hook = self.hooks.on_job_end if self.hooks else None
        if hook is None:
            record: Any = ("end", token.job, time.time(), ok, error,
                           duration, cache, attempt)
        else:
            record = JobEvent(
                job=token.job,
                kind="end",
                timestamp=time.time(),
                ok=ok,
                error=error,
                duration_s=duration,
                cache=cache,
                attempt=attempt,
            )
        with self._lock:
            self._records.append(record)
        if hook is not None:
            hook(record)

    @contextlib.contextmanager
    def observing(self, job: str) -> Iterator[None]:
        """Record one job around a ``with`` block (end event on success/failure)."""
        token = self.job_started(job)
        try:
            yield
        except Exception as exc:
            self.job_finished(token, ok=False, error=str(exc))
            raise
        self.job_finished(token)
