"""Built-in engines: the four execution paths behind one interface.

========================  =====================================================
registry name             wraps
========================  =====================================================
``reference``             :class:`~repro.cwl.runners.reference.ReferenceRunner`
                          (aliases ``cwltool``, ``cwltool-like``)
``toil``                  :class:`~repro.cwl.runners.toil.runner.ToilStyleRunner`
                          (alias ``toil-like``)
``parsl``                 ``run_tool_with_parsl`` for CommandLineTools and the
                          workflow bridge for Workflows (alias ``parsl-cwl``)
``parsl-workflow``        :class:`~repro.core.workflow_bridge.CWLWorkflowBridge`
                          only — strict bridge semantics (alias ``bridge``)
========================  =====================================================

Engines hold backend state across runs (the Toil engine keeps its job store
and batch system, the Parsl engines keep the DataFlowKernel they loaded), so
one :class:`~repro.api.session.Session` amortises setup over many executions.

Expression handling differs by engine: ``reference`` keeps cwltool's
per-evaluation cost model (fresh JS engine, re-parsed expressionLib — the
Figure 2 baseline), while ``toil``, ``parsl`` and ``parsl-workflow`` default
to the compiled pipeline of :mod:`repro.cwl.expressions.compiler`; pass a
``RuntimeContext(compile_expressions=...)`` to override either way where a
runtime context is accepted.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Optional

from repro.api.engine import Engine, EngineError, register_engine
from repro.api.events import EventRecorder, ExecutionHooks
from repro.api.plan import describe_workflow
from repro.api.result import ExecutionResult
from repro.cwl.jobcache import JobCache, resolve_job_cache
from repro.cwl.runners.base import BaseRunner
from repro.cwl.runners.reference import ReferenceRunner
from repro.cwl.runners.toil.runner import ToilStyleRunner
from repro.cwl.runtime import RuntimeContext
from repro.cwl.schema import CommandLineTool, Process, Workflow


def _context_with_options(runtime_context: Optional[RuntimeContext],
                          cache_dir: Optional[str],
                          job_cache: Optional[bool],
                          **extras: Any) -> Optional[RuntimeContext]:
    """Fold engine-level options into a :class:`RuntimeContext`.

    Lets every engine (and therefore ``Session(engine, cache_dir=...)`` /
    ``api.run(..., retry_policy=...)``) expose the job cache and the
    fault-tolerance layer (``retry_policy``, ``timeout_s``, ``on_error``,
    ``fault_plan``, ``journal``) without callers having to build a
    :class:`RuntimeContext` themselves.  ``None``-valued extras mean "keep the
    context's setting".
    """
    overrides: Dict[str, Any] = {k: v for k, v in extras.items() if v is not None}
    if cache_dir is not None:
        overrides["cache_dir"] = os.fspath(cache_dir)
    if job_cache is not None:
        overrides["job_cache"] = job_cache
    if not overrides:
        return runtime_context
    context = runtime_context if runtime_context is not None else RuntimeContext()
    return context.child(**overrides)


def _event_cache_stats(recorder: EventRecorder) -> Dict[str, int]:
    """Exact hit/miss counts from the per-job end events of one execution."""
    hits = sum(1 for e in recorder.events if e.kind == "end" and e.cache == "hit")
    misses = sum(1 for e in recorder.events if e.kind == "end" and e.cache == "miss")
    return {"hits": hits, "misses": misses}


class RunnerEngine(Engine):
    """Shared adapter for the :class:`BaseRunner` subclasses.

    The underlying runner holds mutable per-run state (``jobs_run``, the
    attached observer), so executions are serialised on a lock: concurrent
    :meth:`Session.submit` calls queue here while each *run* still
    parallelises internally as the runner is configured to.
    """

    def __init__(self) -> None:
        self._runner: Optional[BaseRunner] = None
        self._execute_lock = threading.Lock()

    def _make_runner(self) -> BaseRunner:
        raise NotImplementedError

    def _get_runner(self) -> BaseRunner:
        if self._runner is None:
            self._runner = self._make_runner()
        return self._runner

    def close(self) -> None:
        """Release runner state; reaps scratch directories the context tracked.

        :meth:`RuntimeContext.close` is idempotent and safe under concurrent
        close, so racing ``Session.close`` / ``__exit__`` paths are fine.
        """
        runner, self._runner = self._runner, None
        if runner is not None:
            runner.runtime_context.close()

    def execute(self, process, job_order: Dict[str, Any],
                hooks: Optional[ExecutionHooks] = None) -> ExecutionResult:
        process = self.load_process(process)
        recorder = self.recorder_for(hooks)
        with self._execute_lock:
            runner = self._get_runner()
            runner.hooks = recorder
            try:
                runner_result = runner.run(process, dict(job_order or {}))
            finally:
                runner.hooks = None
            cache_enabled = runner.runtime_context.job_cache_dir() is not None
        details = dict(runner_result.details)
        return ExecutionResult(
            outputs=runner_result.outputs,
            status=runner_result.status,
            engine=self.name,
            jobs_run=runner_result.jobs_run,
            wall_time_s=runner_result.wall_time_s,
            events=recorder.events,
            details=details,
            plan=_plan_for(process),
            cache_stats=_event_cache_stats(recorder) if cache_enabled else None,
            failures=dict(details.get("failures", {})),
            node_states=dict(details.get("node_states", {})),
            stage_timings=getattr(runner, "stage_timings", None),
        )


class ReferenceEngine(RunnerEngine):
    """The cwltool-like reference runner behind the unified API."""

    name = "reference"

    def __init__(self, runtime_context: Optional[RuntimeContext] = None,
                 parallel: bool = False, max_workers: int = 8,
                 validate: bool = True, cache_dir: Optional[str] = None,
                 job_cache: Optional[bool] = None,
                 retry_policy: Any = None, timeout_s: Optional[float] = None,
                 on_error: Optional[str] = None, fault_plan: Any = None,
                 journal: Any = None, pipeline: bool = False,
                 max_inflight: Optional[int] = None) -> None:
        super().__init__()
        runtime_context = _context_with_options(
            runtime_context, cache_dir, job_cache, retry_policy=retry_policy,
            timeout_s=timeout_s, on_error=on_error, fault_plan=fault_plan,
            journal=journal)
        self._options = dict(runtime_context=runtime_context, parallel=parallel,
                             max_workers=max_workers, validate=validate,
                             pipeline=pipeline, max_inflight=max_inflight)

    def _make_runner(self) -> BaseRunner:
        return ReferenceRunner(**self._options)


class ToilEngine(RunnerEngine):
    """The Toil-like job-store runner behind the unified API."""

    name = "toil"

    def __init__(self, job_store_dir: Optional[str] = None,
                 batch_system: Any = None,
                 runtime_context: Optional[RuntimeContext] = None,
                 parallel: bool = True, max_workers: int = 8,
                 import_outputs: bool = True, validate: bool = True,
                 destroy_job_store_on_close: Optional[bool] = None,
                 cache_dir: Optional[str] = None,
                 job_cache: Optional[bool] = None,
                 retry_policy: Any = None, timeout_s: Optional[float] = None,
                 on_error: Optional[str] = None, fault_plan: Any = None,
                 journal: Any = None, pipeline: bool = False,
                 max_inflight: Optional[int] = None) -> None:
        super().__init__()
        runtime_context = _context_with_options(
            runtime_context, cache_dir, job_cache, retry_policy=retry_policy,
            timeout_s=timeout_s, on_error=on_error, fault_plan=fault_plan,
            journal=journal)
        self._options = dict(job_store_dir=job_store_dir, batch_system=batch_system,
                             runtime_context=runtime_context, parallel=parallel,
                             max_workers=max_workers, import_outputs=import_outputs,
                             validate=validate, pipeline=pipeline,
                             max_inflight=max_inflight)
        self._destroy_job_store = destroy_job_store_on_close

    def _make_runner(self) -> BaseRunner:
        return ToilStyleRunner(**self._options)

    def execute(self, process, job_order: Dict[str, Any],
                hooks: Optional[ExecutionHooks] = None) -> ExecutionResult:
        result = super().execute(process, job_order, hooks)
        result.details.setdefault("job_store", self._runner.job_store.stats())  # type: ignore[union-attr]
        return result

    def close(self) -> None:
        """Deterministically release backend state on ``Session`` exit.

        The batch system always shuts down; the job store is destroyed when
        the runner created it itself (a temp directory) or when the caller
        asked via ``destroy_job_store_on_close=True`` — so context-managed
        sessions never leak stores or batch-system threads between runs.
        """
        runner, self._runner = self._runner, None
        if runner is not None:
            runner.close(destroy_job_store=self._destroy_job_store)  # type: ignore[attr-defined]
            runner.runtime_context.close()


class ParslEngine(Engine):
    """Execute through the paper's Parsl bridge.

    CommandLineTools go through ``run_tool_with_parsl`` (§III-B); Workflows go
    through the :class:`CWLWorkflowBridge` (the paper's future-work extension).
    The engine loads a DataFlowKernel from ``config`` on first use — or reuses
    an already-loaded one — and clears it on :meth:`close` only if it loaded
    the kernel itself, so it embeds cleanly in larger Parsl programs.
    """

    name = "parsl"

    def __init__(self, config: Any = None, outdir: Optional[str] = None,
                 cache_dir: Optional[str] = None,
                 job_cache: Optional[bool] = None,
                 compile_expressions: Optional[bool] = None,
                 retry_policy: Any = None, timeout_s: Optional[float] = None,
                 on_error: Optional[str] = None, fault_plan: Any = None,
                 journal: Any = None,
                 max_inflight: Optional[int] = None) -> None:
        self._config = config
        self._outdir = outdir
        #: Bound on unfinished submitted jobs during bridge submission —
        #: mirrors the pipelined core's in-flight window on the runner
        #: engines (None = submit the whole graph eagerly, Parsl's default).
        self._max_inflight = max_inflight
        #: Fault-tolerance options, mirroring the runner engines' context
        #: fields: retries wrap whole tool invocations (cache probe included,
        #: so injected faults behave identically warm or cold), timeouts are
        #: enforced in-shell on the execution side, and ``on_error`` governs
        #: whether a failed workflow step aborts the bridge run.
        self._retry_policy = retry_policy
        self._timeout_s = timeout_s
        self._on_error = on_error or "stop"
        self._fault_plan = fault_plan
        self._journal = journal
        #: Tri-state expression-pipeline switch (``None`` = the Parsl
        #: engines' compiled default, ``False`` = uncached evaluators like
        #: the reference runner) — mirrors
        #: ``RuntimeContext.compile_expressions`` on the runner engines.
        self._compile_expressions = compile_expressions
        #: The shared job cache, resolved with the same tri-state rules the
        #: runner engines apply through RuntimeContext (``cache_dir=`` names
        #: the store, ``job_cache=True`` opts into the default store,
        #: ``REPRO_JOBCACHE_DIR`` opts in from the environment,
        #: ``job_cache=False`` forces caching off).
        store_dir = RuntimeContext(job_cache=job_cache,
                                   cache_dir=cache_dir).job_cache_dir()
        self._job_cache: Optional[JobCache] = resolve_job_cache(store_dir)
        self._started = False
        self._loaded_here = False
        self._kernel_lock = threading.Lock()

    # -------------------------------------------------------------- lifecycle

    def _ensure_kernel(self) -> None:
        with self._kernel_lock:
            self._ensure_kernel_locked()

    def _ensure_kernel_locked(self) -> None:
        from repro.core.yaml_config import load_yaml_config
        from repro.parsl.config import Config
        from repro.parsl.dataflow.dflow import DataFlowKernelLoader
        from repro.parsl.errors import NoDataFlowKernelError

        if self._started:
            return
        if self._config is not None:
            config = self._config
            if not isinstance(config, Config):
                config = load_yaml_config(config)
            DataFlowKernelLoader.load(config)
            self._loaded_here = True
        else:
            try:
                DataFlowKernelLoader.dfk()
            except NoDataFlowKernelError:
                DataFlowKernelLoader.load(Config.default())
                self._loaded_here = True
        self._started = True

    def close(self) -> None:
        from repro.parsl.dataflow.dflow import DataFlowKernelLoader

        if self._started and self._loaded_here:
            DataFlowKernelLoader.clear()
        self._started = False
        self._loaded_here = False

    # -------------------------------------------------------------- execution

    def execute(self, process, job_order: Dict[str, Any],
                hooks: Optional[ExecutionHooks] = None) -> ExecutionResult:
        process = self.load_process(process)
        recorder = self.recorder_for(hooks)
        self._ensure_kernel()
        start = time.perf_counter()
        failures: Dict[str, str] = {}
        if isinstance(process, Workflow):
            outputs, failures = self._run_workflow(process, dict(job_order or {}),
                                                   recorder)
        elif isinstance(process, CommandLineTool):
            outputs = self._run_tool(process, dict(job_order or {}), recorder)
        else:
            raise EngineError(
                f"the {self.name!r} engine cannot run a {type(process).__name__} "
                "(CommandLineTool or Workflow expected)"
            )
        jobs_run = sum(1 for e in recorder.events if e.kind == "start")
        # Counted from this execution's own per-job events (the store and its
        # counters are shared process-wide, so a counter delta would absorb
        # concurrent executions' traffic).
        cache_stats = _event_cache_stats(recorder) if self._job_cache is not None \
            else None
        details: Dict[str, Any] = {}
        if failures:
            details["failures"] = dict(failures)
        return ExecutionResult(
            outputs=outputs,
            status="permanentFail" if failures else "success",
            engine=self.name,
            jobs_run=jobs_run,
            wall_time_s=time.perf_counter() - start,
            events=recorder.events,
            details=details,
            plan=_plan_for(process),
            cache_stats=cache_stats,
            failures=failures,
        )

    def _run_tool(self, tool: CommandLineTool, job_order: Dict[str, Any],
                  recorder: EventRecorder) -> Dict[str, Any]:
        from repro.core.runner import run_tool_with_parsl
        from repro.cwl.retry import RetryObservation, execute_with_retries

        job_name = tool.id or "tool"
        cache_note: Dict[str, str] = {}
        token = recorder.job_started(job_name)

        def attempt(_n: int) -> Dict[str, Any]:
            cache_note.clear()
            # The retry loop wraps the whole call — submission-side cache
            # probe included — so injected faults fire ahead of the probe,
            # exactly as on the runner engines.
            return run_tool_with_parsl(
                tool=tool, job_order=job_order, config=None,
                outdir=self._outdir, cleanup=False,
                job_cache=self._job_cache, cache_note=cache_note,
                compile_expressions=self._compile_expressions,
                timeout_s=self._timeout_s,
            )

        def on_retry(attempt_no: int, exc: BaseException, delay: float) -> None:
            recorder.job_retry(token, attempt_no, error=str(exc), delay_s=delay)
            if self._journal is not None:
                self._journal.record("retry", job=job_name, attempt=attempt_no,
                                     error=str(exc), delay_s=delay)

        observation = RetryObservation()
        try:
            outputs = execute_with_retries(
                attempt, policy=self._retry_policy, job=job_name,
                fault_plan=self._fault_plan, observation=observation,
                on_retry=on_retry)
        except Exception as exc:
            recorder.job_finished(token, ok=False, error=str(exc),
                                  attempt=observation.attempt)
            raise
        recorder.job_finished(token, cache=cache_note.get("cache"),
                              attempt=observation.attempt)
        return outputs

    def _run_workflow(self, workflow: Workflow, job_order: Dict[str, Any],
                      recorder: EventRecorder) -> tuple:
        from repro.core.workflow_bridge import CWLWorkflowBridge

        bridge = CWLWorkflowBridge(workflow, job_observer=recorder,
                                   job_cache=self._job_cache,
                                   compile_expressions=self._compile_expressions,
                                   retry_policy=self._retry_policy,
                                   fault_plan=self._fault_plan,
                                   timeout_s=self._timeout_s,
                                   on_error=self._on_error,
                                   journal=self._journal,
                                   max_inflight=self._max_inflight)
        outputs = bridge.run(job_order)
        failures = {name: str(exc) for name, exc in bridge.failures.items()}
        return ({key: _normalise_output(value) for key, value in outputs.items()},
                failures)


class ParslWorkflowEngine(ParslEngine):
    """The CWL Workflow -> Parsl bridge, with strict Workflow-only semantics."""

    name = "parsl-workflow"

    def execute(self, process, job_order: Dict[str, Any],
                hooks: Optional[ExecutionHooks] = None) -> ExecutionResult:
        loaded = self.load_process(process)
        if not isinstance(loaded, Workflow):
            raise EngineError(
                f"the {self.name!r} engine runs complete CWL Workflows; got "
                f"{type(loaded).__name__} (use engine='parsl' for single tools)"
            )
        return super().execute(loaded, job_order, hooks)


def _plan_for(process: Process) -> Optional[Dict[str, Any]]:
    """The graph summary attached to workflow results (best-effort)."""
    if not isinstance(process, Workflow):
        return None
    try:
        return describe_workflow(process)
    except Exception:  # introspection must never fail an execution
        return None


def _normalise_output(value: Any) -> Any:
    """Convert Parsl-side File objects into CWL File value dictionaries.

    The workflow bridge resolves its futures to Parsl ``File`` objects; the
    unified result promises the same CWL output-object shape as the runners.
    """
    from repro.cwl.types import build_file_value
    from repro.parsl.data_provider.files import File as ParslFile

    if isinstance(value, ParslFile):
        return build_file_value(value.filepath)
    if isinstance(value, list):
        return [_normalise_output(item) for item in value]
    return value


register_engine("reference", ReferenceEngine, aliases=("cwltool", "cwltool-like"))
register_engine("toil", ToilEngine, aliases=("toil-like",))
register_engine("parsl", ParslEngine, aliases=("parsl-cwl",))
register_engine("parsl-workflow", ParslWorkflowEngine, aliases=("bridge",))
