"""Subprocess environment handling.

CWL tools shipped with the repository invoke the imaging CLI as
``python3 -m repro.imaging.cli ...``.  Jobs execute in per-job working
directories, so a *relative* ``PYTHONPATH`` entry (e.g. the ``PYTHONPATH=src``
of the test command) would no longer resolve from there.  Every runner
therefore builds its subprocess environment through
:func:`subprocess_environment`, which pins the directory that the running
``repro`` package was imported from onto ``PYTHONPATH`` as an absolute path.
"""

from __future__ import annotations

import os
from typing import Dict, Optional


def package_root() -> str:
    """Absolute path of the directory containing the importable ``repro`` package."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def subprocess_environment(base: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """A copy of ``base`` (default ``os.environ``) whose ``PYTHONPATH`` can
    resolve the ``repro`` package from any working directory."""
    env = dict(os.environ if base is None else base)
    root = package_root()
    entries = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    resolved = [os.path.abspath(p) for p in entries]
    if root not in resolved:
        resolved.insert(0, root)
    env["PYTHONPATH"] = os.pathsep.join(resolved)
    return env
