"""Logging configuration shared by the CLIs and the DataFlowKernel.

Every long-running component (DataFlowKernel, executors, CWL runners, the
simulated cluster) logs through the standard :mod:`logging` module under the
``repro.*`` namespace.  ``configure_logging`` sets up a console handler and an
optional per-run file handler inside the run directory, mirroring how Parsl
writes ``parsl.log`` into its ``runinfo`` directory.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

_FORMAT = "%(asctime)s %(name)s:%(lineno)d [%(levelname)s] %(message)s"


def configure_logging(
    level: int = logging.INFO,
    run_dir: Optional[str] = None,
    filename: str = "repro.log",
    stream: bool = True,
) -> logging.Logger:
    """Configure the ``repro`` root logger.

    Parameters
    ----------
    level:
        Logging level for both handlers.
    run_dir:
        If given, a ``FileHandler`` writing to ``<run_dir>/<filename>`` is added.
    filename:
        Name of the log file inside ``run_dir``.
    stream:
        Whether to also log to stderr.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    formatter = logging.Formatter(_FORMAT)

    if stream and not any(
        isinstance(h, logging.StreamHandler) and not isinstance(h, logging.FileHandler)
        for h in logger.handlers
    ):
        handler = logging.StreamHandler()
        handler.setFormatter(formatter)
        handler.setLevel(level)
        logger.addHandler(handler)

    if run_dir is not None:
        os.makedirs(run_dir, exist_ok=True)
        logpath = os.path.join(run_dir, filename)
        if not any(
            isinstance(h, logging.FileHandler) and getattr(h, "baseFilename", None) == os.path.abspath(logpath)
            for h in logger.handlers
        ):
            fhandler = logging.FileHandler(logpath)
            fhandler.setFormatter(formatter)
            fhandler.setLevel(level)
            logger.addHandler(fhandler)

    return logger


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the ``repro`` namespace."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
