"""Shared low-level helpers used across the repro substrates."""

from repro.utils.ids import RunIdGenerator, make_id
from repro.utils.timers import Stopwatch, wall_time
from repro.utils.yamlio import dump_yaml, load_yaml, load_yaml_file
from repro.utils.hashing import hash_bytes, hash_file, hash_obj

__all__ = [
    "RunIdGenerator",
    "Stopwatch",
    "dump_yaml",
    "hash_bytes",
    "hash_file",
    "hash_obj",
    "load_yaml",
    "load_yaml_file",
    "make_id",
    "wall_time",
]
