"""YAML input/output helpers.

CWL documents, TaPS-style Parsl configurations and job orders are all YAML.
These helpers centralise safe loading (never ``yaml.load`` with arbitrary
constructors) and deterministic dumping so tests can compare round-tripped
documents byte-for-byte.
"""

from __future__ import annotations

import json
import os
from typing import Any, Union

import yaml

PathLike = Union[str, os.PathLike]


def load_yaml(text: str) -> Any:
    """Parse YAML (or JSON — JSON is a YAML subset) from a string."""
    return yaml.safe_load(text)


def load_yaml_file(path: PathLike) -> Any:
    """Parse a YAML (or JSON) document from ``path``.

    Raises ``FileNotFoundError`` with the offending path for a clearer error
    than PyYAML's default stream error.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise FileNotFoundError(f"No such YAML document: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        return yaml.safe_load(handle)


def dump_yaml(obj: Any, path: PathLike | None = None) -> str:
    """Serialise ``obj`` to YAML with stable key ordering.

    If ``path`` is given the YAML text is also written to that file.
    """
    text = yaml.safe_dump(obj, sort_keys=True, default_flow_style=False)
    if path is not None:
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def dump_json(obj: Any, path: PathLike | None = None, indent: int = 2) -> str:
    """Serialise ``obj`` to JSON (used for CWL output objects, per the spec)."""
    text = json.dumps(obj, indent=indent, sort_keys=True, default=str)
    if path is not None:
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
