"""Wall-clock timing helpers used by runners, monitors and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


def wall_time() -> float:
    """Return a monotonic wall-clock reading in seconds."""
    return time.perf_counter()


@dataclass
class Stopwatch:
    """A small stopwatch with named laps.

    Used by the benchmark harness to separate e.g. document-parse time from
    execution time, and by the monitoring subsystem to timestamp task state
    transitions.

    Example::

        sw = Stopwatch()
        sw.start()
        ... do work ...
        sw.lap("parse")
        ... do more work ...
        sw.lap("execute")
        total = sw.stop()
    """

    _start: Optional[float] = None
    _last: Optional[float] = None
    _end: Optional[float] = None
    laps: Dict[str, float] = field(default_factory=dict)
    lap_order: List[str] = field(default_factory=list)

    def start(self) -> "Stopwatch":
        self._start = wall_time()
        self._last = self._start
        self._end = None
        self.laps.clear()
        self.lap_order.clear()
        return self

    def lap(self, name: str) -> float:
        """Record the elapsed time since the previous lap under ``name``."""
        if self._start is None or self._last is None:
            raise RuntimeError("Stopwatch.lap() called before start()")
        now = wall_time()
        delta = now - self._last
        self._last = now
        self.laps[name] = self.laps.get(name, 0.0) + delta
        if name not in self.lap_order:
            self.lap_order.append(name)
        return delta

    def stop(self) -> float:
        """Stop the stopwatch and return the total elapsed time."""
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self._end = wall_time()
        return self._end - self._start

    @property
    def elapsed(self) -> float:
        """Total elapsed time; uses "now" when the stopwatch is still running."""
        if self._start is None:
            return 0.0
        end = self._end if self._end is not None else wall_time()
        return end - self._start
