"""Content hashing helpers.

Used by:

* the Parsl-like memoizer (hash of app name + arguments),
* CWL ``File`` objects (``checksum`` field, ``sha1$...`` per the CWL spec),
* the Toil-like job store (content-addressed file copies).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Union

PathLike = Union[str, os.PathLike]

_CHUNK = 1 << 20


def hash_bytes(data: bytes, algorithm: str = "sha1") -> str:
    """Return ``<algorithm>$<hexdigest>`` for ``data`` (CWL checksum format)."""
    digest = hashlib.new(algorithm)
    digest.update(data)
    return f"{algorithm}${digest.hexdigest()}"


def hash_file(path: PathLike, algorithm: str = "sha1") -> str:
    """Return the CWL-style checksum of the file at ``path``."""
    digest = hashlib.new(algorithm)
    with open(os.fspath(path), "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return f"{algorithm}${digest.hexdigest()}"


def hash_obj(obj: Any, algorithm: str = "md5") -> str:
    """Return a stable hex digest of an arbitrary picklable Python object.

    The object is first converted to a canonical representation: dictionaries
    are replaced by sorted item tuples recursively so that key insertion order
    does not affect the digest.  Unpicklable leaves fall back to ``repr``.
    """

    def canonical(value: Any) -> Any:
        if isinstance(value, dict):
            return tuple(sorted((k, canonical(v)) for k, v in value.items()))
        if isinstance(value, (list, tuple)):
            return tuple(canonical(v) for v in value)
        if isinstance(value, set):
            return tuple(sorted(canonical(v) for v in value))
        return value

    try:
        payload = pickle.dumps(canonical(obj), protocol=4)
    except Exception:
        payload = repr(obj).encode("utf-8")
    return hashlib.new(algorithm, payload).hexdigest()
