"""A from-scratch implementation of the Parsl parallel programming model.

This subpackage exists because the real ``parsl`` package is not installable in
this offline environment, yet the paper's contribution is precisely the bridge
between Parsl and CWL.  It implements the programming model the paper relies
on — apps, futures, dataflow-driven dependency execution, pluggable executors
and providers — with an API that mirrors Parsl's public surface closely enough
that the paper's listings (e.g. Listing 2 and Listing 4) translate line for
line.

Typical use::

    from repro import parsl

    parsl.load(parsl.configs.thread_config(max_threads=8))

    @parsl.bash_app
    def echo(message: str, stdout=None):
        return f"echo {message}"

    future = echo("hello", stdout="hello.txt")
    future.result()
    parsl.clear()
"""

from __future__ import annotations

from typing import Optional

from repro.parsl.apps.app import bash_app, join_app, python_app
from repro.parsl.config import Config
from repro.parsl.data_provider.files import File
from repro.parsl.dataflow.dflow import DataFlowKernel, DataFlowKernelLoader
from repro.parsl.dataflow.futures import AppFuture, DataFuture
from repro.parsl import configs  # noqa: F401  (re-exported as a namespace)


def load(config: Optional[Config] = None) -> DataFlowKernel:
    """Load a DataFlowKernel from ``config`` (or the default thread pool)."""
    return DataFlowKernelLoader.load(config)


def clear() -> None:
    """Shut down the currently loaded DataFlowKernel, if any."""
    DataFlowKernelLoader.clear()


def dfk() -> DataFlowKernel:
    """Return the currently loaded DataFlowKernel."""
    return DataFlowKernelLoader.dfk()


def wait_for_current_tasks() -> None:
    """Block until all tasks submitted so far have finished."""
    DataFlowKernelLoader.wait_for_current_tasks()


__all__ = [
    "AppFuture",
    "Config",
    "DataFlowKernel",
    "DataFlowKernelLoader",
    "DataFuture",
    "File",
    "bash_app",
    "clear",
    "configs",
    "dfk",
    "join_app",
    "load",
    "python_app",
    "wait_for_current_tasks",
]
