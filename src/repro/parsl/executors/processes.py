"""Process-pool executor.

Backed by :class:`concurrent.futures.ProcessPoolExecutor`.  Task payloads are
serialized with cloudpickle (via :mod:`repro.parsl.serialization`) so that
closures and interactively defined functions — which the standard library's
pickler rejects — still work, mirroring Parsl's behaviour of shipping payloads
with a richer serializer.
"""

from __future__ import annotations

import concurrent.futures as cf
import threading
from typing import Any, Callable, Dict

from repro.parsl.executors.base import ParslExecutor
from repro.parsl.serialization import deserialize, pack_apply_message, serialize, unpack_apply_message


def _run_packed_task(blob: bytes) -> bytes:
    """Worker-side trampoline: unpack, run, and re-pack the outcome.

    The outcome is ``(True, result)`` or ``(False, exception)`` serialized to
    bytes, so that exceptions defined in __main__ or test modules survive the
    trip back to the submitting process.
    """
    func, args, kwargs = unpack_apply_message(blob)
    try:
        return serialize((True, func(*args, **kwargs)))
    except BaseException as exc:  # noqa: BLE001 - deliberately capture everything
        return serialize((False, exc))


class ProcessPoolExecutor(ParslExecutor):
    """Run tasks on a pool of local processes (one Python interpreter each)."""

    def __init__(self, label: str = "processes", max_workers: int = 4) -> None:
        super().__init__(label=label)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: cf.ProcessPoolExecutor | None = None
        self._outstanding = 0
        self._lock = threading.Lock()

    def start(self) -> None:
        if self._started:
            return
        self._pool = cf.ProcessPoolExecutor(max_workers=self.max_workers)
        self._started = True

    def submit(self, func: Callable, resource_spec: Dict[str, Any], *args: Any, **kwargs: Any):
        if self._pool is None:
            raise RuntimeError(f"executor {self.label!r} has not been started")
        blob = pack_apply_message(func, args, kwargs)
        with self._lock:
            self._outstanding += 1
        inner = self._pool.submit(_run_packed_task, blob)
        outer: cf.Future = cf.Future()

        def _relay(fut: cf.Future) -> None:
            with self._lock:
                self._outstanding -= 1
            exc = fut.exception()
            if exc is not None:
                outer.set_exception(exc)
                return
            ok, payload = deserialize(fut.result())
            if ok:
                outer.set_result(payload)
            else:
                outer.set_exception(payload)

        inner.add_done_callback(_relay)
        return outer

    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=False)
            self._pool = None
        self._started = False
