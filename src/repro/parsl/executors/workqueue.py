"""A WorkQueue/TaskVine-style resource-aware executor.

Parsl interoperates with community executors such as the TaskVineExecutor whose
distinguishing feature is *per-task resource accounting*: each task declares how
many cores (and how much memory) it needs and is only dispatched when those
resources are free.  This executor reproduces that model on a single machine:

* tasks carry a ``resource_spec`` (``{"cores": n, "memory_mb": m}``),
* a dispatcher thread admits tasks in FIFO order whenever the declared
  resources fit within the executor's budget,
* admitted tasks run on an internal thread pool.

It is used by the executor-comparison ablation benchmark (A2 in DESIGN.md).
"""

from __future__ import annotations

import concurrent.futures as cf
import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.parsl.executors.base import ParslExecutor
from repro.utils.logging_config import get_logger

logger = get_logger("parsl.executors.workqueue")


@dataclass
class _QueuedTask:
    func: Callable
    args: tuple
    kwargs: dict
    cores: int
    memory_mb: int
    future: cf.Future


class WorkQueueStyleExecutor(ParslExecutor):
    """Resource-aware FIFO executor."""

    def __init__(self, label: str = "workqueue", total_cores: int = 8,
                 total_memory_mb: int = 32 * 1024,
                 default_task_cores: int = 1, default_task_memory_mb: int = 512) -> None:
        super().__init__(label=label)
        if total_cores < 1:
            raise ValueError("total_cores must be >= 1")
        self.total_cores = total_cores
        self.total_memory_mb = total_memory_mb
        self.default_task_cores = default_task_cores
        self.default_task_memory_mb = default_task_memory_mb

        self._free_cores = total_cores
        self._free_memory = total_memory_mb
        self._resource_lock = threading.Lock()
        self._resource_freed = threading.Event()

        self._queue: "queue.Queue[Optional[_QueuedTask]]" = queue.Queue()
        self._pool: Optional[cf.ThreadPoolExecutor] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._outstanding = 0
        self._outstanding_lock = threading.Lock()

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        if self._started:
            return
        self._pool = cf.ThreadPoolExecutor(max_workers=self.total_cores,
                                           thread_name_prefix=f"{self.label}-worker")
        self._stop.clear()
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name=f"{self.label}-dispatcher", daemon=True)
        self._dispatcher.start()
        self._started = True

    def shutdown(self) -> None:
        if not self._started:
            return
        self._stop.set()
        self._queue.put(None)
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5)
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=False)
            self._pool = None
        self._started = False

    # -------------------------------------------------------------- submission

    def submit(self, func: Callable, resource_spec: Dict[str, Any], *args: Any, **kwargs: Any) -> cf.Future:
        if not self._started or self._pool is None:
            raise RuntimeError(f"executor {self.label!r} has not been started")
        spec = resource_spec or {}
        cores = int(spec.get("cores", self.default_task_cores))
        memory = int(spec.get("memory_mb", self.default_task_memory_mb))
        if cores > self.total_cores or memory > self.total_memory_mb:
            future: cf.Future = cf.Future()
            future.set_exception(
                ValueError(
                    f"task requests cores={cores}, memory_mb={memory} which exceeds the executor "
                    f"budget (cores={self.total_cores}, memory_mb={self.total_memory_mb})"
                )
            )
            return future
        future = cf.Future()
        with self._outstanding_lock:
            self._outstanding += 1
        self._queue.put(_QueuedTask(func, args, kwargs, cores, memory, future))
        return future

    def outstanding(self) -> int:
        with self._outstanding_lock:
            return self._outstanding

    # -------------------------------------------------------------- dispatcher

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is None:
                break
            self._wait_for_resources(item.cores, item.memory_mb)
            if self._stop.is_set():
                item.future.set_exception(RuntimeError("executor shut down before task ran"))
                break
            assert self._pool is not None
            self._pool.submit(self._run_task, item)

    def _wait_for_resources(self, cores: int, memory_mb: int) -> None:
        while not self._stop.is_set():
            with self._resource_lock:
                if self._free_cores >= cores and self._free_memory >= memory_mb:
                    self._free_cores -= cores
                    self._free_memory -= memory_mb
                    return
            self._resource_freed.wait(timeout=0.05)
            self._resource_freed.clear()

    def _run_task(self, item: _QueuedTask) -> None:
        try:
            result = item.func(*item.args, **item.kwargs)
        except BaseException as exc:  # noqa: BLE001
            item.future.set_exception(exc)
        else:
            item.future.set_result(result)
        finally:
            with self._resource_lock:
                self._free_cores += item.cores
                self._free_memory += item.memory_mb
            with self._outstanding_lock:
                self._outstanding -= 1
            self._resource_freed.set()

    # ---------------------------------------------------------------- metrics

    def utilisation(self) -> float:
        """Fraction of the core budget currently allocated to running tasks."""
        with self._resource_lock:
            return 1.0 - self._free_cores / self.total_cores
