"""Block managers.

A :class:`BlockManager` corresponds to one provider block (one pilot job): it
owns the worker processes running "on" that block's nodes.  On a real cluster
the manager process runs inside the batch job; here the workers are local
child processes tagged with the block's node names, which preserves the
structure (and the per-block scaling behaviour) while remaining laptop-runnable.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, List

from repro.parsl.executors.high_throughput.worker import worker_loop
from repro.parsl.providers.base import Block
from repro.utils.logging_config import get_logger

logger = get_logger("parsl.executors.htex.manager")


class BlockManager:
    """Start and stop the worker processes for one block."""

    def __init__(self, block: Block, workers_per_node: int,
                 mp_context: Any, task_queue: Any, result_queue: Any) -> None:
        self.block = block
        self.workers_per_node = workers_per_node
        self._mp_context = mp_context
        self._task_queue = task_queue
        self._result_queue = result_queue
        self.processes: List[Any] = []

    @property
    def worker_count(self) -> int:
        return len(self.block.node_names) * self.workers_per_node

    def start(self) -> None:
        """Spawn one worker process per (node, worker slot) pair."""
        for node in self.block.node_names:
            for slot in range(self.workers_per_node):
                worker_id = f"{self.block.block_id}/{node}/{slot}"
                proc = self._mp_context.Process(
                    target=worker_loop,
                    args=(worker_id, self.block.block_id, self._task_queue, self._result_queue),
                    name=f"htex-worker-{worker_id}",
                    daemon=True,
                )
                proc.start()
                self.processes.append(proc)
        logger.info("block %s started %d workers across %d node(s)",
                    self.block.block_id, len(self.processes), len(self.block.node_names))

    def join(self, timeout: float = 5.0) -> None:
        """Wait for workers to exit (after stop sentinels have been queued)."""
        for proc in self.processes:
            proc.join(timeout=timeout)

    def terminate(self) -> None:
        """Forcefully stop any workers that are still alive."""
        for proc in self.processes:
            if proc.is_alive():
                proc.terminate()
        for proc in self.processes:
            proc.join(timeout=2.0)

    def alive_workers(self) -> int:
        return sum(1 for proc in self.processes if proc.is_alive())
