"""The worker process loop.

Each worker is a separate operating-system process started by a
:class:`~repro.parsl.executors.high_throughput.manager.BlockManager`.  Workers
pull :class:`~repro.parsl.executors.high_throughput.messages.TaskMessage`
objects from the shared task queue, execute them and push
:class:`~repro.parsl.executors.high_throughput.messages.ResultMessage` objects
back.  The loop is a module-level function so that it can be used as a
``multiprocessing.Process`` target under both fork and spawn start methods.
"""

from __future__ import annotations

import os
import signal
from typing import Any

from repro.parsl.executors.high_throughput.messages import ResultMessage, TaskMessage, WORKER_STOP
from repro.parsl.serialization import serialize, unpack_apply_message


def execute_task_buffer(buffer: bytes) -> Any:
    """Deserialize and run one task payload; returns the raw result (may raise)."""
    func, args, kwargs = unpack_apply_message(buffer)
    return func(*args, **kwargs)


def worker_loop(worker_id: str, block_id: str, task_queue: Any, result_queue: Any) -> None:
    """Process tasks until a stop sentinel is received.

    ``task_queue`` and ``result_queue`` are multiprocessing queues shared with
    the interchange.  Exceptions raised by tasks are serialized and returned as
    failed results; they never crash the worker.
    """
    # Workers should not react to the parent's Ctrl-C directly; the executor
    # coordinates shutdown through sentinels (and terminate() as a last resort).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main thread in exotic setups
        pass

    os.environ.setdefault("PARSL_WORKER_ID", worker_id)
    os.environ.setdefault("PARSL_BLOCK_ID", block_id)

    while True:
        message = task_queue.get()
        if message is WORKER_STOP:
            break
        if not isinstance(message, TaskMessage):  # defensive: ignore malformed entries
            continue
        try:
            result = execute_task_buffer(message.buffer)
            payload = ResultMessage(
                task_id=message.task_id,
                success=True,
                buffer=serialize(result),
                worker_id=worker_id,
                block_id=block_id,
            )
        except BaseException as exc:  # noqa: BLE001 - task errors become failed results
            try:
                buffer = serialize(exc)
            except Exception:
                buffer = serialize(RuntimeError(f"{type(exc).__name__}: {exc}"))
            payload = ResultMessage(
                task_id=message.task_id,
                success=False,
                buffer=buffer,
                worker_id=worker_id,
                block_id=block_id,
            )
        result_queue.put(payload)
