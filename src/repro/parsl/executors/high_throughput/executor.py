"""The HighThroughputExecutor (HTEX).

HTEX implements the pilot-job model described in §II-B of the paper: the
executor asks its provider for *blocks* of resources (each block is one batch
job), starts a pool of worker processes for each block, and then streams tasks
to those workers through an interchange without ever touching the batch
scheduler on the per-task path.  This decoupling is what gives Parsl its task
throughput on HPC systems and is the executor used for the three-node
experiment (Fig. 1a).
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional

from repro.parsl.errors import ScalingFailed
from repro.parsl.executors.base import ParslExecutor
from repro.parsl.executors.high_throughput.interchange import Interchange
from repro.parsl.executors.high_throughput.manager import BlockManager
from repro.parsl.providers.base import ExecutionProvider
from repro.parsl.providers.local import LocalProvider
from repro.parsl.serialization import pack_apply_message
from repro.utils.ids import RunIdGenerator
from repro.utils.logging_config import get_logger

logger = get_logger("parsl.executors.htex")


class HighThroughputExecutor(ParslExecutor):
    """Pilot-job executor: provider blocks + per-block worker processes.

    Parameters
    ----------
    label:
        Executor label used by apps to select this executor.
    provider:
        The :class:`~repro.parsl.providers.base.ExecutionProvider` supplying
        blocks; defaults to a single-block :class:`LocalProvider`.
    max_workers_per_node:
        Worker processes per node; defaults to ``cores_per_node // cores_per_worker``.
    cores_per_worker:
        Cores notionally assigned to each worker (used only to derive the
        default worker count, as in Parsl).
    mp_start_method:
        ``"fork"`` (default, fastest on Linux) or ``"spawn"``.
    enable_elastic_scaling:
        When true, additional blocks (up to ``provider.max_blocks``) are
        requested whenever the backlog exceeds the current worker count.
    """

    def __init__(
        self,
        label: str = "htex",
        provider: Optional[ExecutionProvider] = None,
        max_workers_per_node: Optional[int] = None,
        cores_per_worker: int = 1,
        mp_start_method: str = "fork",
        enable_elastic_scaling: bool = True,
    ) -> None:
        super().__init__(label=label)
        self.provider = provider or LocalProvider(init_blocks=1, max_blocks=1)
        if cores_per_worker < 1:
            raise ValueError("cores_per_worker must be >= 1")
        self.cores_per_worker = cores_per_worker
        self.max_workers_per_node = max_workers_per_node or max(
            1, self.provider.cores_per_node // cores_per_worker
        )
        self.enable_elastic_scaling = enable_elastic_scaling
        self._mp_context = mp.get_context(mp_start_method)
        self._interchange: Optional[Interchange] = None
        self._managers: List[BlockManager] = []
        self._managers_lock = threading.Lock()
        self._task_ids = RunIdGenerator()
        self._outstanding = 0
        self._outstanding_lock = threading.Lock()

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> None:
        if self._started:
            return
        self._interchange = Interchange(self._mp_context)
        self._interchange.start()
        added = self.scale_out(self.provider.init_blocks)
        if added < self.provider.init_blocks:
            logger.warning("requested %d initial blocks but only %d started",
                           self.provider.init_blocks, added)
        self._started = True

    def shutdown(self) -> None:
        if not self._started:
            return
        with self._managers_lock:
            managers = list(self._managers)
        if self._interchange is not None:
            self._interchange.send_worker_stop(sum(m.worker_count for m in managers))
        for manager in managers:
            manager.join(timeout=5)
            manager.terminate()
            self.provider.cancel(manager.block)
        if self._interchange is not None:
            self._interchange.stop()
            self._interchange = None
        with self._managers_lock:
            self._managers.clear()
        self._started = False

    # ------------------------------------------------------------------ scaling

    def scale_out(self, blocks: int = 1) -> int:
        """Request ``blocks`` more blocks from the provider and start their workers."""
        if self._interchange is None:
            raise RuntimeError("executor not started")
        added = 0
        for _ in range(blocks):
            with self._managers_lock:
                if len(self._managers) >= self.provider.max_blocks:
                    break
            try:
                block = self.provider.submit_block(job_name=f"{self.label}-block")
            except Exception as exc:
                logger.warning("scale_out failed: %s", exc)
                raise ScalingFailed(self.label, str(exc)) from exc
            manager = BlockManager(
                block=block,
                workers_per_node=self.max_workers_per_node,
                mp_context=self._mp_context,
                task_queue=self._interchange.task_queue,
                result_queue=self._interchange.result_queue,
            )
            manager.start()
            with self._managers_lock:
                self._managers.append(manager)
            added += 1
        return added

    def scale_in(self, blocks: int = 1) -> int:
        """Retire up to ``blocks`` blocks (most recently added first).

        The retired block's workers are terminated directly rather than via
        stop sentinels: sentinels travel through the shared task queue and
        could be consumed by workers belonging to blocks that are staying.
        """
        removed = 0
        for _ in range(blocks):
            with self._managers_lock:
                if len(self._managers) <= self.provider.min_blocks or not self._managers:
                    break
                manager = self._managers.pop()
            manager.terminate()
            self.provider.cancel(manager.block)
            removed += 1
        return removed

    @property
    def connected_workers(self) -> int:
        with self._managers_lock:
            return sum(m.alive_workers() for m in self._managers)

    @property
    def total_workers(self) -> int:
        with self._managers_lock:
            return sum(m.worker_count for m in self._managers)

    @property
    def connected_blocks(self) -> int:
        with self._managers_lock:
            return len(self._managers)

    # --------------------------------------------------------------- submission

    def submit(self, func: Callable, resource_spec: Dict[str, Any], *args: Any, **kwargs: Any) -> Future:
        if self._interchange is None:
            raise RuntimeError(f"executor {self.label!r} has not been started")
        task_id = self._task_ids.next()
        buffer = pack_apply_message(func, args, kwargs)
        with self._outstanding_lock:
            self._outstanding += 1
        future = self._interchange.submit(task_id, buffer)
        future.add_done_callback(self._task_done)
        self._maybe_scale_out()
        return future

    def _task_done(self, _future: Future) -> None:
        with self._outstanding_lock:
            self._outstanding -= 1

    def _maybe_scale_out(self) -> None:
        if not self.enable_elastic_scaling:
            return
        with self._managers_lock:
            current_blocks = len(self._managers)
        if current_blocks >= self.provider.max_blocks:
            return
        if self.outstanding() > self.total_workers:
            try:
                self.scale_out(1)
            except ScalingFailed:
                # The provider could not satisfy the request right now (e.g. the
                # simulated cluster is full); keep running on existing blocks.
                logger.debug("elastic scale-out deferred for %s", self.label)

    def outstanding(self) -> int:
        with self._outstanding_lock:
            return self._outstanding
