"""Wire messages exchanged between the interchange and worker processes.

Messages are plain tuples/dataclasses of bytes because they cross process
boundaries through :class:`multiprocessing.Queue`; task payloads are serialized
once on the submit side (with cloudpickle) and deserialized only inside the
worker, so the interchange never needs to understand them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TaskMessage:
    """A task shipped from the interchange to a worker."""

    task_id: int
    buffer: bytes


@dataclass(frozen=True)
class ResultMessage:
    """A result (or failure) shipped from a worker back to the interchange."""

    task_id: int
    success: bool
    buffer: bytes          # serialized result when success, serialized exception otherwise
    worker_id: str = ""
    block_id: str = ""


#: Sentinel placed on the task queue to tell one worker to exit.
WORKER_STOP = None
