"""The HighThroughputExecutor: a pilot-job executor with interchange, managers and workers."""

from repro.parsl.executors.high_throughput.executor import HighThroughputExecutor

__all__ = ["HighThroughputExecutor"]
