"""The interchange.

The interchange decouples task submission from worker execution: the submitting
process puts serialized tasks on a queue and registers a future; worker
processes (owned by block managers) consume tasks and push results back; a
collector thread inside the interchange resolves the futures.  This mirrors the
role Parsl's interchange process plays between the DFK and remote managers,
collapsed into threads + multiprocessing queues for a single-machine setting.
"""

from __future__ import annotations

import queue as _queue
import threading
from concurrent.futures import Future
from typing import Any, Dict, Optional

from repro.parsl.executors.high_throughput.messages import ResultMessage, TaskMessage, WORKER_STOP
from repro.parsl.serialization import deserialize
from repro.utils.logging_config import get_logger

logger = get_logger("parsl.executors.htex.interchange")


class Interchange:
    """Task/result broker between the submit side and worker processes."""

    def __init__(self, mp_context: Any) -> None:
        self.task_queue = mp_context.Queue()
        self.result_queue = mp_context.Queue()
        self._futures: Dict[int, Future] = {}
        self._futures_lock = threading.Lock()
        self._collector: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.tasks_submitted = 0
        self.results_received = 0

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._stop.clear()
        self._collector = threading.Thread(
            target=self._collect_results, name="htex-interchange", daemon=True
        )
        self._collector.start()

    def stop(self) -> None:
        """Stop the collector thread and fail any still-pending futures."""
        self._stop.set()
        # Unblock the collector if it is waiting on an empty queue.
        self.result_queue.put(None)
        if self._collector is not None:
            self._collector.join(timeout=5)
        with self._futures_lock:
            pending = list(self._futures.items())
            self._futures.clear()
        for task_id, future in pending:
            if not future.done():
                future.set_exception(
                    RuntimeError(f"interchange stopped before task {task_id} completed")
                )

    # -------------------------------------------------------------- submission

    def submit(self, task_id: int, buffer: bytes) -> Future:
        """Queue one task and return the future that will carry its result."""
        future: Future = Future()
        with self._futures_lock:
            self._futures[task_id] = future
        self.task_queue.put(TaskMessage(task_id=task_id, buffer=buffer))
        self.tasks_submitted += 1
        return future

    def outstanding(self) -> int:
        with self._futures_lock:
            return len(self._futures)

    def send_worker_stop(self, count: int) -> None:
        """Queue ``count`` stop sentinels (one per worker that should exit)."""
        for _ in range(count):
            self.task_queue.put(WORKER_STOP)

    # --------------------------------------------------------------- collector

    def _collect_results(self) -> None:
        while not self._stop.is_set():
            try:
                message = self.result_queue.get(timeout=0.1)
            except _queue.Empty:
                continue
            except (EOFError, OSError):  # queues torn down during shutdown
                break
            if message is None:
                continue
            if not isinstance(message, ResultMessage):
                logger.warning("interchange received unexpected message %r", message)
                continue
            self.results_received += 1
            with self._futures_lock:
                future = self._futures.pop(message.task_id, None)
            if future is None:
                logger.warning("result for unknown task %s", message.task_id)
                continue
            try:
                payload = deserialize(message.buffer)
            except Exception as exc:  # noqa: BLE001
                future.set_exception(exc)
                continue
            if message.success:
                future.set_result(payload)
            else:
                future.set_exception(payload)
