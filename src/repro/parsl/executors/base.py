"""The executor interface.

Executors follow the shape of :class:`concurrent.futures.Executor` but receive
an additional per-task ``resource_spec`` dictionary (cores, memory, disk) which
resource-aware executors may honour and others ignore, matching Parsl's
``ParslExecutor`` API.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import Future
from typing import Any, Callable, Dict, Optional


class ParslExecutor(ABC):
    """Abstract base class for all executors."""

    #: Set by subclasses or the constructor; used by the DFK to route tasks.
    label: str = "executor"

    def __init__(self, label: str = "executor") -> None:
        self.label = label
        #: The DataFlowKernel sets this to its run directory before calling start().
        self.run_dir: Optional[str] = None
        self._started = False

    @abstractmethod
    def start(self) -> None:
        """Acquire resources (threads, processes, provider blocks)."""

    @abstractmethod
    def submit(self, func: Callable, resource_spec: Dict[str, Any], *args: Any, **kwargs: Any) -> Future:
        """Schedule ``func(*args, **kwargs)`` for execution and return a Future."""

    @abstractmethod
    def shutdown(self) -> None:
        """Release all resources.  Must be idempotent."""

    # ------------------------------------------------------------- optional

    def scale_out(self, blocks: int = 1) -> int:
        """Request additional resource blocks; returns how many were added."""
        return 0

    def scale_in(self, blocks: int = 1) -> int:
        """Release resource blocks; returns how many were removed."""
        return 0

    def outstanding(self) -> int:
        """Number of submitted-but-unfinished tasks (used by scaling strategies)."""
        return 0

    @property
    def started(self) -> bool:
        return self._started

    def __repr__(self) -> str:
        return f"<{type(self).__name__} label={self.label!r}>"
