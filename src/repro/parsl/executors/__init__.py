"""Executors: pluggable runtime engines that actually run tasks."""

from repro.parsl.executors.base import ParslExecutor
from repro.parsl.executors.threads import ThreadPoolExecutor
from repro.parsl.executors.processes import ProcessPoolExecutor
from repro.parsl.executors.workqueue import WorkQueueStyleExecutor
from repro.parsl.executors.high_throughput.executor import HighThroughputExecutor

__all__ = [
    "HighThroughputExecutor",
    "ParslExecutor",
    "ProcessPoolExecutor",
    "ThreadPoolExecutor",
    "WorkQueueStyleExecutor",
]
