"""Thread-pool executor.

Backed by :class:`concurrent.futures.ThreadPoolExecutor`; the right choice for
workflows whose tasks are external processes (bash apps / CWLApps) because the
GIL is released while waiting on subprocesses.  This is the executor the paper
uses for the single-node experiment (Fig. 1b).
"""

from __future__ import annotations

import concurrent.futures as cf
import threading
from typing import Any, Callable, Dict

from repro.parsl.executors.base import ParslExecutor


class ThreadPoolExecutor(ParslExecutor):
    """Run tasks on a pool of local threads."""

    def __init__(self, label: str = "threads", max_threads: int = 8,
                 thread_name_prefix: str = "parsl-worker") -> None:
        super().__init__(label=label)
        if max_threads < 1:
            raise ValueError(f"max_threads must be >= 1, got {max_threads}")
        self.max_threads = max_threads
        self.thread_name_prefix = thread_name_prefix
        self._pool: cf.ThreadPoolExecutor | None = None
        self._outstanding = 0
        self._lock = threading.Lock()

    def start(self) -> None:
        if self._started:
            return
        self._pool = cf.ThreadPoolExecutor(
            max_workers=self.max_threads, thread_name_prefix=self.thread_name_prefix
        )
        self._started = True

    def submit(self, func: Callable, resource_spec: Dict[str, Any], *args: Any, **kwargs: Any):
        if self._pool is None:
            raise RuntimeError(f"executor {self.label!r} has not been started")
        with self._lock:
            self._outstanding += 1
        future = self._pool.submit(func, *args, **kwargs)

        def _done(_fut) -> None:
            with self._lock:
                self._outstanding -= 1

        future.add_done_callback(_done)
        return future

    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=False)
            self._pool = None
        self._started = False
