"""Exception hierarchy for the Parsl-like library.

The names deliberately mirror Parsl's public exceptions so that code written
against Parsl (including the paper's listings) reads naturally against this
re-implementation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class ParslError(Exception):
    """Base class for all errors raised by :mod:`repro.parsl`."""


class ConfigurationError(ParslError):
    """Raised for invalid :class:`~repro.parsl.config.Config` objects."""


class NoDataFlowKernelError(ParslError):
    """Raised when an app is invoked before ``parsl.load()`` has been called."""

    def __init__(self) -> None:
        super().__init__(
            "Cannot execute apps: no DataFlowKernel is loaded. Call repro.load(config) first."
        )


class DataFlowKernelShutdownError(ParslError):
    """Raised when submitting to a DataFlowKernel that has been cleaned up."""


class AppException(ParslError):
    """Base class for errors raised while executing an app."""


class AppBadFormatting(AppException):
    """Raised when a bash app's command template cannot be formatted."""


class BashExitFailure(AppException):
    """Raised when a bash app's command exits with a non-zero code."""

    def __init__(self, app_name: str, exitcode: int, command: Optional[str] = None) -> None:
        self.app_name = app_name
        self.exitcode = exitcode
        self.command = command
        message = f"bash app '{app_name}' failed with exit code {exitcode}"
        if command:
            message += f" (command: {command!r})"
        super().__init__(message)


class BashAppNoReturn(AppException):
    """Raised when a bash app function does not return a command string."""

    def __init__(self, app_name: str, returned: object) -> None:
        super().__init__(
            f"bash app '{app_name}' must return the command string to execute; got {type(returned).__name__}"
        )


class MissingOutputs(AppException):
    """Raised when an app completes but one or more declared output files are absent."""

    def __init__(self, app_name: str, missing: Sequence[str]) -> None:
        self.missing = list(missing)
        super().__init__(f"app '{app_name}' did not produce declared outputs: {', '.join(missing)}")


class DependencyError(ParslError):
    """Raised (as a task's result) when one of its dependencies failed.

    Carries the task id whose dependencies failed and the underlying reasons so
    that failure chains can be traced through a workflow.
    """

    def __init__(self, dependent_exceptions: List[BaseException], task_id: int) -> None:
        self.dependent_exceptions = dependent_exceptions
        self.task_id = task_id
        reasons = "; ".join(f"{type(e).__name__}: {e}" for e in dependent_exceptions) or "unknown"
        super().__init__(f"Dependency failure for task {task_id}: {reasons}")


class JoinError(ParslError):
    """Raised when the future returned by a join app fails."""

    def __init__(self, dependent_exceptions: List[BaseException], task_id: int) -> None:
        self.dependent_exceptions = dependent_exceptions
        self.task_id = task_id
        reasons = "; ".join(f"{type(e).__name__}: {e}" for e in dependent_exceptions) or "unknown"
        super().__init__(f"Join failure for task {task_id}: {reasons}")


class ExecutorError(ParslError):
    """Base class for executor-level failures."""

    def __init__(self, executor_label: str, message: str) -> None:
        self.executor_label = executor_label
        super().__init__(f"executor '{executor_label}': {message}")


class ScalingFailed(ExecutorError):
    """Raised when a provider cannot supply the resources an executor asked for."""


class SerializationError(ParslError):
    """Raised when a task payload cannot be serialized for remote execution."""

    def __init__(self, what: str, cause: Optional[BaseException] = None) -> None:
        self.cause = cause
        message = f"could not serialize {what}"
        if cause is not None:
            message += f": {cause}"
        super().__init__(message)


class ProviderError(ParslError):
    """Base class for provider failures (submission, cancellation, status)."""


class SubmitException(ProviderError):
    """Raised when a provider fails to submit a block job."""
