"""The top-level :class:`Config` object for the Parsl-like library.

A ``Config`` bundles together the executors to start, retry/memoization policy,
checkpointing behaviour, staging providers and the run directory.  It is
deliberately declarative: constructing a Config has no side effects; resources
are only acquired when the config is passed to :func:`repro.parsl.load`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.parsl.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parsl.data_provider.staging import Staging
    from repro.parsl.executors.base import ParslExecutor


_VALID_CHECKPOINT_MODES = (None, "manual", "dfk_exit", "task_exit")


@dataclass
class Config:
    """Declarative description of a Parsl runtime.

    Parameters
    ----------
    executors:
        The executors to start.  Labels must be unique.
    retries:
        Number of automatic retries for failed tasks (0 = fail immediately).
    app_cache:
        Enable the memoizer (apps must additionally opt in with ``cache=True``).
    checkpoint_mode:
        ``None``, ``"manual"``, ``"dfk_exit"`` or ``"task_exit"``.
    checkpoint_files:
        Previously written checkpoint files to pre-load into the memoizer.
    run_dir:
        Base directory under which numbered run directories are created.
    staging_providers:
        Data staging providers; defaults to local no-op staging.
    monitoring:
        Enable the monitoring hub (task events written to the run directory).
    strategy:
        Block scaling strategy for executors that use providers: ``"none"``
        (static ``init_blocks``) or ``"simple"`` (scale toward outstanding work).
    """

    executors: List["ParslExecutor"] = field(default_factory=list)
    retries: int = 0
    app_cache: bool = True
    checkpoint_mode: Optional[str] = None
    checkpoint_files: Sequence[str] = ()
    run_dir: str = "runinfo"
    staging_providers: Optional[List["Staging"]] = None
    monitoring: bool = False
    strategy: str = "simple"

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")
        if self.checkpoint_mode not in _VALID_CHECKPOINT_MODES:
            raise ConfigurationError(
                f"checkpoint_mode must be one of {_VALID_CHECKPOINT_MODES}, got {self.checkpoint_mode!r}"
            )
        if self.strategy not in ("none", "simple"):
            raise ConfigurationError(f"strategy must be 'none' or 'simple', got {self.strategy!r}")

    @classmethod
    def default(cls) -> "Config":
        """A single-node thread-pool configuration (Parsl's implicit default)."""
        from repro.parsl.executors.threads import ThreadPoolExecutor

        return cls(executors=[ThreadPoolExecutor(label="threads", max_threads=8)])
