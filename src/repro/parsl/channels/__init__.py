"""Channels: where provider commands execute.

Parsl's channel abstraction lets providers run their ``sbatch``/``qsub``
commands either locally or over SSH.  Only a local channel is meaningful in
this environment, but the interface is kept so that provider code reads like
Parsl's and so that tests can exercise command execution and error handling.
"""

from __future__ import annotations

import os
import subprocess
from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple


class Channel(ABC):
    """Interface for executing commands and transferring scripts."""

    @abstractmethod
    def execute_wait(self, command: str, timeout: Optional[float] = None,
                     env: Optional[Dict[str, str]] = None) -> Tuple[int, str, str]:
        """Run ``command`` and return ``(exit_code, stdout, stderr)``."""

    @abstractmethod
    def push_file(self, source: str, destination_dir: str) -> str:
        """Make ``source`` available on the channel's target; return the remote path."""

    @property
    @abstractmethod
    def script_dir(self) -> str:
        """Directory in which provider scripts should be written."""


class LocalChannel(Channel):
    """Execute provider commands on the local host."""

    def __init__(self, script_dir: str = ".parsl_scripts") -> None:
        self._script_dir = script_dir

    @property
    def script_dir(self) -> str:
        return self._script_dir

    def execute_wait(self, command: str, timeout: Optional[float] = None,
                     env: Optional[Dict[str, str]] = None) -> Tuple[int, str, str]:
        merged = dict(os.environ)
        if env:
            merged.update(env)
        proc = subprocess.run(
            command, shell=True, capture_output=True, text=True, timeout=timeout, env=merged
        )
        return proc.returncode, proc.stdout, proc.stderr

    def push_file(self, source: str, destination_dir: str) -> str:
        os.makedirs(destination_dir, exist_ok=True)
        destination = os.path.join(destination_dir, os.path.basename(source))
        if os.path.abspath(source) != os.path.abspath(destination):
            import shutil

            shutil.copy2(source, destination)
        return destination


__all__ = ["Channel", "LocalChannel"]
