"""Execution-side wrapper for bash apps.

A bash app's Python body returns a command-line string; the wrapper below runs
that command in a subshell on the executor side, wiring ``stdout`` / ``stderr``
kwargs to files and translating non-zero exit codes into
:class:`~repro.parsl.errors.BashExitFailure`.  It is a module-level function so
that it can be serialized by reference and shipped to worker processes.
"""

from __future__ import annotations

import os
import subprocess
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.parsl.errors import AppBadFormatting, BashAppNoReturn, BashExitFailure, MissingOutputs

StdSpec = Union[None, str, Tuple[str, str]]


def _open_std_stream(spec: StdSpec):
    """Open a stdout/stderr specification: a path, or a ``(path, mode)`` tuple."""
    if spec is None:
        return None, None
    if isinstance(spec, tuple):
        path, mode = spec
    else:
        path, mode = spec, "w"
    path = os.fspath(path)
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    return open(path, mode), path


def remote_side_bash_executor(func: Callable, *args: Any, **kwargs: Any) -> int:
    """Run a bash app: evaluate its body to a command string and execute it.

    Returns 0 on success (mirroring Parsl, where the AppFuture of a bash app
    resolves to the unix exit code of the command, which must be zero).
    """
    app_name = getattr(func, "__name__", "bash_app")

    stdout_spec: StdSpec = kwargs.pop("stdout", None)
    stderr_spec: StdSpec = kwargs.pop("stderr", None)
    # inputs/outputs stay visible to the app body (they are part of Parsl's API),
    # but we keep a copy to verify declared outputs afterwards.
    declared_outputs = kwargs.get("outputs") or []

    try:
        command = func(*args, **kwargs)
    except TypeError as exc:
        # Signature mismatches are formatting errors; anything else the body
        # raises (e.g. CWL input validation failures) propagates unchanged so
        # callers can handle the original exception type.
        raise AppBadFormatting(
            f"bash app '{app_name}' raised while building its command: {exc}"
        ) from exc

    if not isinstance(command, str):
        raise BashAppNoReturn(app_name, command)

    stdout_handle, _stdout_path = _open_std_stream(stdout_spec)
    stderr_handle, _stderr_path = _open_std_stream(stderr_spec)
    try:
        from repro.utils.environment import subprocess_environment

        proc = subprocess.Popen(
            command,
            shell=True,
            executable="/bin/bash" if os.path.exists("/bin/bash") else None,
            env=subprocess_environment(),
            stdout=stdout_handle if stdout_handle is not None else subprocess.DEVNULL,
            stderr=stderr_handle if stderr_handle is not None else subprocess.DEVNULL,
        )
        exit_code = proc.wait()
    finally:
        for handle in (stdout_handle, stderr_handle):
            if handle is not None:
                handle.close()

    if exit_code != 0:
        raise BashExitFailure(app_name, exit_code, command)

    missing = [f.filepath if hasattr(f, "filepath") else str(f)
               for f in declared_outputs
               if not os.path.exists(f.filepath if hasattr(f, "filepath") else str(f))]
    if missing:
        raise MissingOutputs(app_name, missing)

    return exit_code


def execute_wait(command: str, env: Optional[Dict[str, str]] = None,
                 cwd: Optional[str] = None, timeout: Optional[float] = None) -> Tuple[int, str, str]:
    """Run ``command`` synchronously and capture its output.

    A convenience used by channels, providers and the CWL runners; not part of
    the app execution path itself.
    """
    merged_env = dict(os.environ)
    if env:
        merged_env.update(env)
    proc = subprocess.run(
        command,
        shell=True,
        env=merged_env,
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    return proc.returncode, proc.stdout, proc.stderr
