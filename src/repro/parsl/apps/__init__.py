"""App decorators: ``python_app``, ``bash_app`` and ``join_app``."""

from repro.parsl.apps.app import AppBase, BashApp, JoinApp, PythonApp, bash_app, join_app, python_app

__all__ = [
    "AppBase",
    "BashApp",
    "JoinApp",
    "PythonApp",
    "bash_app",
    "join_app",
    "python_app",
]
