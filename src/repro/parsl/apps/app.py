"""App decorators.

``@python_app`` marks a Python function for concurrent execution; invoking it
returns an :class:`~repro.parsl.dataflow.futures.AppFuture` instead of running
the body inline.  ``@bash_app`` marks a function whose *return value* is a
command line to execute in a subshell.  ``@join_app`` marks a function that
itself returns futures; the app completes when the inner futures do.

The decorators may be used bare (``@python_app``) or with arguments
(``@python_app(cache=True, executors=["htex"])``), matching Parsl's API.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.parsl.apps.bash import remote_side_bash_executor
from repro.parsl.dataflow.dflow import DataFlowKernel, DataFlowKernelLoader
from repro.parsl.dataflow.futures import AppFuture


def _resolve_executor_label(executors: Union[str, Sequence[str], None]) -> str:
    """Map the ``executors`` decorator argument to a single label ('all' = any)."""
    if executors is None or executors == "all":
        return "all"
    if isinstance(executors, str):
        return executors
    if len(executors) == 0:
        return "all"
    return executors[0]


class AppBase:
    """Common machinery shared by the three app flavours."""

    app_type = "python"

    def __init__(
        self,
        func: Callable,
        data_flow_kernel: Optional[DataFlowKernel] = None,
        executors: Union[str, Sequence[str], None] = "all",
        cache: bool = False,
        ignore_for_cache: Sequence[str] = (),
    ) -> None:
        self.func = func
        self.data_flow_kernel = data_flow_kernel
        self.executor_label = _resolve_executor_label(executors)
        self.cache = cache
        self.ignore_for_cache = tuple(ignore_for_cache)
        functools.update_wrapper(self, func)

    def _dfk(self) -> DataFlowKernel:
        if self.data_flow_kernel is not None:
            return self.data_flow_kernel
        return DataFlowKernelLoader.dfk()

    def __call__(self, *args: Any, **kwargs: Any) -> AppFuture:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {getattr(self.func, '__name__', self.func)!r}>"


class PythonApp(AppBase):
    """An app whose body runs as a Python callable on an executor."""

    app_type = "python"

    def __call__(self, *args: Any, **kwargs: Any) -> AppFuture:
        return self._dfk().submit(
            self.func,
            args,
            kwargs,
            app_type="python",
            executor_label=self.executor_label,
            cache=self.cache,
            ignore_for_cache=self.ignore_for_cache,
        )


class BashApp(AppBase):
    """An app whose body returns a command line to execute in a subshell."""

    app_type = "bash"

    def __call__(self, *args: Any, **kwargs: Any) -> AppFuture:
        wrapped = functools.partial(remote_side_bash_executor, self.func)
        functools.update_wrapper(wrapped, self.func)
        return self._dfk().submit(
            wrapped,
            args,
            kwargs,
            app_type="bash",
            executor_label=self.executor_label,
            cache=self.cache,
            ignore_for_cache=self.ignore_for_cache,
        )


class JoinApp(AppBase):
    """An app whose body returns futures; its result is the inner futures' results."""

    app_type = "join"

    def __call__(self, *args: Any, **kwargs: Any) -> AppFuture:
        return self._dfk().submit(
            self.func,
            args,
            kwargs,
            app_type="join",
            executor_label=self.executor_label,
            cache=self.cache,
            ignore_for_cache=self.ignore_for_cache,
            join=True,
        )


def _make_decorator(app_class: type) -> Callable:
    """Build a decorator usable both bare and with keyword arguments."""

    def decorator(
        function: Optional[Callable] = None,
        data_flow_kernel: Optional[DataFlowKernel] = None,
        executors: Union[str, List[str], None] = "all",
        cache: bool = False,
        ignore_for_cache: Sequence[str] = (),
    ):
        def wrap(func: Callable):
            return app_class(
                func,
                data_flow_kernel=data_flow_kernel,
                executors=executors,
                cache=cache,
                ignore_for_cache=ignore_for_cache,
            )

        if function is not None:
            return wrap(function)
        return wrap

    return decorator


#: Decorator for Python apps.
python_app = _make_decorator(PythonApp)
#: Decorator for bash apps.
bash_app = _make_decorator(BashApp)
#: Decorator for join apps.
join_app = _make_decorator(JoinApp)
