"""Task payload serialization.

The HighThroughputExecutor and the process-based executors ship callables and
their arguments to worker processes.  Plain :mod:`pickle` cannot serialize
closures, lambdas or interactively defined functions, so ``cloudpickle`` is
used when available (it is a hard dependency of many HPC Python stacks and is
present in this environment); :mod:`pickle` remains the fallback.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.parsl.errors import SerializationError

try:  # pragma: no cover - exercised implicitly by the executor tests
    import cloudpickle as _pickler
except ImportError:  # pragma: no cover
    import pickle as _pickler  # type: ignore[no-redef]


def serialize(obj: Any) -> bytes:
    """Serialize an arbitrary Python object into bytes."""
    try:
        return _pickler.dumps(obj)
    except Exception as exc:
        raise SerializationError(repr(obj), exc) from exc


def deserialize(blob: bytes) -> Any:
    """Inverse of :func:`serialize`."""
    try:
        return _pickler.loads(blob)
    except Exception as exc:
        raise SerializationError("task payload bytes", exc) from exc


def pack_apply_message(func: Callable, args: Tuple, kwargs: Dict) -> bytes:
    """Pack a callable invocation into a single byte string."""
    return serialize((func, args, kwargs))


def unpack_apply_message(blob: bytes) -> Tuple[Callable, Tuple, Dict]:
    """Unpack a byte string created by :func:`pack_apply_message`."""
    func, args, kwargs = deserialize(blob)
    return func, args, kwargs
