"""Task lifecycle states.

The state machine follows Parsl's:

``unsched -> pending -> launched -> running -> exec_done``

with failure paths into ``failed``, ``dep_fail`` (a dependency failed so the
task never launched), ``memo_done`` (result served from the memoization table)
and ``joining`` (a join app waiting on its inner future).
"""

from __future__ import annotations

import enum


class States(enum.IntEnum):
    """Possible states of a task managed by the DataFlowKernel."""

    unsched = 0
    pending = 1
    launched = 2
    running = 3
    exec_done = 4
    failed = 5
    dep_fail = 6
    retry = 7
    memo_done = 8
    joining = 9
    cancelled = 10

    @property
    def is_final(self) -> bool:
        return self in FINAL_STATES

    @property
    def is_failure(self) -> bool:
        return self in FINAL_FAILURE_STATES


#: States from which a task will never move again.
FINAL_STATES = frozenset(
    {States.exec_done, States.failed, States.dep_fail, States.memo_done, States.cancelled}
)

#: Final states that represent a failure.
FINAL_FAILURE_STATES = frozenset({States.failed, States.dep_fail, States.cancelled})
