"""The per-task bookkeeping record used by the DataFlowKernel."""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.parsl.dataflow.states import States


@dataclass
class TaskRecord:
    """Mutable record describing one submitted task.

    The DataFlowKernel creates one record per app invocation and mutates it as
    the task moves through its lifecycle; the record also feeds the monitoring
    subsystem and the memoizer.
    """

    id: int
    func: Callable
    func_name: str
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    app_type: str = "python"           # "python" | "bash" | "join"
    executor: str = "all"              # requested executor label
    status: States = States.unsched
    depends: List[Future] = field(default_factory=list)
    app_future: Optional[Any] = None   # AppFuture (typed loosely to avoid cycles)
    executor_future: Optional[Future] = None
    join_future: Optional[Future] = None
    retries_left: int = 0
    fail_count: int = 0
    fail_history: List[str] = field(default_factory=list)
    memoize: bool = True
    hashsum: Optional[str] = None
    from_memo: bool = False
    ignore_for_cache: Tuple[str, ...] = ()
    resource_spec: Dict[str, Any] = field(default_factory=dict)
    time_invoked: float = field(default_factory=time.time)
    time_launched: Optional[float] = None
    time_returned: Optional[float] = None
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def transition(self, new_state: States) -> None:
        """Move to ``new_state`` and timestamp launch/return transitions."""
        self.status = new_state
        if new_state == States.launched and self.time_launched is None:
            self.time_launched = time.time()
        if new_state.is_final:
            self.time_returned = time.time()

    @property
    def pending_duration(self) -> float:
        """Seconds spent between invocation and launch (dependency + queue wait)."""
        if self.time_launched is None:
            return 0.0
        return self.time_launched - self.time_invoked

    @property
    def total_duration(self) -> Optional[float]:
        if self.time_returned is None:
            return None
        return self.time_returned - self.time_invoked

    def describe(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot used by monitoring."""
        return {
            "task_id": self.id,
            "func_name": self.func_name,
            "app_type": self.app_type,
            "executor": self.executor,
            "status": self.status.name,
            "fail_count": self.fail_count,
            "from_memo": self.from_memo,
            "time_invoked": self.time_invoked,
            "time_launched": self.time_launched,
            "time_returned": self.time_returned,
        }
