"""Futures returned by app invocations.

* :class:`AppFuture` — returned when an app is invoked; resolves to the app's
  return value (for bash apps, the exit code 0) once execution completes.
* :class:`DataFuture` — returned via ``AppFuture.outputs`` for every declared
  output file; resolves to the corresponding
  :class:`~repro.parsl.data_provider.files.File` when the producing task
  completes.  DataFutures are what make it possible to chain CWLApps without
  waiting (paper §III-A, §IV-B).
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import TYPE_CHECKING, List, Optional

from repro.parsl.data_provider.files import File

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.parsl.dataflow.taskrecord import TaskRecord


class AppFuture(Future):
    """A future tracking the asynchronous execution of one app invocation."""

    def __init__(self, task_record: "TaskRecord") -> None:
        super().__init__()
        self._task_record = task_record
        self._outputs: List["DataFuture"] = []

    @property
    def task_record(self) -> "TaskRecord":
        return self._task_record

    @property
    def tid(self) -> int:
        """The task id assigned by the DataFlowKernel."""
        return self._task_record.id

    @property
    def outputs(self) -> List["DataFuture"]:
        """DataFutures for each file listed in the app's ``outputs`` kwarg."""
        return self._outputs

    @property
    def stdout(self) -> Optional[str]:
        """Path to the task's stdout file, when one was requested."""
        return self._task_record.kwargs.get("stdout")

    @property
    def stderr(self) -> Optional[str]:
        """Path to the task's stderr file, when one was requested."""
        return self._task_record.kwargs.get("stderr")

    def add_output(self, data_future: "DataFuture") -> None:
        self._outputs.append(data_future)

    def task_status(self) -> str:
        """Human-readable name of the task's current state."""
        return self._task_record.status.name

    def __repr__(self) -> str:
        return (
            f"<AppFuture task={self.tid} app={self._task_record.func_name!r} "
            f"state={self._task_record.status.name}>"
        )


class DataFuture(Future):
    """A future for a file produced by a task.

    The DataFuture resolves (to its :class:`File`) when the producing task
    succeeds.  If the producing task fails, the exception is propagated so that
    downstream consumers observe a dependency failure.
    """

    def __init__(self, app_future: AppFuture, file_obj: File) -> None:
        super().__init__()
        if not isinstance(file_obj, File):
            file_obj = File(file_obj)
        self._app_future = app_future
        self._file_obj = file_obj
        app_future.add_done_callback(self._parent_done)

    def _parent_done(self, parent: Future) -> None:
        exc = parent.exception()
        if exc is not None:
            if not self.done():
                self.set_exception(exc)
            return
        if not self.done():
            self.set_result(self._file_obj)

    @property
    def parent(self) -> AppFuture:
        """The AppFuture of the task producing this file."""
        return self._app_future

    @property
    def file_obj(self) -> File:
        return self._file_obj

    @property
    def filepath(self) -> str:
        """Filesystem path of the (eventual) file."""
        return self._file_obj.filepath

    @property
    def filename(self) -> str:
        return self._file_obj.filename

    @property
    def tid(self) -> int:
        return self._app_future.tid

    def cancel(self) -> bool:  # pragma: no cover - mirrors Parsl behaviour
        raise NotImplementedError("DataFutures cannot be cancelled directly")

    def __fspath__(self) -> str:
        return self.filepath

    def __repr__(self) -> str:
        return f"<DataFuture {self._file_obj.url!r} from task {self.tid}>"
