"""The dataflow kernel: futures, task records, memoization and the DFK itself."""

from repro.parsl.dataflow.futures import AppFuture, DataFuture
from repro.parsl.dataflow.states import States
from repro.parsl.dataflow.taskrecord import TaskRecord
from repro.parsl.dataflow.dflow import DataFlowKernel, DataFlowKernelLoader

__all__ = [
    "AppFuture",
    "DataFlowKernel",
    "DataFlowKernelLoader",
    "DataFuture",
    "States",
    "TaskRecord",
]
