"""App result memoization and checkpointing.

Parsl can cache app results keyed on a hash of the app and its arguments so
that re-running a workflow skips completed work.  The memoizer here supports:

* per-app opt-in via ``@python_app(cache=True)`` / per-call ``ignore_for_cache``,
* a process-wide in-memory table,
* optional checkpointing of the table to a pickle file in the run directory and
  reloading it through ``Config(checkpoint_files=[...])``.

File and DataFuture arguments are hashed by URL (not content) matching Parsl's
behaviour; this is a documented sharp edge, and tests cover it.
"""

from __future__ import annotations

import os
import pickle
import threading
from concurrent.futures import Future
from typing import Any, Dict, Iterable, Optional

from repro.parsl.dataflow.taskrecord import TaskRecord
from repro.utils.hashing import hash_obj
from repro.utils.logging_config import get_logger

logger = get_logger("parsl.memoization")


def _normalise_argument(value: Any) -> Any:
    """Convert an argument into a hashable, stable representation."""
    # Imported lazily to avoid a cycle at module import time.
    from repro.parsl.data_provider.files import File
    from repro.parsl.dataflow.futures import DataFuture

    if isinstance(value, DataFuture):
        return ("datafuture", value.file_obj.url)
    if isinstance(value, File):
        return ("file", value.url)
    if isinstance(value, Future):
        # A generic future: use its result if already resolved, else identity.
        if value.done() and value.exception() is None:
            return ("future-result", _normalise_argument(value.result()))
        return ("future", id(value))
    if isinstance(value, dict):
        return tuple(sorted((k, _normalise_argument(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_normalise_argument(v) for v in value)
    return value


def make_hash(task: TaskRecord) -> str:
    """Compute the memoization key for a task record."""
    ignore = set(task.ignore_for_cache) | {"cache", "ignore_for_cache"}
    kwargs = {k: _normalise_argument(v) for k, v in sorted(task.kwargs.items()) if k not in ignore}
    args = tuple(_normalise_argument(a) for a in task.args)
    payload = {
        "func_name": task.func_name,
        "app_type": task.app_type,
        "args": args,
        "kwargs": kwargs,
    }
    return hash_obj(payload)


class Memoizer:
    """In-memory memoization table with optional checkpoint persistence."""

    def __init__(self, enabled: bool = True,
                 checkpoint_files: Optional[Iterable[str]] = None) -> None:
        self.enabled = enabled
        self._table: Dict[str, Any] = {}
        self._lock = threading.Lock()
        for path in checkpoint_files or []:
            self.load_checkpoint(path)

    def check(self, task: TaskRecord) -> Optional[Any]:
        """Return the cached result for ``task`` or ``None`` when absent.

        A cached *exception* is never replayed: failed results are not stored.
        """
        if not (self.enabled and task.memoize):
            return None
        task.hashsum = make_hash(task)
        with self._lock:
            if task.hashsum in self._table:
                logger.debug("memo hit for task %s (%s)", task.id, task.func_name)
                return self._table[task.hashsum]
        return None

    def update(self, task: TaskRecord, result: Any) -> None:
        """Record a successful result for ``task``."""
        if not (self.enabled and task.memoize):
            return
        if task.hashsum is None:
            task.hashsum = make_hash(task)
        with self._lock:
            self._table[task.hashsum] = result

    def __len__(self) -> int:
        return len(self._table)

    # -------------------------------------------------------- checkpointing

    def checkpoint(self, path: str) -> str:
        """Write the memo table to ``path`` (pickle).  Returns the path written."""
        os.makedirs(os.path.dirname(os.path.abspath(path)) or ".", exist_ok=True)
        with self._lock:
            snapshot = dict(self._table)
        with open(path, "wb") as handle:
            pickle.dump(snapshot, handle, protocol=4)
        logger.info("checkpointed %d memo entries to %s", len(snapshot), path)
        return path

    def load_checkpoint(self, path: str) -> int:
        """Merge a previously written checkpoint; returns the number of entries loaded."""
        if not os.path.exists(path):
            logger.warning("checkpoint file %s does not exist; ignoring", path)
            return 0
        with open(path, "rb") as handle:
            snapshot = pickle.load(handle)
        if not isinstance(snapshot, dict):
            raise ValueError(f"checkpoint file {path} does not contain a memo table")
        with self._lock:
            self._table.update(snapshot)
        return len(snapshot)
