"""Run directory management.

Every loaded DataFlowKernel gets a fresh, numbered run directory (``runinfo/000``,
``runinfo/001``, …) holding its logs, checkpoints, monitoring records and task
working directories — the same layout Parsl users are used to.
"""

from __future__ import annotations

import os


def make_rundir(base: str = "runinfo") -> str:
    """Create and return the next numbered run directory under ``base``."""
    os.makedirs(base, exist_ok=True)
    existing = []
    for entry in os.listdir(base):
        try:
            existing.append(int(entry))
        except ValueError:
            continue
    next_index = (max(existing) + 1) if existing else 0
    while True:
        candidate = os.path.join(base, f"{next_index:03d}")
        try:
            os.makedirs(candidate)
            return candidate
        except FileExistsError:
            next_index += 1
