"""The DataFlowKernel (DFK).

The DFK is the heart of the Parsl programming model: every app invocation is
submitted to it, it tracks dependencies between tasks through the futures passed
as arguments, launches tasks on executors once their dependencies are met,
handles retries, memoization and join apps, and exposes the familiar module
level ``load`` / ``dfk`` / ``clear`` entry points through
:class:`DataFlowKernelLoader`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.parsl.config import Config
from repro.parsl.data_provider.files import File
from repro.parsl.data_provider.staging import DataManager
from repro.parsl.dataflow.futures import AppFuture, DataFuture
from repro.parsl.dataflow.memoization import Memoizer
from repro.parsl.dataflow.rundirs import make_rundir
from repro.parsl.dataflow.states import States
from repro.parsl.dataflow.taskrecord import TaskRecord
from repro.parsl.errors import (
    ConfigurationError,
    DataFlowKernelShutdownError,
    DependencyError,
    JoinError,
    NoDataFlowKernelError,
)
from repro.parsl.monitoring.monitoring import MonitoringHub
from repro.utils.ids import RunIdGenerator
from repro.utils.logging_config import configure_logging, get_logger

logger = get_logger("parsl.dflow")


class DataFlowKernel:
    """Tracks tasks, resolves dependencies and dispatches work to executors."""

    def __init__(self, config: Config) -> None:
        if not config.executors:
            raise ConfigurationError("Config must define at least one executor")
        self.config = config
        self.run_dir = make_rundir(config.run_dir)
        configure_logging(run_dir=self.run_dir, stream=False)

        self.tasks: Dict[int, TaskRecord] = {}
        self._task_id = RunIdGenerator()
        self._tasks_lock = threading.Lock()
        self._shutdown = False

        self.memoizer = Memoizer(enabled=config.app_cache,
                                 checkpoint_files=config.checkpoint_files)
        self.data_manager = DataManager(config.staging_providers)
        self.monitoring: Optional[MonitoringHub] = None
        if config.monitoring:
            self.monitoring = MonitoringHub(run_dir=self.run_dir)
            self.monitoring.start()

        self.executors: Dict[str, Any] = {}
        labels = [executor.label for executor in config.executors]
        if len(labels) != len(set(labels)):
            raise ConfigurationError(f"executor labels must be unique, got {labels}")
        for executor in config.executors:
            executor.run_dir = self.run_dir
            executor.start()
            self.executors[executor.label] = executor
        logger.info("DataFlowKernel started in %s with executors %s",
                    self.run_dir, sorted(self.executors))

    # ------------------------------------------------------------ submission

    def submit(
        self,
        func: Callable,
        app_args: Tuple,
        app_kwargs: Dict[str, Any],
        app_type: str = "python",
        executor_label: str = "all",
        cache: bool = False,
        ignore_for_cache: Sequence[str] = (),
        join: bool = False,
    ) -> AppFuture:
        """Register one app invocation and return its :class:`AppFuture`."""
        if self._shutdown:
            raise DataFlowKernelShutdownError("DataFlowKernel has been cleaned up")

        task_id = self._task_id.next()
        record = TaskRecord(
            id=task_id,
            func=func,
            func_name=getattr(func, "__name__", repr(func)),
            args=tuple(app_args),
            kwargs=dict(app_kwargs),
            app_type="join" if join else app_type,
            executor=executor_label,
            retries_left=self.config.retries,
            memoize=cache,
            ignore_for_cache=tuple(ignore_for_cache),
        )
        app_future = AppFuture(record)
        record.app_future = app_future

        # Declared output files become DataFutures on the AppFuture.
        outputs = record.kwargs.get("outputs") or []
        normalized_outputs: List[File] = []
        for out in outputs:
            file_obj = out if isinstance(out, File) else File(out)
            normalized_outputs.append(file_obj)
            app_future.add_output(DataFuture(app_future, file_obj))
        if outputs:
            record.kwargs["outputs"] = normalized_outputs

        # Stage in File arguments (inputs kwarg and any File anywhere in args).
        inputs = record.kwargs.get("inputs") or []
        staged_inputs = []
        for item in inputs:
            if isinstance(item, File):
                staged_inputs.append(self.data_manager.stage_in(item))
            else:
                staged_inputs.append(item)
        if inputs:
            record.kwargs["inputs"] = staged_inputs

        with self._tasks_lock:
            self.tasks[task_id] = record
        record.transition(States.pending)
        if self.monitoring:
            self.monitoring.send_task_event(record)

        # Collect dependencies and register launch-on-completion callbacks.
        depends = self._gather_dependencies(record.args, record.kwargs)
        record.depends = depends
        logger.debug("task %s (%s) has %d dependencies", task_id, record.func_name, len(depends))

        if not depends:
            self._launch_if_ready(record)
        else:
            pending = {"count": len(depends)}
            pending_lock = threading.Lock()

            def _dependency_done(_fut: Future, rec: TaskRecord = record) -> None:
                with pending_lock:
                    pending["count"] -= 1
                    remaining = pending["count"]
                if remaining == 0:
                    self._launch_if_ready(rec)

            for dep in depends:
                dep.add_done_callback(_dependency_done)

        return app_future

    def _gather_dependencies(self, args: Tuple, kwargs: Dict[str, Any]) -> List[Future]:
        """Find every Future in the task's arguments (one level into containers)."""
        depends: List[Future] = []

        def check(value: Any) -> None:
            if isinstance(value, Future):
                depends.append(value)
            elif isinstance(value, (list, tuple, set)):
                for item in value:
                    if isinstance(item, Future):
                        depends.append(item)
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Future):
                        depends.append(item)

        for arg in args:
            check(arg)
        for value in kwargs.values():
            check(value)
        return depends

    # ------------------------------------------------------------- launching

    def _launch_if_ready(self, record: TaskRecord) -> None:
        """Launch ``record`` onto an executor, or fail it if a dependency failed.

        The executor submission (and the completion callback registration) happen
        *outside* the task lock: a fast-failing task's future can be complete by
        the time the callback is attached, which would re-enter this method from
        the same call stack during a retry and deadlock on the non-reentrant lock.
        """
        with record.lock:
            if record.status not in (States.pending, States.retry):
                return

            failed_deps = [d for d in record.depends if d.done() and d.exception() is not None]
            if failed_deps:
                record.transition(States.dep_fail)
                error = DependencyError([d.exception() for d in failed_deps], record.id)
                record.app_future.set_exception(error)
                self._record_event(record)
                return

            args, kwargs = self._sanitize_arguments(record)

            memo_result = self.memoizer.check(record)
            if memo_result is not None:
                record.from_memo = True
                record.transition(States.memo_done)
                record.app_future.set_result(memo_result)
                self._record_event(record)
                return

            try:
                executor = self._executor_for(record.executor)
            except Exception as exc:
                record.transition(States.failed)
                record.app_future.set_exception(exc)
                self._record_event(record)
                return
            record.transition(States.launched)
            self._record_event(record)

        try:
            exec_future = executor.submit(record.func, record.resource_spec, *args, **kwargs)
        except Exception as exc:
            logger.exception("executor submission failed for task %s", record.id)
            record.transition(States.failed)
            record.app_future.set_exception(exc)
            self._record_event(record)
            return
        record.executor_future = exec_future
        exec_future.add_done_callback(lambda fut, rec=record: self._handle_exec_done(rec, fut))

    def _executor_for(self, label: str):
        if label == "all":
            return next(iter(self.executors.values()))
        if label not in self.executors:
            raise ConfigurationError(
                f"app requests executor {label!r} but only {sorted(self.executors)} are configured"
            )
        return self.executors[label]

    def _sanitize_arguments(self, record: TaskRecord) -> Tuple[Tuple, Dict[str, Any]]:
        """Replace futures in the arguments with their concrete values.

        Identity-preserving: containers holding no futures pass through as
        the caller's objects rather than copies — callers may legitimately
        share a mutable argument with the execution side (e.g. the CWL job
        cache's per-call outcome note), and rebuilding untouched containers
        was wasted work anyway.
        """

        def resolve(value: Any) -> Any:
            if isinstance(value, DataFuture):
                return value.file_obj
            if isinstance(value, Future):
                return value.result()
            if isinstance(value, list):
                resolved = [resolve(v) for v in value]
                return value if all(n is o for n, o in zip(resolved, value)) else resolved
            if isinstance(value, tuple):
                resolved_items = [resolve(v) for v in value]
                return value if all(n is o for n, o in zip(resolved_items, value)) \
                    else tuple(resolved_items)
            if isinstance(value, dict):
                resolved_map = {k: resolve(v) for k, v in value.items()}
                return value if all(resolved_map[k] is v for k, v in value.items()) \
                    else resolved_map
            return value

        args = tuple(resolve(a) for a in record.args)
        kwargs = {k: resolve(v) for k, v in record.kwargs.items()}
        return args, kwargs

    # ------------------------------------------------------------ completion

    def _handle_exec_done(self, record: TaskRecord, exec_future: Future) -> None:
        exc = exec_future.exception()
        if exc is not None:
            self._handle_failure(record, exc)
            return

        result = exec_future.result()
        if record.app_type == "join":
            self._handle_join(record, result)
            return
        self._finalize_success(record, result)

    def _handle_failure(self, record: TaskRecord, exc: BaseException) -> None:
        record.fail_count += 1
        record.fail_history.append(f"{type(exc).__name__}: {exc}")
        if record.retries_left > 0:
            record.retries_left -= 1
            logger.info("task %s failed (%s); retrying (%d retries left)",
                        record.id, exc, record.retries_left)
            record.transition(States.retry)
            self._record_event(record)
            self._launch_if_ready(record)
            return
        record.transition(States.failed)
        record.app_future.set_exception(exc)
        self._record_event(record)

    def _handle_join(self, record: TaskRecord, result: Any) -> None:
        """A join app returned; wait for its inner future(s) before finishing."""
        record.transition(States.joining)
        self._record_event(record)

        inner_futures: List[Future]
        if isinstance(result, Future):
            inner_futures = [result]
        elif isinstance(result, (list, tuple)) and all(isinstance(r, Future) for r in result):
            inner_futures = list(result)
        else:
            # Not a future at all: treat as a plain result (matches Parsl >=2023 semantics
            # of allowing join apps to return plain values).
            self._finalize_success(record, result)
            return

        record.join_future = result
        pending = {"count": len(inner_futures)}
        lock = threading.Lock()

        def _inner_done(_fut: Future) -> None:
            with lock:
                pending["count"] -= 1
                remaining = pending["count"]
            if remaining > 0:
                return
            errors = [f.exception() for f in inner_futures if f.exception() is not None]
            if errors:
                record.transition(States.failed)
                record.app_future.set_exception(JoinError(errors, record.id))
                self._record_event(record)
            elif isinstance(result, Future):
                self._finalize_success(record, inner_futures[0].result())
            else:
                self._finalize_success(record, [f.result() for f in inner_futures])

        for fut in inner_futures:
            fut.add_done_callback(_inner_done)

    def _finalize_success(self, record: TaskRecord, result: Any) -> None:
        self.memoizer.update(record, result)
        record.transition(States.exec_done)
        record.app_future.set_result(result)
        self._record_event(record)

    def _record_event(self, record: TaskRecord) -> None:
        if self.monitoring:
            self.monitoring.send_task_event(record)

    # ------------------------------------------------------------- lifecycle

    def wait_for_current_tasks(self, timeout: Optional[float] = None) -> None:
        """Block until every task submitted so far has reached a final state."""
        with self._tasks_lock:
            futures = [t.app_future for t in self.tasks.values() if t.app_future is not None]
        for future in futures:
            if future is None:
                continue
            try:
                future.exception(timeout)
            except TimeoutError:
                raise
            except Exception:
                # Task failures are reported through the future itself; waiting
                # must not raise so that callers can inspect all tasks.
                pass

    def checkpoint(self, path: Optional[str] = None) -> str:
        """Write the memoization table to disk and return the checkpoint path."""
        path = path or os.path.join(self.run_dir, "checkpoint", "tasks.pkl")
        return self.memoizer.checkpoint(path)

    def task_summary(self) -> Dict[str, int]:
        """Counts of tasks per state name (used by monitoring and tests)."""
        summary: Dict[str, int] = {}
        with self._tasks_lock:
            for record in self.tasks.values():
                summary[record.status.name] = summary.get(record.status.name, 0) + 1
        return summary

    def cleanup(self) -> None:
        """Shut down executors and monitoring.  Idempotent."""
        if self._shutdown:
            return
        self.wait_for_current_tasks()
        self._shutdown = True
        if self.config.checkpoint_mode == "dfk_exit" and self.config.app_cache:
            try:
                self.checkpoint()
            except Exception:  # pragma: no cover - checkpointing is best effort
                logger.exception("checkpoint at exit failed")
        for executor in self.executors.values():
            try:
                executor.shutdown()
            except Exception:  # pragma: no cover - defensive
                logger.exception("error shutting down executor %s", executor.label)
        if self.monitoring:
            self.monitoring.close()
        logger.info("DataFlowKernel in %s cleaned up", self.run_dir)

    def __enter__(self) -> "DataFlowKernel":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.cleanup()


class DataFlowKernelLoader:
    """Module-level singleton management: ``load`` / ``dfk`` / ``clear``.

    Mirrors ``parsl.load()`` semantics: loading twice without clearing is an
    error, and apps submitted with no loaded DFK raise
    :class:`~repro.parsl.errors.NoDataFlowKernelError`.
    """

    _dfk: Optional[DataFlowKernel] = None
    _lock = threading.Lock()

    @classmethod
    def load(cls, config: Optional[Config] = None) -> DataFlowKernel:
        with cls._lock:
            if cls._dfk is not None:
                raise ConfigurationError(
                    "A DataFlowKernel is already loaded; call clear() before load()"
                )
            cls._dfk = DataFlowKernel(config or Config.default())
            return cls._dfk

    @classmethod
    def dfk(cls) -> DataFlowKernel:
        if cls._dfk is None:
            raise NoDataFlowKernelError()
        return cls._dfk

    @classmethod
    def clear(cls) -> None:
        with cls._lock:
            if cls._dfk is not None:
                cls._dfk.cleanup()
                cls._dfk = None

    @classmethod
    def wait_for_current_tasks(cls) -> None:
        cls.dfk().wait_for_current_tasks()
