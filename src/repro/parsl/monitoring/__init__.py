"""Lightweight task monitoring (event log per run directory)."""

from repro.parsl.monitoring.monitoring import MonitoringHub, TaskEvent

__all__ = ["MonitoringHub", "TaskEvent"]
