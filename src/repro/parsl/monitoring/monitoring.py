"""Task event monitoring.

Parsl's MonitoringHub records task state transitions to a database; here the
hub appends JSON-lines events to ``monitoring.jsonl`` inside the run directory
and keeps an in-memory copy for programmatic queries (used by tests and by the
benchmark harness to report per-task overheads).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parsl.dataflow.taskrecord import TaskRecord


@dataclass(frozen=True)
class TaskEvent:
    """One task state transition."""

    timestamp: float
    task_id: int
    func_name: str
    app_type: str
    executor: str
    status: str
    fail_count: int
    from_memo: bool


class MonitoringHub:
    """Collects :class:`TaskEvent` records and appends them to a JSONL file."""

    def __init__(self, run_dir: str, filename: str = "monitoring.jsonl") -> None:
        self.run_dir = run_dir
        self.path = os.path.join(run_dir, filename)
        self._events: List[TaskEvent] = []
        self._lock = threading.Lock()
        self._handle = None

    def start(self) -> None:
        os.makedirs(self.run_dir, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def send_task_event(self, record: "TaskRecord") -> None:
        event = TaskEvent(
            timestamp=time.time(),
            task_id=record.id,
            func_name=record.func_name,
            app_type=record.app_type,
            executor=record.executor,
            status=record.status.name,
            fail_count=record.fail_count,
            from_memo=record.from_memo,
        )
        with self._lock:
            self._events.append(event)
            if self._handle is not None:
                self._handle.write(json.dumps(asdict(event)) + "\n")
                self._handle.flush()

    # ---------------------------------------------------------------- queries

    def events(self, task_id: Optional[int] = None) -> List[TaskEvent]:
        with self._lock:
            if task_id is None:
                return list(self._events)
            return [e for e in self._events if e.task_id == task_id]

    def state_counts(self) -> Dict[str, int]:
        """Latest state per task, aggregated into counts."""
        latest: Dict[int, TaskEvent] = {}
        with self._lock:
            for event in self._events:
                latest[event.task_id] = event
        counts: Dict[str, int] = {}
        for event in latest.values():
            counts[event.status] = counts.get(event.status, 0) + 1
        return counts

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    @staticmethod
    def load_events(path: str) -> List[TaskEvent]:
        """Read events back from a monitoring file (for offline analysis)."""
        events: List[TaskEvent] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                events.append(TaskEvent(**json.loads(line)))
        return events
