"""Launchers: wrap a worker command for execution across a block's nodes.

When a provider's block spans several nodes, the worker-pool command must be
started once per node (or once per rank).  Launchers encapsulate that wrapping:
``SrunLauncher`` produces an ``srun`` invocation, ``MpiExecLauncher`` an
``mpiexec`` one, and ``SingleNodeLauncher`` a plain invocation.  In this
repository blocks execute locally, so the launcher output is recorded on the
block (and asserted in tests) rather than handed to a real scheduler, but the
interface and command formats mirror Parsl's.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class Launcher(ABC):
    """Interface: wrap a single-node worker command for a multi-node block."""

    @abstractmethod
    def __call__(self, command: str, tasks_per_node: int, nodes_per_block: int) -> str:
        """Return the wrapped command line."""


class SimpleLauncher(Launcher):
    """Run the command exactly once, unchanged (the provider handles placement)."""

    def __call__(self, command: str, tasks_per_node: int, nodes_per_block: int) -> str:
        return command


class SingleNodeLauncher(Launcher):
    """Run ``tasks_per_node`` copies of the command on one node, in the background."""

    def __call__(self, command: str, tasks_per_node: int, nodes_per_block: int) -> str:
        lines = ["set -e"]
        for rank in range(tasks_per_node):
            lines.append(f"PARSL_RANK={rank} {command} &")
        lines.append("wait")
        return "\n".join(lines)


class SrunLauncher(Launcher):
    """Wrap the command in ``srun`` so Slurm fans it out across the allocation."""

    def __init__(self, overrides: str = "") -> None:
        self.overrides = overrides

    def __call__(self, command: str, tasks_per_node: int, nodes_per_block: int) -> str:
        total = tasks_per_node * nodes_per_block
        overrides = f" {self.overrides}" if self.overrides else ""
        return (
            f"srun --ntasks={total} --ntasks-per-node={tasks_per_node} "
            f"--nodes={nodes_per_block}{overrides} {command}"
        )


class MpiExecLauncher(Launcher):
    """Wrap the command in ``mpiexec`` (PBS-style clusters)."""

    def __init__(self, bind_cmd: str = "--cpu-bind", overrides: str = "") -> None:
        self.bind_cmd = bind_cmd
        self.overrides = overrides

    def __call__(self, command: str, tasks_per_node: int, nodes_per_block: int) -> str:
        total = tasks_per_node * nodes_per_block
        overrides = f" {self.overrides}" if self.overrides else ""
        return (
            f"mpiexec -n {total} --ppn {tasks_per_node} {self.bind_cmd}{overrides} {command}"
        )


__all__ = [
    "Launcher",
    "MpiExecLauncher",
    "SimpleLauncher",
    "SingleNodeLauncher",
    "SrunLauncher",
]
