"""Slurm provider backed by the simulated cluster.

The real Parsl ``SlurmProvider`` writes an sbatch script that launches the
worker pool; here a block is represented as a *placeholder job* submitted to the
:class:`~repro.cluster.scheduler.SimulatedSlurmCluster`.  The placeholder's
payload simply holds the allocation (it waits on an event) until the block is
cancelled, so the cluster's per-node core accounting reflects the pilot job
exactly as a real batch system's would.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.cluster.jobs import JobSpec, JobState
from repro.cluster.scheduler import SimulatedSlurmCluster, default_cluster
from repro.parsl.errors import SubmitException
from repro.parsl.providers.base import Block, ExecutionProvider, ProviderJobState
from repro.utils.ids import RunIdGenerator

_STATE_MAP = {
    JobState.PENDING: ProviderJobState.PENDING,
    JobState.RUNNING: ProviderJobState.RUNNING,
    JobState.COMPLETED: ProviderJobState.COMPLETED,
    JobState.FAILED: ProviderJobState.FAILED,
    JobState.CANCELLED: ProviderJobState.CANCELLED,
    JobState.TIMEOUT: ProviderJobState.FAILED,
}


class SlurmProvider(ExecutionProvider):
    """Acquire blocks from a (simulated) Slurm cluster."""

    label = "slurm"

    def __init__(
        self,
        nodes_per_block: int = 1,
        cores_per_node: int = 48,
        init_blocks: int = 1,
        min_blocks: int = 0,
        max_blocks: int = 1,
        walltime: str = "00:30:00",
        partition: str = "normal",
        cluster: Optional[SimulatedSlurmCluster] = None,
        allocation_timeout_s: float = 30.0,
    ) -> None:
        super().__init__(
            nodes_per_block=nodes_per_block,
            cores_per_node=cores_per_node,
            init_blocks=init_blocks,
            min_blocks=min_blocks,
            max_blocks=max_blocks,
            walltime=walltime,
        )
        self.partition = partition
        self.cluster = cluster or default_cluster()
        self.allocation_timeout_s = allocation_timeout_s
        self._ids = RunIdGenerator(start=1)
        self._release_events: Dict[str, threading.Event] = {}
        self._job_ids: Dict[str, int] = {}

    def submit_block(self, job_name: str = "block") -> Block:
        release = threading.Event()

        def hold_allocation() -> str:
            # The placeholder pilot job: occupy the allocation until released.
            release.wait()
            return "released"

        spec = JobSpec(
            name=f"{job_name}-{self.partition}",
            callable_payload=hold_allocation,
            nodes=self.nodes_per_block,
            cores_per_node=self.cores_per_node,
            walltime_s=self.parse_walltime(self.walltime),
        )
        job_id = self.cluster.sbatch(spec)

        # Wait for the scheduler to place the pilot job so we know its nodes.
        deadline_event = threading.Event()
        waited = 0.0
        poll = 0.01
        while waited < self.allocation_timeout_s:
            job = self.cluster.sacct(job_id)
            if job.state == JobState.RUNNING:
                break
            if job.state.is_terminal:
                raise SubmitException(f"pilot job {job_id} ended before starting: {job.state}")
            deadline_event.wait(poll)
            waited += poll
        else:
            self.cluster.scancel(job_id)
            raise SubmitException(
                f"pilot job {job_id} was not scheduled within {self.allocation_timeout_s}s "
                f"(cluster has {self.cluster.inventory.free_cores} free cores)"
            )

        block_id = f"slurm-{self._ids.next()}"
        self._release_events[block_id] = release
        self._job_ids[block_id] = job_id
        job = self.cluster.sacct(job_id)
        return Block(
            block_id=block_id,
            job_id=str(job_id),
            node_names=list(job.assigned_nodes),
            cores_per_node=self.cores_per_node,
            metadata={"partition": self.partition, "job_name": job_name},
        )

    def status(self, block: Block) -> ProviderJobState:
        job_id = self._job_ids.get(block.block_id)
        if job_id is None:
            return ProviderJobState.COMPLETED
        return _STATE_MAP[self.cluster.sacct(job_id).state]

    def cancel(self, block: Block) -> bool:
        release = self._release_events.get(block.block_id)
        job_id = self._job_ids.get(block.block_id)
        if release is None or job_id is None:
            return False
        release.set()  # let the placeholder job finish and free the nodes
        job = self.cluster.sacct(job_id)
        if not job.state.is_terminal:
            job.wait(timeout=5)
        return True
