"""PBS Pro provider.

Functionally identical to the Slurm provider (it uses the same simulated batch
scheduler), but exposes PBS-flavoured configuration — queue names and a
``select`` statement — to demonstrate that the executor/provider split lets the
same workflow run against a different resource manager with only configuration
changes (one of the portability arguments in the paper's introduction).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.scheduler import SimulatedSlurmCluster
from repro.parsl.providers.slurm import SlurmProvider


class PBSProProvider(SlurmProvider):
    """Acquire blocks from a (simulated) PBS Pro cluster."""

    label = "pbspro"

    def __init__(
        self,
        nodes_per_block: int = 1,
        cores_per_node: int = 48,
        init_blocks: int = 1,
        min_blocks: int = 0,
        max_blocks: int = 1,
        walltime: str = "00:30:00",
        queue: str = "workq",
        cluster: Optional[SimulatedSlurmCluster] = None,
        allocation_timeout_s: float = 30.0,
    ) -> None:
        super().__init__(
            nodes_per_block=nodes_per_block,
            cores_per_node=cores_per_node,
            init_blocks=init_blocks,
            min_blocks=min_blocks,
            max_blocks=max_blocks,
            walltime=walltime,
            partition=queue,
            cluster=cluster,
            allocation_timeout_s=allocation_timeout_s,
        )
        self.queue = queue

    @property
    def select_statement(self) -> str:
        """The PBS ``-l select=`` statement equivalent to this provider's block shape."""
        return f"select={self.nodes_per_block}:ncpus={self.cores_per_node}"
