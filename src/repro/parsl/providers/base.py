"""The provider interface.

In the pilot-job model (paper §II-B) an executor does not talk to the batch
scheduler per task; instead it asks a *provider* for a **block** of resources —
one batch job spanning one or more nodes — and runs its own workers inside that
block.  Providers abstract over batch systems (Slurm, PBS), clouds and container
orchestrators (Kubernetes), which is what lets the same Parsl program move from
a laptop to a supercomputer by swapping configuration only.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class ProviderJobState(str, enum.Enum):
    """States a provider job (block) can be in."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def is_terminal(self) -> bool:
        return self in (ProviderJobState.COMPLETED, ProviderJobState.FAILED, ProviderJobState.CANCELLED)


@dataclass
class Block:
    """One granted block of resources.

    Attributes
    ----------
    block_id:
        Identifier assigned by the provider (unique within the provider).
    job_id:
        The underlying batch-system job id (or synthetic id for local blocks).
    node_names:
        Names of the nodes granted to this block.
    cores_per_node:
        Cores available on each node of the block.
    metadata:
        Provider-specific extras (queue name, namespace, …).
    """

    block_id: str
    job_id: str
    node_names: List[str]
    cores_per_node: int
    metadata: Dict[str, str] = field(default_factory=dict)

    @property
    def total_cores(self) -> int:
        return len(self.node_names) * self.cores_per_node


class ExecutionProvider(ABC):
    """Abstract base class for providers."""

    label: str = "provider"

    def __init__(
        self,
        nodes_per_block: int = 1,
        cores_per_node: int = 1,
        init_blocks: int = 1,
        min_blocks: int = 0,
        max_blocks: int = 1,
        walltime: str = "00:30:00",
    ) -> None:
        if nodes_per_block < 1:
            raise ValueError("nodes_per_block must be >= 1")
        if cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        if not (min_blocks <= init_blocks <= max_blocks):
            raise ValueError(
                f"block bounds must satisfy min <= init <= max, got "
                f"{min_blocks} <= {init_blocks} <= {max_blocks}"
            )
        self.nodes_per_block = nodes_per_block
        self.cores_per_node = cores_per_node
        self.init_blocks = init_blocks
        self.min_blocks = min_blocks
        self.max_blocks = max_blocks
        self.walltime = walltime

    @staticmethod
    def parse_walltime(walltime: str) -> float:
        """Convert an ``HH:MM:SS`` walltime string into seconds."""
        parts = walltime.split(":")
        if len(parts) != 3:
            raise ValueError(f"walltime must be HH:MM:SS, got {walltime!r}")
        hours, minutes, seconds = (int(p) for p in parts)
        return hours * 3600 + minutes * 60 + seconds

    @abstractmethod
    def submit_block(self, job_name: str = "block") -> Block:
        """Request one block of resources; blocks until the block is usable."""

    @abstractmethod
    def status(self, block: Block) -> ProviderJobState:
        """Current state of a block."""

    @abstractmethod
    def cancel(self, block: Block) -> bool:
        """Release a block.  Returns True if the underlying job was cancelled."""

    def cancel_all(self, blocks: List[Block]) -> None:
        for block in blocks:
            try:
                self.cancel(block)
            except Exception:  # pragma: no cover - defensive cleanup
                pass

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} nodes_per_block={self.nodes_per_block} "
            f"cores_per_node={self.cores_per_node} blocks=[{self.min_blocks},{self.max_blocks}]>"
        )
