"""Execution providers: acquire blocks of compute resources for pilot-job executors."""

from repro.parsl.providers.base import Block, ExecutionProvider, ProviderJobState
from repro.parsl.providers.local import LocalProvider
from repro.parsl.providers.slurm import SlurmProvider
from repro.parsl.providers.pbs import PBSProProvider
from repro.parsl.providers.kubernetes import KubernetesProvider

__all__ = [
    "Block",
    "ExecutionProvider",
    "KubernetesProvider",
    "LocalProvider",
    "PBSProProvider",
    "ProviderJobState",
    "SlurmProvider",
]
