"""Kubernetes provider (simulated).

Parsl's KubernetesProvider starts worker pods; here a "pod" is a synthetic node
name with a CPU limit, granted immediately (clusters autoscale, so there is no
queue to model).  The provider exists to exercise the provider interface with a
non-batch resource manager and to show the configuration shape in examples.
"""

from __future__ import annotations

from typing import Dict

from repro.parsl.providers.base import Block, ExecutionProvider, ProviderJobState
from repro.utils.ids import RunIdGenerator


class KubernetesProvider(ExecutionProvider):
    """Provide blocks as groups of simulated pods."""

    label = "kubernetes"

    def __init__(
        self,
        pods_per_block: int = 1,
        cores_per_pod: int = 4,
        init_blocks: int = 1,
        min_blocks: int = 0,
        max_blocks: int = 4,
        namespace: str = "default",
        image: str = "python:3.11",
        walltime: str = "24:00:00",
    ) -> None:
        super().__init__(
            nodes_per_block=pods_per_block,
            cores_per_node=cores_per_pod,
            init_blocks=init_blocks,
            min_blocks=min_blocks,
            max_blocks=max_blocks,
            walltime=walltime,
        )
        self.namespace = namespace
        self.image = image
        self._ids = RunIdGenerator(start=1)
        self._blocks: Dict[str, ProviderJobState] = {}

    def submit_block(self, job_name: str = "block") -> Block:
        block_id = f"k8s-{self._ids.next()}"
        pods = [f"{self.namespace}/pod-{block_id}-{i}" for i in range(self.nodes_per_block)]
        self._blocks[block_id] = ProviderJobState.RUNNING
        return Block(
            block_id=block_id,
            job_id=block_id,
            node_names=pods,
            cores_per_node=self.cores_per_node,
            metadata={"namespace": self.namespace, "image": self.image, "job_name": job_name},
        )

    def status(self, block: Block) -> ProviderJobState:
        return self._blocks.get(block.block_id, ProviderJobState.COMPLETED)

    def cancel(self, block: Block) -> bool:
        if self._blocks.get(block.block_id) == ProviderJobState.RUNNING:
            self._blocks[block.block_id] = ProviderJobState.CANCELLED
            return True
        return False
