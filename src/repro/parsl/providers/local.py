"""Local provider: blocks are slices of the current machine."""

from __future__ import annotations

import os
from typing import Dict

from repro.parsl.providers.base import Block, ExecutionProvider, ProviderJobState
from repro.utils.ids import RunIdGenerator


class LocalProvider(ExecutionProvider):
    """Provide blocks on the local host.

    No queueing or placement is involved: every requested block is immediately
    granted, with ``nodes_per_block`` synthetic node names all mapping to the
    local host.  ``cores_per_node`` defaults to the machine's CPU count.
    """

    label = "local"

    def __init__(
        self,
        nodes_per_block: int = 1,
        cores_per_node: int | None = None,
        init_blocks: int = 1,
        min_blocks: int = 0,
        max_blocks: int = 1,
        walltime: str = "00:30:00",
    ) -> None:
        super().__init__(
            nodes_per_block=nodes_per_block,
            cores_per_node=cores_per_node or (os.cpu_count() or 1),
            init_blocks=init_blocks,
            min_blocks=min_blocks,
            max_blocks=max_blocks,
            walltime=walltime,
        )
        self._ids = RunIdGenerator(start=1)
        self._blocks: Dict[str, ProviderJobState] = {}

    def submit_block(self, job_name: str = "block") -> Block:
        block_id = f"local-{self._ids.next()}"
        nodes = [f"localhost/{block_id}/{i}" for i in range(self.nodes_per_block)]
        self._blocks[block_id] = ProviderJobState.RUNNING
        return Block(
            block_id=block_id,
            job_id=block_id,
            node_names=nodes,
            cores_per_node=self.cores_per_node,
            metadata={"job_name": job_name},
        )

    def status(self, block: Block) -> ProviderJobState:
        return self._blocks.get(block.block_id, ProviderJobState.COMPLETED)

    def cancel(self, block: Block) -> bool:
        if self._blocks.get(block.block_id) == ProviderJobState.RUNNING:
            self._blocks[block.block_id] = ProviderJobState.CANCELLED
            return True
        return False
