"""Data staging framework.

Staging providers translate :class:`~repro.parsl.data_provider.files.File`
objects into locally accessible paths before an app runs, and push outputs back
afterwards.  Only local files matter for the paper's experiments, so the
default chain contains :class:`NoOpStaging` (local ``file://`` URLs) and
:class:`HTTPSDownloadStaging` is included as an example of a real provider with
the same interface (it is only exercised in tests with ``file://`` fallbacks,
since the environment is offline).
"""

from __future__ import annotations

import os
import shutil
from abc import ABC, abstractmethod
from typing import List, Optional

from repro.parsl.data_provider.files import File
from repro.utils.logging_config import get_logger

logger = get_logger("parsl.staging")


class Staging(ABC):
    """Interface for staging providers."""

    @abstractmethod
    def can_stage_in(self, file: File) -> bool:
        """Whether this provider understands ``file``'s scheme for input staging."""

    def can_stage_out(self, file: File) -> bool:
        """Whether this provider understands ``file``'s scheme for output staging."""
        return self.can_stage_in(file)

    @abstractmethod
    def stage_in(self, file: File, working_dir: Optional[str]) -> File:
        """Make ``file`` locally available; returns the (possibly updated) File."""

    def stage_out(self, file: File, working_dir: Optional[str]) -> File:
        """Publish a locally produced output file; default is a no-op."""
        return file


class NoOpStaging(Staging):
    """Staging for local ``file://`` URLs: the path is already accessible."""

    def can_stage_in(self, file: File) -> bool:
        return file.scheme in ("file", "")

    def stage_in(self, file: File, working_dir: Optional[str]) -> File:
        file.local_path = file.path
        return file


class CopyStaging(Staging):
    """Copy local files into the task working directory.

    This mirrors what remote executors do with shared filesystems and gives the
    CWL runners an isolated working directory per task.
    """

    def can_stage_in(self, file: File) -> bool:
        return file.scheme in ("file", "")

    def stage_in(self, file: File, working_dir: Optional[str]) -> File:
        if working_dir is None:
            file.local_path = file.path
            return file
        os.makedirs(working_dir, exist_ok=True)
        destination = os.path.join(working_dir, file.filename)
        if os.path.abspath(file.path) != os.path.abspath(destination):
            shutil.copy2(file.path, destination)
        file.local_path = destination
        return file

    def stage_out(self, file: File, working_dir: Optional[str]) -> File:
        if working_dir is None:
            return file
        produced = os.path.join(working_dir, file.filename)
        if os.path.exists(produced) and os.path.abspath(produced) != os.path.abspath(file.path):
            os.makedirs(os.path.dirname(os.path.abspath(file.path)) or ".", exist_ok=True)
            shutil.copy2(produced, file.path)
        file.local_path = file.path
        return file


class HTTPSDownloadStaging(Staging):
    """Download ``http(s)://`` URLs into the working directory (requires network)."""

    def can_stage_in(self, file: File) -> bool:
        return file.scheme in ("http", "https")

    def can_stage_out(self, file: File) -> bool:
        return False

    def stage_in(self, file: File, working_dir: Optional[str]) -> File:  # pragma: no cover - offline
        import urllib.request

        destination_dir = working_dir or "."
        os.makedirs(destination_dir, exist_ok=True)
        destination = os.path.join(destination_dir, file.filename)
        urllib.request.urlretrieve(file.url, destination)
        file.local_path = destination
        return file


class DataManager:
    """Applies the first staging provider that accepts each file.

    The DataFlowKernel owns one DataManager and calls :meth:`stage_in` for every
    File argument of every task before submission.
    """

    def __init__(self, staging_providers: Optional[List[Staging]] = None) -> None:
        self.staging_providers = staging_providers or [NoOpStaging()]

    def stage_in(self, file: File, working_dir: Optional[str] = None) -> File:
        for provider in self.staging_providers:
            if provider.can_stage_in(file):
                return provider.stage_in(file, working_dir)
        logger.warning("no staging provider for %r; passing through", file)
        file.local_path = file.path
        return file

    def stage_out(self, file: File, working_dir: Optional[str] = None) -> File:
        for provider in self.staging_providers:
            if provider.can_stage_out(file):
                return provider.stage_out(file, working_dir)
        return file
