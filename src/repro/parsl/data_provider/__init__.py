"""Data management for the Parsl-like library: the ``File`` abstraction and staging."""

from repro.parsl.data_provider.files import File
from repro.parsl.data_provider.staging import DataManager, NoOpStaging, Staging

__all__ = ["DataManager", "File", "NoOpStaging", "Staging"]
