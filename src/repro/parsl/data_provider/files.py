"""The Parsl ``File`` abstraction.

A :class:`File` names a piece of data independently of where an app executes.
In full Parsl, Files can carry remote schemes (``globus://``, ``https://`` …) and
are translated by staging providers; here local ``file://`` paths are the common
case, but the URL parsing, scheme handling and equality semantics are kept so
that the CWL bridge (which converts CWL ``File`` inputs into Parsl Files, §III-A
of the paper) behaves like the original.
"""

from __future__ import annotations

import os
from typing import Optional
from urllib.parse import urlparse


class File:
    """A descriptor for a file used as an app input or output.

    Parameters
    ----------
    url:
        Either a plain filesystem path or a URL with a scheme
        (``file://host/path``, ``https://...``).  Plain paths are treated as the
        ``file`` scheme.
    """

    def __init__(self, url: str) -> None:
        if isinstance(url, File):  # idempotent construction
            url = url.url
        if not isinstance(url, (str, os.PathLike)):
            raise TypeError(f"File url must be a string or path, got {type(url).__name__}")
        self.url = os.fspath(url)
        parsed = urlparse(self.url)
        self.scheme = parsed.scheme if parsed.scheme else "file"
        self.netloc = parsed.netloc
        self.path = parsed.path if parsed.scheme else self.url
        # local_path is set by staging providers once the file is available locally.
        self.local_path: Optional[str] = None

    @property
    def filepath(self) -> str:
        """The path apps should use to access the file on the execution side."""
        if self.local_path is not None:
            return self.local_path
        if self.scheme in ("file", ""):
            return self.path
        raise ValueError(
            f"File {self.url!r} has scheme {self.scheme!r} and no local_path; it must be staged first"
        )

    @property
    def filename(self) -> str:
        """Base name of the file."""
        return os.path.basename(self.path)

    def is_remote(self) -> bool:
        """Whether this file needs staging before local access."""
        return self.scheme not in ("file", "")

    def exists(self) -> bool:
        """Whether the file currently exists on the local filesystem."""
        try:
            return os.path.exists(self.filepath)
        except ValueError:
            return False

    def size(self) -> int:
        """Size in bytes of the local file."""
        return os.stat(self.filepath).st_size

    def cleancopy(self) -> "File":
        """Return a fresh File with the same URL but no staging state."""
        return File(self.url)

    def __fspath__(self) -> str:
        return self.filepath

    def __str__(self) -> str:
        return self.filepath if self.scheme == "file" else self.url

    def __repr__(self) -> str:
        return f"<File {self.url!r} scheme={self.scheme}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, File):
            return NotImplemented
        return self.url == other.url

    def __hash__(self) -> int:
        return hash(("repro.parsl.File", self.url))
