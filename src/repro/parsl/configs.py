"""Ready-made configurations.

Parsl ships example configurations (``parsl.configs.local_threads`` etc.) and
the paper's listings load them directly.  These factories provide the same
convenience for this re-implementation and are also the building blocks used by
:mod:`repro.core.yaml_config` when translating TaPS-style YAML configuration
files into live :class:`~repro.parsl.config.Config` objects.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.scheduler import SimulatedSlurmCluster
from repro.parsl.config import Config
from repro.parsl.executors.high_throughput.executor import HighThroughputExecutor
from repro.parsl.executors.processes import ProcessPoolExecutor
from repro.parsl.executors.threads import ThreadPoolExecutor
from repro.parsl.executors.workqueue import WorkQueueStyleExecutor
from repro.parsl.providers.local import LocalProvider
from repro.parsl.providers.slurm import SlurmProvider


def thread_config(max_threads: int = 8, label: str = "threads", **config_kwargs) -> Config:
    """Single-node thread-pool configuration (``parsl.configs.local_threads`` analogue)."""
    return Config(executors=[ThreadPoolExecutor(label=label, max_threads=max_threads)],
                  **config_kwargs)


def local_process_config(max_workers: int = 4, label: str = "processes", **config_kwargs) -> Config:
    """Single-node process-pool configuration."""
    return Config(executors=[ProcessPoolExecutor(label=label, max_workers=max_workers)],
                  **config_kwargs)


def workqueue_config(total_cores: int = 8, label: str = "workqueue", **config_kwargs) -> Config:
    """Resource-aware WorkQueue-style configuration."""
    return Config(executors=[WorkQueueStyleExecutor(label=label, total_cores=total_cores)],
                  **config_kwargs)


def htex_local_config(workers: int = 4, label: str = "htex_local", **config_kwargs) -> Config:
    """HighThroughputExecutor on the local machine (one block, N workers)."""
    provider = LocalProvider(nodes_per_block=1, cores_per_node=workers,
                             init_blocks=1, max_blocks=1)
    executor = HighThroughputExecutor(label=label, provider=provider,
                                      max_workers_per_node=workers)
    return Config(executors=[executor], **config_kwargs)


def htex_config(
    nodes: int = 3,
    workers_per_node: int = 8,
    cores_per_node: int = 48,
    label: str = "htex",
    cluster: Optional[SimulatedSlurmCluster] = None,
    **config_kwargs,
) -> Config:
    """HighThroughputExecutor over a (simulated) Slurm allocation.

    This is the configuration used to reproduce the paper's three-node
    experiment (Fig. 1a): one pilot block spanning ``nodes`` nodes, with
    ``workers_per_node`` worker processes per node.
    """
    provider = SlurmProvider(
        nodes_per_block=nodes,
        cores_per_node=cores_per_node,
        init_blocks=1,
        max_blocks=1,
        cluster=cluster,
    )
    executor = HighThroughputExecutor(
        label=label,
        provider=provider,
        max_workers_per_node=workers_per_node,
    )
    return Config(executors=[executor], **config_kwargs)
