"""Allow ``python -m repro.imaging <subcommand>`` as a shorthand for the CLI dispatcher."""

from repro.imaging.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
