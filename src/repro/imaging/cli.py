"""Command-line image tools invoked by the CWL ``CommandLineTool`` definitions.

The paper's evaluation workflow (Listing 3) wires together three command-line
tools — resize, filter, blur.  These are the concrete executables behind the
CWL documents shipped in ``examples/cwl/``:

* ``repro-image-resize  --size N --output OUT IN``
* ``repro-image-filter  [--sepia] --output OUT IN``
* ``repro-image-blur    --radius R --output OUT IN``
* ``repro-image-generate --count N --size S --outdir DIR`` (workload generator)
* ``repro-wordtool      --mode capitalize|count WORDS...`` (Fig. 2 workload)

Each tool is also reachable without an installed console script as
``python -m repro.imaging.cli <subcommand> ...`` so that CWL documents work even
when the package is imported from a source tree.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.imaging.ops import blur_image, resize_image, sepia_filter
from repro.imaging.png import read_png, write_png
from repro.imaging.synthetic import generate_image_files


def _build_resize_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-image-resize", description="Resize a PNG image")
    parser.add_argument("input_image", help="input PNG path")
    parser.add_argument("--size", type=int, required=True, help="target size (square)")
    parser.add_argument("--output", required=True, help="output PNG path")
    parser.add_argument("--method", default="bilinear", choices=("bilinear", "nearest"))
    return parser


def resize_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-image-resize``."""
    args = _build_resize_parser().parse_args(argv)
    image = read_png(args.input_image)
    write_png(args.output, resize_image(image, args.size, method=args.method))
    print(f"resized {args.input_image} -> {args.output} ({args.size}x{args.size})")
    return 0


def _build_filter_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-image-filter", description="Apply a sepia filter")
    parser.add_argument("input_image", help="input PNG path")
    parser.add_argument("--sepia", action="store_true", help="apply the sepia tone")
    parser.add_argument("--output", required=True, help="output PNG path")
    return parser


def filter_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-image-filter``."""
    args = _build_filter_parser().parse_args(argv)
    image = read_png(args.input_image)
    write_png(args.output, sepia_filter(image, apply=args.sepia))
    print(f"filtered {args.input_image} -> {args.output} (sepia={args.sepia})")
    return 0


def _build_blur_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-image-blur", description="Blur a PNG image")
    parser.add_argument("input_image", help="input PNG path")
    parser.add_argument("--radius", type=int, default=1, help="blur radius in pixels")
    parser.add_argument("--output", required=True, help="output PNG path")
    return parser


def blur_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-image-blur``."""
    args = _build_blur_parser().parse_args(argv)
    image = read_png(args.input_image)
    write_png(args.output, blur_image(image, radius=args.radius))
    print(f"blurred {args.input_image} -> {args.output} (radius={args.radius})")
    return 0


def _build_generate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-image-generate", description="Generate synthetic PNG workload images"
    )
    parser.add_argument("--count", type=int, required=True, help="number of images")
    parser.add_argument("--size", type=int, default=256, help="width/height of each image")
    parser.add_argument("--outdir", required=True, help="destination directory")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--prefix", default="img")
    return parser


def generate_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-image-generate``."""
    args = _build_generate_parser().parse_args(argv)
    paths = generate_image_files(
        args.outdir, args.count, width=args.size, height=args.size, prefix=args.prefix, seed=args.seed
    )
    for path in paths:
        print(path)
    return 0


def _build_wordtool_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wordtool",
        description="Word-processing tool used by the expression benchmark (Fig. 2)",
    )
    parser.add_argument("--mode", default="echo", choices=("echo", "capitalize", "count", "upper"))
    parser.add_argument("words", nargs="*", help="words to process")
    return parser


def wordtool_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-wordtool``."""
    args = _build_wordtool_parser().parse_args(argv)
    text = " ".join(args.words)
    if args.mode == "capitalize":
        print(text.title())
    elif args.mode == "upper":
        print(text.upper())
    elif args.mode == "count":
        print(len(args.words))
    else:
        print(text)
    return 0


_SUBCOMMANDS = {
    "resize": resize_main,
    "filter": filter_main,
    "blur": blur_main,
    "generate": generate_main,
    "wordtool": wordtool_main,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatcher so the tools are usable as ``python -m repro.imaging.cli <cmd> ...``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.imaging.cli {resize,filter,blur,generate,wordtool} ...")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command not in _SUBCOMMANDS:
        print(f"unknown subcommand {command!r}; expected one of {sorted(_SUBCOMMANDS)}", file=sys.stderr)
        return 2
    return _SUBCOMMANDS[command](rest)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
