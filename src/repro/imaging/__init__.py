"""Image-processing substrate for the paper's evaluation workflow.

The paper's evaluation (Fig. 1) runs a three-stage image-processing pipeline —
resize, sepia filter, blur — described as CWL ``CommandLineTool`` definitions.
The original tools rely on Pillow/ImageMagick-style utilities and a photo
dataset; neither is available offline, so this subpackage provides:

* :mod:`repro.imaging.png` — a pure-numpy PNG encoder/decoder built directly on
  :mod:`zlib` (truecolour, truecolour+alpha and greyscale, 8-bit).
* :mod:`repro.imaging.ops` — the three image operations (resize, sepia, blur)
  implemented with vectorised numpy.
* :mod:`repro.imaging.synthetic` — a deterministic synthetic image generator used
  as the experiment workload.
* :mod:`repro.imaging.cli` — the ``repro-image-*`` command-line tools that the CWL
  ``CommandLineTool`` definitions invoke, plus ``repro-wordtool`` used by the
  expression benchmark (Fig. 2).
"""

from repro.imaging.png import read_png, write_png
from repro.imaging.ops import blur_image, resize_image, sepia_filter
from repro.imaging.synthetic import generate_image, generate_image_files

__all__ = [
    "blur_image",
    "generate_image",
    "generate_image_files",
    "read_png",
    "resize_image",
    "sepia_filter",
    "write_png",
]
