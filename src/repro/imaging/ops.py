"""The three image operations used by the paper's evaluation workflow.

Each operation is a pure function on uint8 numpy arrays:

* :func:`resize_image` — nearest-neighbour or bilinear resize to ``size``×``size``
  (the workflow passes a single integer ``size``, matching Listing 3/4).
* :func:`sepia_filter` — the classic sepia colour-matrix transform, optionally a
  no-op when the ``sepia`` flag is false (matching the workflow's boolean input).
* :func:`blur_image` — a separable box blur of configurable integer ``radius``
  (radius 0 is a no-op), approximating a Gaussian well enough for the pipeline.

All three are vectorised; per the HPC guide, no per-pixel Python loops appear on
the hot path.
"""

from __future__ import annotations

import numpy as np

_SEPIA_MATRIX = np.array(
    [
        [0.393, 0.769, 0.189],
        [0.349, 0.686, 0.168],
        [0.272, 0.534, 0.131],
    ],
    dtype=np.float64,
)


def _ensure_rgb(image: np.ndarray) -> np.ndarray:
    """Return an ``(H, W, 3)`` view/copy of ``image`` regardless of input shape."""
    arr = np.asarray(image)
    if arr.ndim == 2:
        return np.repeat(arr[:, :, np.newaxis], 3, axis=2)
    if arr.ndim == 3 and arr.shape[2] >= 3:
        return arr[:, :, :3]
    raise ValueError(f"unsupported image shape {arr.shape!r}")


def resize_image(image: np.ndarray, size: int, method: str = "bilinear") -> np.ndarray:
    """Resize ``image`` to ``size`` × ``size`` pixels.

    Parameters
    ----------
    image:
        Input uint8 array, ``(H, W)`` or ``(H, W, C)``.
    size:
        Target width and height (the paper's workflow uses square targets).
    method:
        ``"nearest"`` or ``"bilinear"``.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    arr = np.asarray(image)
    squeeze = False
    if arr.ndim == 2:
        arr = arr[:, :, np.newaxis]
        squeeze = True
    height, width, channels = arr.shape

    if method == "nearest":
        rows = np.clip((np.arange(size) + 0.5) * height / size, 0, height - 1).astype(int)
        cols = np.clip((np.arange(size) + 0.5) * width / size, 0, width - 1).astype(int)
        out = arr[rows][:, cols]
    elif method == "bilinear":
        row_pos = (np.arange(size) + 0.5) * height / size - 0.5
        col_pos = (np.arange(size) + 0.5) * width / size - 0.5
        row_pos = np.clip(row_pos, 0, height - 1)
        col_pos = np.clip(col_pos, 0, width - 1)
        r0 = np.floor(row_pos).astype(int)
        c0 = np.floor(col_pos).astype(int)
        r1 = np.minimum(r0 + 1, height - 1)
        c1 = np.minimum(c0 + 1, width - 1)
        wr = (row_pos - r0)[:, np.newaxis, np.newaxis]
        wc = (col_pos - c0)[np.newaxis, :, np.newaxis]
        src = arr.astype(np.float64)
        top = src[r0][:, c0] * (1 - wc) + src[r0][:, c1] * wc
        bottom = src[r1][:, c0] * (1 - wc) + src[r1][:, c1] * wc
        out = np.clip(np.round(top * (1 - wr) + bottom * wr), 0, 255).astype(np.uint8)
    else:
        raise ValueError(f"unknown resize method {method!r}")

    if squeeze:
        return out[:, :, 0]
    return out


def sepia_filter(image: np.ndarray, apply: bool = True) -> np.ndarray:
    """Apply a sepia tone to ``image`` when ``apply`` is true, else return a copy.

    The sepia transform multiplies each RGB pixel by the standard sepia matrix
    and clips to ``[0, 255]``.
    """
    rgb = _ensure_rgb(image).astype(np.float64)
    if not apply:
        return np.clip(np.round(rgb), 0, 255).astype(np.uint8)
    toned = rgb @ _SEPIA_MATRIX.T
    return np.clip(np.round(toned), 0, 255).astype(np.uint8)


def blur_image(image: np.ndarray, radius: int = 1) -> np.ndarray:
    """Blur ``image`` with a separable box filter of the given integer ``radius``.

    A radius of ``r`` averages over a ``(2r+1)``-wide window along each axis; a
    radius of 0 returns the input unchanged (as a copy).  Edges are handled by
    clamping (edge replication), matching common image-tool behaviour.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    arr = np.asarray(image)
    if radius == 0:
        return arr.copy()
    squeeze = False
    if arr.ndim == 2:
        arr = arr[:, :, np.newaxis]
        squeeze = True

    window = 2 * radius + 1
    work = arr.astype(np.float64)

    # Separable box blur via cumulative sums along each axis with edge padding.
    def blur_axis(data: np.ndarray, axis: int) -> np.ndarray:
        padded = np.concatenate(
            [
                np.repeat(np.take(data, [0], axis=axis), radius, axis=axis),
                data,
                np.repeat(np.take(data, [-1], axis=axis), radius, axis=axis),
            ],
            axis=axis,
        )
        csum = np.cumsum(padded, axis=axis)
        zero_shape = list(csum.shape)
        zero_shape[axis] = 1
        csum = np.concatenate([np.zeros(zero_shape), csum], axis=axis)
        upper = np.take(csum, range(window, csum.shape[axis]), axis=axis)
        lower = np.take(csum, range(0, csum.shape[axis] - window), axis=axis)
        return (upper - lower) / window

    work = blur_axis(work, axis=0)
    work = blur_axis(work, axis=1)
    out = np.clip(np.round(work), 0, 255).astype(np.uint8)
    if squeeze:
        return out[:, :, 0]
    return out
