"""A minimal pure-numpy PNG encoder/decoder.

Only the subset of the PNG specification needed by the evaluation workflow is
implemented:

* 8-bit sample depth,
* colour types 0 (greyscale), 2 (truecolour RGB) and 6 (truecolour + alpha),
* no interlacing,
* all five scanline filter types on decode; filter type 0 (None) on encode.

The codec exists because Pillow is not available offline; it is deliberately
simple but fully standard-compliant for the images it produces, so the files it
writes can be read by any external viewer.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Union

import numpy as np

PathLike = Union[str, os.PathLike]

_PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"

# Mapping from PNG colour type to number of samples per pixel.
_CHANNELS = {0: 1, 2: 3, 4: 2, 6: 4}


class PNGError(ValueError):
    """Raised when a PNG stream is malformed or uses an unsupported feature."""


def _chunk(tag: bytes, data: bytes) -> bytes:
    """Serialise one PNG chunk (length, tag, data, CRC)."""
    return (
        struct.pack(">I", len(data))
        + tag
        + data
        + struct.pack(">I", zlib.crc32(tag + data) & 0xFFFFFFFF)
    )


def write_png(path: PathLike, image: np.ndarray) -> None:
    """Write ``image`` to ``path`` as an 8-bit PNG.

    ``image`` must be a uint8 array of shape ``(H, W)`` (greyscale), ``(H, W, 3)``
    (RGB) or ``(H, W, 4)`` (RGBA).  Values of other dtypes are clipped to
    ``[0, 255]`` and cast.
    """
    arr = np.asarray(image)
    if arr.ndim == 2:
        colour_type = 0
        arr = arr[:, :, np.newaxis]
    elif arr.ndim == 3 and arr.shape[2] == 3:
        colour_type = 2
    elif arr.ndim == 3 and arr.shape[2] == 4:
        colour_type = 6
    else:
        raise PNGError(f"unsupported image shape {arr.shape!r}")

    if arr.dtype != np.uint8:
        arr = np.clip(np.round(arr), 0, 255).astype(np.uint8)

    height, width, _channels = arr.shape
    header = struct.pack(">IIBBBBB", width, height, 8, colour_type, 0, 0, 0)

    # Prepend the per-scanline filter byte (0 = None) and compress.
    raw = np.empty((height, 1 + width * arr.shape[2]), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = arr.reshape(height, -1)
    compressed = zlib.compress(raw.tobytes(), level=6)

    with open(os.fspath(path), "wb") as handle:
        handle.write(_PNG_SIGNATURE)
        handle.write(_chunk(b"IHDR", header))
        handle.write(_chunk(b"IDAT", compressed))
        handle.write(_chunk(b"IEND", b""))


def _paeth(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """The Paeth predictor from the PNG specification, vectorised over a scanline."""
    a = a.astype(np.int16)
    b = b.astype(np.int16)
    c = c.astype(np.int16)
    p = a + b - c
    pa = np.abs(p - a)
    pb = np.abs(p - b)
    pc = np.abs(p - c)
    out = np.where((pa <= pb) & (pa <= pc), a, np.where(pb <= pc, b, c))
    return out.astype(np.uint8)


def _unfilter(raw: bytes, height: int, width: int, channels: int) -> np.ndarray:
    """Reverse PNG scanline filtering, returning an ``(H, W*channels)`` uint8 array."""
    stride = width * channels
    expected = height * (stride + 1)
    if len(raw) < expected:
        raise PNGError(
            f"decompressed data too short: got {len(raw)} bytes, expected {expected}"
        )
    data = np.frombuffer(raw[:expected], dtype=np.uint8).reshape(height, stride + 1)
    filters = data[:, 0]
    scanlines = data[:, 1:]

    out = np.zeros((height, stride), dtype=np.uint8)
    bpp = channels  # bytes per pixel at 8-bit depth
    for row in range(height):
        ftype = int(filters[row])
        line = scanlines[row].astype(np.int16)
        prev = out[row - 1].astype(np.int16) if row > 0 else np.zeros(stride, np.int16)
        if ftype == 0:  # None
            recon = line
        elif ftype == 1:  # Sub
            recon = line.copy()
            for i in range(bpp, stride):
                recon[i] = (recon[i] + recon[i - bpp]) & 0xFF
        elif ftype == 2:  # Up
            recon = (line + prev) & 0xFF
        elif ftype == 3:  # Average
            recon = line.copy()
            for i in range(stride):
                left = recon[i - bpp] if i >= bpp else 0
                recon[i] = (recon[i] + ((left + prev[i]) >> 1)) & 0xFF
        elif ftype == 4:  # Paeth
            recon = line.copy()
            for i in range(stride):
                left = recon[i - bpp] if i >= bpp else 0
                up = prev[i]
                upleft = prev[i - bpp] if i >= bpp else 0
                recon[i] = (
                    recon[i]
                    + _paeth(
                        np.array([left], np.uint8),
                        np.array([up], np.uint8),
                        np.array([upleft], np.uint8),
                    )[0]
                ) & 0xFF
        else:
            raise PNGError(f"unsupported PNG filter type {ftype}")
        out[row] = recon.astype(np.uint8)
    return out


def read_png(path: PathLike) -> np.ndarray:
    """Read the PNG at ``path`` into a uint8 numpy array.

    Returns shape ``(H, W)`` for greyscale images and ``(H, W, C)`` otherwise.
    """
    with open(os.fspath(path), "rb") as handle:
        blob = handle.read()
    if blob[:8] != _PNG_SIGNATURE:
        raise PNGError(f"{path}: not a PNG file (bad signature)")

    offset = 8
    width = height = None
    bit_depth = colour_type = None
    idat_parts = []
    while offset < len(blob):
        if offset + 8 > len(blob):
            raise PNGError(f"{path}: truncated chunk header")
        (length,) = struct.unpack(">I", blob[offset : offset + 4])
        tag = blob[offset + 4 : offset + 8]
        data = blob[offset + 8 : offset + 8 + length]
        offset += 12 + length  # length + tag + data + crc
        if tag == b"IHDR":
            width, height, bit_depth, colour_type, _comp, _filt, interlace = struct.unpack(
                ">IIBBBBB", data
            )
            if bit_depth != 8:
                raise PNGError(f"{path}: only 8-bit PNGs are supported (got {bit_depth})")
            if colour_type not in _CHANNELS:
                raise PNGError(f"{path}: unsupported colour type {colour_type}")
            if interlace != 0:
                raise PNGError(f"{path}: interlaced PNGs are not supported")
        elif tag == b"IDAT":
            idat_parts.append(data)
        elif tag == b"IEND":
            break

    if width is None or height is None or colour_type is None:
        raise PNGError(f"{path}: missing IHDR chunk")
    if not idat_parts:
        raise PNGError(f"{path}: missing IDAT data")

    channels = _CHANNELS[colour_type]
    raw = zlib.decompress(b"".join(idat_parts))
    flat = _unfilter(raw, height, width, channels)
    image = flat.reshape(height, width, channels)
    if channels == 1:
        return image[:, :, 0].copy()
    return image.copy()
