"""Deterministic synthetic image generation.

The paper processes a directory of photographs.  Offline we generate synthetic
PNG images instead: smooth colour gradients with superimposed geometric shapes,
seeded per-image so that workloads are reproducible and images differ from one
another (which matters for output checksums in tests).
"""

from __future__ import annotations

import os
from typing import List, Sequence, Union

import numpy as np

from repro.imaging.png import write_png

PathLike = Union[str, os.PathLike]


def generate_image(width: int = 256, height: int = 256, seed: int = 0) -> np.ndarray:
    """Return a deterministic synthetic RGB image of the requested size.

    The image is a smooth two-axis gradient with a seeded set of filled circles,
    giving enough structure for resize/sepia/blur outputs to differ visibly.
    """
    rng = np.random.default_rng(seed)
    ys = np.linspace(0.0, 1.0, height)[:, np.newaxis]
    xs = np.linspace(0.0, 1.0, width)[np.newaxis, :]

    red = 255.0 * (0.5 + 0.5 * np.sin(2 * np.pi * (xs + 0.1 * seed)))
    green = 255.0 * ys
    blue = 255.0 * (0.5 + 0.5 * np.cos(2 * np.pi * (ys * xs + 0.05 * seed)))
    image = np.stack(
        [np.broadcast_to(red, (height, width)),
         np.broadcast_to(green, (height, width)),
         np.broadcast_to(blue, (height, width))],
        axis=2,
    ).copy()

    # Add a few filled circles with seeded centres and colours.
    yy, xx = np.mgrid[0:height, 0:width]
    for _ in range(4):
        cy = rng.integers(0, height)
        cx = rng.integers(0, width)
        radius = rng.integers(max(4, min(width, height) // 16), max(8, min(width, height) // 4))
        colour = rng.integers(0, 256, size=3)
        mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius**2
        image[mask] = colour

    return np.clip(np.round(image), 0, 255).astype(np.uint8)


def generate_image_files(
    directory: PathLike,
    count: int,
    width: int = 256,
    height: int = 256,
    prefix: str = "img",
    seed: int = 0,
) -> List[str]:
    """Write ``count`` synthetic PNGs into ``directory`` and return their paths.

    File names are zero-padded (``img_0000.png`` …) so glob ordering is stable.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for index in range(count):
        image = generate_image(width=width, height=height, seed=seed + index)
        path = os.path.join(directory, f"{prefix}_{index:04d}.png")
        write_png(path, image)
        paths.append(path)
    return paths


def word_corpus(count: int, seed: int = 0) -> Sequence[str]:
    """Return ``count`` deterministic pseudo-words for the expression benchmark (Fig. 2)."""
    rng = np.random.default_rng(seed)
    syllables = ["par", "sl", "cwl", "flow", "data", "task", "node", "exec", "py", "tool"]
    words = []
    for _ in range(count):
        k = int(rng.integers(1, 4))
        words.append("".join(str(syllables[int(rng.integers(0, len(syllables)))]) for _ in range(k)))
    return words
