"""The simulated Slurm-like batch scheduler.

:class:`SimulatedSlurmCluster` exposes the small surface of a batch system that
providers and batch systems in this repository need:

* :meth:`~SimulatedSlurmCluster.sbatch` — submit a :class:`~repro.cluster.jobs.JobSpec`
  and receive a job id,
* :meth:`~SimulatedSlurmCluster.squeue` — list non-terminal jobs,
* :meth:`~SimulatedSlurmCluster.scancel` — cancel a pending or running job,
* :meth:`~SimulatedSlurmCluster.sacct` — report the state of any job,
* :meth:`~SimulatedSlurmCluster.wait` — block until a job finishes.

A background scheduling thread repeatedly walks the FIFO queue, placing each
job on nodes that have enough free cores.  Jobs with a shell command run as
local subprocesses; jobs with a callable payload run on a thread from an
internal pool.  Either way the payload executes for real, so end-to-end timing
experiments remain meaningful; only the *placement* (nodes, queueing) is
simulated.
"""

from __future__ import annotations

import os
import subprocess
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.cluster.jobs import ClusterJob, JobSpec, JobState
from repro.cluster.nodes import NodeInventory
from repro.utils.ids import RunIdGenerator
from repro.utils.logging_config import get_logger

logger = get_logger("cluster.scheduler")


class SimulatedSlurmCluster:
    """A miniature batch scheduler over a :class:`NodeInventory`.

    Parameters
    ----------
    inventory:
        The node inventory; defaults to a paper-style three-node cluster with 48
        cores per node.
    scheduling_interval:
        How often (seconds) the scheduling loop scans the queue when idle.
    max_concurrent_payloads:
        Size of the internal thread pool used for callable payloads.
    """

    def __init__(
        self,
        inventory: Optional[NodeInventory] = None,
        scheduling_interval: float = 0.01,
        max_concurrent_payloads: int = 64,
    ) -> None:
        self.inventory = inventory or NodeInventory.homogeneous(3, cores=48)
        self.scheduling_interval = scheduling_interval
        self._jobs: Dict[int, ClusterJob] = {}
        self._queue: List[int] = []
        self._ids = RunIdGenerator(start=1)
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._shutdown = threading.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=max_concurrent_payloads, thread_name_prefix="simslurm-payload"
        )
        self._scheduler_thread = threading.Thread(
            target=self._scheduling_loop, name="simslurm-scheduler", daemon=True
        )
        self._scheduler_thread.start()

    # ------------------------------------------------------------------ API

    def sbatch(self, spec: JobSpec) -> int:
        """Submit a job; returns its integer job id."""
        if self._shutdown.is_set():
            raise RuntimeError("cluster has been shut down")
        spec.validate()
        with self._lock:
            job_id = self._ids.next()
            job = ClusterJob(job_id=job_id, spec=spec)
            self._jobs[job_id] = job
            self._queue.append(job_id)
        logger.debug("sbatch job %s (%s): %s nodes x %s cores", job_id, spec.name,
                     spec.nodes, spec.cores_per_node)
        self._wake.set()
        return job_id

    def squeue(self) -> List[ClusterJob]:
        """Return all jobs that have not yet reached a terminal state."""
        with self._lock:
            return [job for job in self._jobs.values() if not job.state.is_terminal]

    def sacct(self, job_id: int) -> ClusterJob:
        """Return the record for ``job_id`` (raises ``KeyError`` if unknown)."""
        with self._lock:
            return self._jobs[job_id]

    def scancel(self, job_id: int) -> bool:
        """Cancel a job.  Running jobs are marked cancelled; their payload is not killed
        (matching the best-effort behaviour of ``scancel`` for near-complete jobs).
        Returns ``True`` if the job transitioned to CANCELLED."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state.is_terminal:
                return False
            if job.state == JobState.PENDING and job_id in self._queue:
                self._queue.remove(job_id)
            job.mark_finished(JobState.CANCELLED)
            if job.assigned_nodes:
                self.inventory.release(job.assigned_nodes, job.spec.cores_per_node,
                                       job.spec.memory_mb_per_node)
                job.assigned_nodes = []
            return True

    def wait(self, job_id: int, timeout: Optional[float] = None) -> ClusterJob:
        """Block until ``job_id`` finishes; returns its record."""
        job = self.sacct(job_id)
        job.wait(timeout)
        return job

    def wait_all(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted job reaches a terminal state."""
        for job_id in list(self._jobs):
            self.wait(job_id, timeout)

    def shutdown(self, cancel_pending: bool = True) -> None:
        """Stop the scheduler.  Pending jobs are cancelled unless told otherwise."""
        if cancel_pending:
            for job in self.squeue():
                if job.state == JobState.PENDING:
                    self.scancel(job.job_id)
        self._shutdown.set()
        self._wake.set()
        self._scheduler_thread.join(timeout=5)
        self._pool.shutdown(wait=False, cancel_futures=True)

    # ----------------------------------------------------------- scheduling

    def _scheduling_loop(self) -> None:
        while not self._shutdown.is_set():
            scheduled_any = self._schedule_once()
            if not scheduled_any:
                self._wake.wait(self.scheduling_interval)
                self._wake.clear()

    def _schedule_once(self) -> bool:
        """Try to start every queued job that currently fits; returns True if any started."""
        started = False
        with self._lock:
            queue_snapshot = list(self._queue)
        for job_id in queue_snapshot:
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state != JobState.PENDING:
                    if job_id in self._queue:
                        self._queue.remove(job_id)
                    continue
                placement = self.inventory.try_allocate(
                    job.spec.nodes, job.spec.cores_per_node, job.spec.memory_mb_per_node
                )
                if placement is None:
                    continue  # leave queued; FIFO but allows backfill of smaller jobs
                self._queue.remove(job_id)
                job.mark_running(placement)
            started = True
            self._pool.submit(self._run_job, job)
        return started

    def _run_job(self, job: ClusterJob) -> None:
        spec = job.spec
        try:
            if spec.command is not None:
                self._run_command_job(job)
            else:
                result = spec.callable_payload()  # type: ignore[misc]
                job.mark_finished(JobState.COMPLETED, exit_code=0, result=result)
        except Exception as exc:  # payload errors become FAILED jobs, not scheduler crashes
            logger.exception("job %s failed", job.job_id)
            job.mark_finished(JobState.FAILED, exit_code=1, error=str(exc))
        finally:
            if job.assigned_nodes:
                self.inventory.release(job.assigned_nodes, spec.cores_per_node,
                                       spec.memory_mb_per_node)
            self._wake.set()

    def _run_command_job(self, job: ClusterJob) -> None:
        spec = job.spec
        env = dict(os.environ)
        env.update(spec.env)
        # Expose Slurm-like environment variables so payloads can discover their placement.
        env.setdefault("SLURM_JOB_ID", str(job.job_id))
        env.setdefault("SLURM_JOB_NODELIST", ",".join(job.assigned_nodes))
        env.setdefault("SLURM_NNODES", str(spec.nodes))
        env.setdefault("SLURM_CPUS_ON_NODE", str(spec.cores_per_node))

        stdout_handle = open(spec.stdout_path, "wb") if spec.stdout_path else subprocess.DEVNULL
        stderr_handle = open(spec.stderr_path, "wb") if spec.stderr_path else subprocess.DEVNULL
        try:
            proc = subprocess.Popen(
                spec.command,
                shell=True,
                cwd=spec.working_dir,
                env=env,
                stdout=stdout_handle,
                stderr=stderr_handle,
            )
            try:
                exit_code = proc.wait(timeout=spec.walltime_s)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                job.mark_finished(JobState.TIMEOUT, exit_code=None,
                                  error=f"exceeded walltime of {spec.walltime_s}s")
                return
            state = JobState.COMPLETED if exit_code == 0 else JobState.FAILED
            job.mark_finished(state, exit_code=exit_code,
                              error=None if exit_code == 0 else f"exit code {exit_code}")
        finally:
            for handle in (stdout_handle, stderr_handle):
                if handle not in (subprocess.DEVNULL,) and hasattr(handle, "close"):
                    handle.close()

    # ------------------------------------------------------------ reporting

    def utilisation(self) -> float:
        """Fraction of cluster cores currently allocated (0.0 – 1.0)."""
        total = self.inventory.total_cores
        if total == 0:
            return 0.0
        return 1.0 - self.inventory.free_cores / total

    def job_states(self) -> Dict[int, JobState]:
        with self._lock:
            return {job_id: job.state for job_id, job in self._jobs.items()}


_DEFAULT_CLUSTER: Optional[SimulatedSlurmCluster] = None
_DEFAULT_LOCK = threading.Lock()


def default_cluster(nodes: int = 3, cores_per_node: int = 48) -> SimulatedSlurmCluster:
    """Return the process-wide shared cluster, creating it on first use.

    Providers and batch systems that are configured with ``cluster=None`` share
    this instance, mimicking "the site's batch system".
    """
    global _DEFAULT_CLUSTER
    with _DEFAULT_LOCK:
        if _DEFAULT_CLUSTER is None:
            _DEFAULT_CLUSTER = SimulatedSlurmCluster(
                NodeInventory.homogeneous(nodes, cores=cores_per_node)
            )
        return _DEFAULT_CLUSTER


def reset_default_cluster() -> None:
    """Shut down and forget the shared cluster (used between tests/benchmarks)."""
    global _DEFAULT_CLUSTER
    with _DEFAULT_LOCK:
        if _DEFAULT_CLUSTER is not None:
            _DEFAULT_CLUSTER.shutdown()
            _DEFAULT_CLUSTER = None
