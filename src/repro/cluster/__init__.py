"""A simulated Slurm-like cluster.

The paper's evaluation runs on a departmental HPC cluster (three nodes, two
12-core processors each) managed by Slurm; the Parsl configuration in Listing 4
targets Perlmutter.  Neither a batch scheduler nor multiple hosts are available
in this environment, so this subpackage provides a *simulated* cluster:

* a configurable node inventory (:class:`~repro.cluster.nodes.Node`,
  :class:`~repro.cluster.nodes.NodeInventory`),
* a batch scheduler (:class:`~repro.cluster.scheduler.SimulatedSlurmCluster`) with
  ``sbatch``/``squeue``/``scancel``-shaped methods, a FIFO queue, per-node core
  accounting and a background scheduling thread,
* job objects (:class:`~repro.cluster.jobs.ClusterJob`) whose payloads execute as
  real local subprocesses or Python callables, so that wall-clock measurements on
  a laptop remain meaningful.

The Parsl-like ``SlurmProvider`` and the Toil-like ``SlurmBatchSystem`` both sit
on top of this scheduler, which is how the "three node" experiment (Fig. 1a) is
reproduced on a single machine.  This substitution is recorded in DESIGN.md.
"""

from repro.cluster.nodes import Node, NodeInventory
from repro.cluster.jobs import ClusterJob, JobSpec, JobState
from repro.cluster.scheduler import SimulatedSlurmCluster, default_cluster, reset_default_cluster

__all__ = [
    "ClusterJob",
    "JobSpec",
    "JobState",
    "Node",
    "NodeInventory",
    "SimulatedSlurmCluster",
    "default_cluster",
    "reset_default_cluster",
]
