"""Job objects for the simulated cluster.

A :class:`JobSpec` describes what a submitter wants to run — either a shell
command (like an ``sbatch`` script) or a Python callable (used by in-process
batch systems).  A :class:`ClusterJob` is the scheduler's record of a submitted
job: its state machine follows the familiar Slurm states.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class JobState(str, enum.Enum):
    """Slurm-like job states."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    TIMEOUT = "TIMEOUT"

    @property
    def is_terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED, JobState.TIMEOUT)


@dataclass
class JobSpec:
    """Everything needed to run one batch job.

    Exactly one of ``command`` (a shell command string) or ``callable_payload``
    (a Python callable) must be provided.
    """

    name: str = "job"
    command: Optional[str] = None
    callable_payload: Optional[Callable[[], Any]] = None
    nodes: int = 1
    cores_per_node: int = 1
    memory_mb_per_node: int = 0
    walltime_s: Optional[float] = None
    stdout_path: Optional[str] = None
    stderr_path: Optional[str] = None
    env: Dict[str, str] = field(default_factory=dict)
    working_dir: Optional[str] = None

    def validate(self) -> None:
        """Raise ``ValueError`` for malformed specifications."""
        if (self.command is None) == (self.callable_payload is None):
            raise ValueError("exactly one of command/callable_payload must be set")
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.cores_per_node < 1:
            raise ValueError(f"cores_per_node must be >= 1, got {self.cores_per_node}")
        if self.memory_mb_per_node < 0:
            raise ValueError("memory_mb_per_node must be non-negative")
        if self.walltime_s is not None and self.walltime_s <= 0:
            raise ValueError("walltime_s must be positive when given")


@dataclass
class ClusterJob:
    """The scheduler's record of a submitted job."""

    job_id: int
    spec: JobSpec
    state: JobState = JobState.PENDING
    assigned_nodes: List[str] = field(default_factory=list)
    submit_time: float = field(default_factory=time.time)
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    exit_code: Optional[int] = None
    error: Optional[str] = None
    result: Any = None
    _done_event: threading.Event = field(default_factory=threading.Event, repr=False)

    def mark_running(self, node_names: List[str]) -> None:
        self.assigned_nodes = list(node_names)
        self.state = JobState.RUNNING
        self.start_time = time.time()

    def mark_finished(self, state: JobState, exit_code: Optional[int] = None,
                      error: Optional[str] = None, result: Any = None) -> None:
        self.state = state
        self.exit_code = exit_code
        self.error = error
        self.result = result
        self.end_time = time.time()
        self._done_event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state.  Returns ``False`` on timeout."""
        return self._done_event.wait(timeout)

    @property
    def pending_seconds(self) -> float:
        start = self.start_time if self.start_time is not None else time.time()
        return max(0.0, start - self.submit_time)

    @property
    def runtime_seconds(self) -> float:
        if self.start_time is None:
            return 0.0
        end = self.end_time if self.end_time is not None else time.time()
        return max(0.0, end - self.start_time)
