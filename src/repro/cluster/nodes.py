"""Node inventory for the simulated cluster.

A :class:`Node` models one compute host with a fixed number of cores and a
memory budget.  The :class:`NodeInventory` tracks allocations across nodes and
supports the two placement queries the scheduler needs: "find a node with at
least N free cores" and "find K distinct nodes each with at least N free cores"
(for multi-node pilot jobs).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Node:
    """One simulated compute node.

    Attributes
    ----------
    name:
        Host name, e.g. ``node01``.
    cores:
        Total logical cores (the paper's nodes expose 48).
    memory_mb:
        Total memory in MiB (the paper's nodes have 126 GB).
    allocated_cores / allocated_memory_mb:
        Currently allocated resources; maintained by :class:`NodeInventory`.
    """

    name: str
    cores: int = 48
    memory_mb: int = 126 * 1024
    allocated_cores: int = 0
    allocated_memory_mb: int = 0
    labels: Dict[str, str] = field(default_factory=dict)

    @property
    def free_cores(self) -> int:
        return self.cores - self.allocated_cores

    @property
    def free_memory_mb(self) -> int:
        return self.memory_mb - self.allocated_memory_mb

    def can_fit(self, cores: int, memory_mb: int = 0) -> bool:
        """Whether this node currently has room for the requested resources."""
        return self.free_cores >= cores and self.free_memory_mb >= memory_mb


class NodeInventory:
    """Thread-safe collection of :class:`Node` objects with allocation tracking."""

    def __init__(self, nodes: Optional[List[Node]] = None) -> None:
        self._nodes: Dict[str, Node] = {}
        self._lock = threading.Lock()
        for node in nodes or []:
            self.add_node(node)

    @classmethod
    def homogeneous(cls, count: int, cores: int = 48, memory_mb: int = 126 * 1024,
                    prefix: str = "node") -> "NodeInventory":
        """Create ``count`` identical nodes named ``<prefix>01`` … (paper-style cluster)."""
        return cls([Node(name=f"{prefix}{i + 1:02d}", cores=cores, memory_mb=memory_mb)
                    for i in range(count)])

    def add_node(self, node: Node) -> None:
        with self._lock:
            if node.name in self._nodes:
                raise ValueError(f"duplicate node name {node.name!r}")
            self._nodes[node.name] = node

    def nodes(self) -> List[Node]:
        with self._lock:
            return list(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __getitem__(self, name: str) -> Node:
        return self._nodes[name]

    @property
    def total_cores(self) -> int:
        return sum(node.cores for node in self.nodes())

    @property
    def free_cores(self) -> int:
        return sum(node.free_cores for node in self.nodes())

    def try_allocate(self, nodes_required: int, cores_per_node: int,
                     memory_mb_per_node: int = 0) -> Optional[List[str]]:
        """Attempt to allocate ``cores_per_node`` on ``nodes_required`` distinct nodes.

        Returns the list of node names on success, or ``None`` when the request
        cannot currently be satisfied (the caller should retry later — the
        scheduler keeps the job queued, exactly like a real batch system).
        """
        with self._lock:
            candidates = [n for n in self._nodes.values()
                          if n.can_fit(cores_per_node, memory_mb_per_node)]
            if len(candidates) < nodes_required:
                return None
            chosen = sorted(candidates, key=lambda n: n.free_cores, reverse=True)[:nodes_required]
            for node in chosen:
                node.allocated_cores += cores_per_node
                node.allocated_memory_mb += memory_mb_per_node
            return [node.name for node in chosen]

    def release(self, node_names: List[str], cores_per_node: int,
                memory_mb_per_node: int = 0) -> None:
        """Return resources previously obtained from :meth:`try_allocate`."""
        with self._lock:
            for name in node_names:
                node = self._nodes.get(name)
                if node is None:
                    continue
                node.allocated_cores = max(0, node.allocated_cores - cores_per_node)
                node.allocated_memory_mb = max(0, node.allocated_memory_mb - memory_mb_per_node)
