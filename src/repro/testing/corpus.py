"""The declarative conformance corpus.

Each ``conformance/corpus/*.yaml`` file describes one case, cwltool-style::

    id: echo_stdout            # optional; defaults to the file name
    doc: Echo writes its message to a stdout-typed output.
    tags: [tool, stdout]
    tier1: true                # part of the fast tier-1 subset
    process: examples/cwl/echo.cwl     # path relative to the repo root,
    # ... or an inline document:
    # process: {class: CommandLineTool, baseCommand: echo, ...}
    job:
      message: conformance
    expect:
      outputs:
        output: {class: File, basename: hello.txt, contents: "conformance\\n"}

Failure cases state the engine-independent exit class (see
:data:`repro.cwl.errors.EXIT_CLASSES`) instead of outputs, optionally with a
message substring::

    expect:
      failure: permanentFail
      match: "exit code 3"

and per-engine deviations (legitimately different behaviour, e.g. features
the Parsl bridge rejects) go under ``overrides``::

    overrides:
      parsl: {failure: unsupported, match: "nested Workflow"}
      parsl-workflow: {failure: unsupported, match: "nested Workflow"}

File inputs are declared by *content* so the corpus stays self-contained::

    job:
      text_file: {class: File, basename: words.txt, contents: "one two\\n"}

:func:`materialize_job_order` writes such values to real files before a run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cwl.errors import EXIT_CLASSES, ValidationException
from repro.utils.yamlio import load_yaml_file

#: Engines that can run a bare CommandLineTool.
TOOL_ENGINES = ("reference", "toil", "parsl")
#: Engines that can run a complete Workflow.
WORKFLOW_ENGINES = ("reference", "toil", "parsl", "parsl-workflow")

_REPO_ROOT = Path(__file__).resolve().parents[3]


def default_corpus_dir() -> Path:
    """``conformance/corpus`` at the repository root."""
    return _REPO_ROOT / "conformance" / "corpus"


@dataclass(frozen=True)
class CaseExpectation:
    """What one engine is expected to do with a case."""

    #: Expected outputs in corpus form (Files by content); ``None`` means the
    #: reference engine's result is the oracle.
    outputs: Optional[Dict[str, Any]] = None
    #: Expected exit class on failure (``None`` = expected to succeed).
    failure: Optional[str] = None
    #: Substring the failure message must contain.
    match: Optional[str] = None

    def __post_init__(self) -> None:
        if self.failure is not None and self.failure not in EXIT_CLASSES:
            raise ValidationException(
                f"unknown expected failure class {self.failure!r} "
                f"(expected one of {sorted(EXIT_CLASSES)})")
        if self.failure is not None and self.outputs is not None:
            raise ValidationException("a case expectation cannot carry both "
                                      "outputs and a failure class")


@dataclass
class ConformanceCase:
    """One corpus entry: a process, a job order and expectations."""

    id: str
    #: Inline document dict, or an absolute path to a ``.cwl`` file.
    process: Any
    job: Dict[str, Any] = field(default_factory=dict)
    expect: CaseExpectation = field(default_factory=CaseExpectation)
    overrides: Dict[str, CaseExpectation] = field(default_factory=dict)
    #: Explicit engine list; ``None`` derives it from the document class.
    engines: Optional[Tuple[str, ...]] = None
    tags: Tuple[str, ...] = ()
    tier1: bool = False
    doc: Optional[str] = None
    source: Optional[str] = None

    def expectation_for(self, engine: str) -> CaseExpectation:
        return self.overrides.get(engine, self.expect)

    def is_workflow(self) -> bool:
        """Best-effort document class check (invalid documents count as tools)."""
        document: Any = self.process
        if isinstance(document, str):
            try:
                document = load_yaml_file(document)
            except Exception:
                return False
        return isinstance(document, dict) and document.get("class") == "Workflow"

    def applicable_engines(self) -> Tuple[str, ...]:
        if self.engines is not None:
            return self.engines
        return WORKFLOW_ENGINES if self.is_workflow() else TOOL_ENGINES


def load_case(path: os.PathLike, repo_root: Optional[Path] = None) -> ConformanceCase:
    """Load and validate one corpus YAML file."""
    path = Path(path)
    raw = load_yaml_file(path)
    if not isinstance(raw, dict):
        raise ValidationException(f"corpus case {path} must be a YAML mapping")
    unknown = set(raw) - {"id", "doc", "tags", "tier1", "process", "job",
                          "expect", "overrides", "engines"}
    if unknown:
        raise ValidationException(
            f"corpus case {path} has unknown keys {sorted(unknown)}")

    process = raw.get("process")
    if process is None:
        raise ValidationException(f"corpus case {path} is missing 'process'")
    if isinstance(process, str):
        resolved = Path(process)
        if not resolved.is_absolute():
            resolved = (repo_root or _REPO_ROOT) / process
        if not resolved.is_file():
            raise ValidationException(
                f"corpus case {path}: process file {resolved} does not exist")
        process = str(resolved)
    elif not isinstance(process, dict):
        raise ValidationException(
            f"corpus case {path}: 'process' must be a path or an inline document")

    engines = raw.get("engines")
    if engines is not None:
        engines = tuple(str(engine) for engine in engines)
        bad = [e for e in engines if e not in WORKFLOW_ENGINES]
        if bad:
            raise ValidationException(
                f"corpus case {path}: unknown engines {bad}")

    return ConformanceCase(
        id=str(raw.get("id") or path.stem),
        process=process,
        job=dict(raw.get("job") or {}),
        expect=_parse_expectation(raw.get("expect"), path),
        overrides={str(engine): _parse_expectation(spec, path)
                   for engine, spec in (raw.get("overrides") or {}).items()},
        engines=engines,
        tags=tuple(str(tag) for tag in raw.get("tags") or ()),
        tier1=bool(raw.get("tier1", False)),
        doc=raw.get("doc"),
        source=str(path),
    )


def _parse_expectation(spec: Any, path: Path) -> CaseExpectation:
    if spec is None:
        return CaseExpectation()
    if not isinstance(spec, dict):
        raise ValidationException(f"corpus case {path}: expectations must be mappings")
    unknown = set(spec) - {"outputs", "failure", "match"}
    if unknown:
        raise ValidationException(
            f"corpus case {path}: unknown expectation keys {sorted(unknown)}")
    return CaseExpectation(outputs=spec.get("outputs"),
                           failure=spec.get("failure"),
                           match=spec.get("match"))


def load_corpus(directory: Optional[os.PathLike] = None, *,
                tier1_only: bool = False,
                tags: Optional[Sequence[str]] = None) -> List[ConformanceCase]:
    """Load every case in ``directory`` (default corpus), sorted by id.

    Case ids must be unique; the sort keeps run and report order independent
    of filesystem enumeration order.
    """
    directory = Path(directory) if directory is not None else default_corpus_dir()
    cases = [load_case(path) for path in sorted(directory.glob("*.yaml"))]
    seen: Dict[str, str] = {}
    for case in cases:
        if case.id in seen:
            raise ValidationException(
                f"duplicate corpus case id {case.id!r} "
                f"({seen[case.id]} and {case.source})")
        seen[case.id] = case.source or "?"
    if tier1_only:
        cases = [case for case in cases if case.tier1]
    if tags:
        wanted = set(tags)
        cases = [case for case in cases if wanted & set(case.tags)]
    return sorted(cases, key=lambda case: case.id)


def materialize_job_order(job: Dict[str, Any], directory: os.PathLike) -> Dict[str, Any]:
    """Write content-declared File inputs to disk; returns a resolved order.

    ``{"class": "File", "contents": ..., "basename": ...}`` values (at any
    nesting depth) become real files under ``directory`` and the value is
    rewritten to reference the written path.  Values that already carry a
    ``path`` pass through untouched.
    """
    directory = Path(directory)

    def materialize(value: Any, hint: str) -> Any:
        if isinstance(value, dict) and value.get("class") == "File" \
                and "contents" in value and "path" not in value:
            basename = value.get("basename") or f"{hint}.txt"
            target = directory / basename
            target.parent.mkdir(parents=True, exist_ok=True)
            # Explicit UTF-8: expected checksums are computed over UTF-8
            # bytes (repro.cwl.canonical.expected_value), so the written
            # bytes must match regardless of the machine locale.
            target.write_text(str(value["contents"]), encoding="utf-8")
            resolved = {k: v for k, v in value.items() if k != "contents"}
            resolved["path"] = str(target)
            resolved.setdefault("basename", basename)
            return resolved
        if isinstance(value, list):
            return [materialize(item, f"{hint}_{index}")
                    for index, item in enumerate(value)]
        if isinstance(value, dict):
            return {key: materialize(item, f"{hint}_{key}")
                    for key, item in value.items()}
        return value

    return {key: materialize(value, key) for key, value in job.items()}
