"""Seeded, bounded property-based workflow generation.

:func:`generate_workflow` emits a random — but fully deterministic for a
given seed — CWL Workflow over a small vocabulary of tools:

* ``echo``  — write a string input to a stdout-typed output,
* ``upcase`` — the same through an ``InlineJavascriptRequirement``
  expression (``$(inputs.text.toUpperCase())``),
* ``write`` — write a string to a file *named by another input*
  (the scatter body: shard outputs stay predictable at submission time),
* ``cat``  — concatenate upstream File outputs.

Structure is drawn with bounded width and depth: a source layer of
echo/upcase steps, optionally a dotproduct scatter, optionally a nested
(non-scattered) subworkflow, then up to ``max_depth - 1`` layers of ``cat``
steps combining earlier files, optionally a ``when``-guarded sink whose
guard is a workflow-input boolean.  Everything stays inside the subset all
four engines support (no scattered subworkflows, no guards over step
outputs), so the reference engine is a usable oracle for every generated
case.

Determinism rules (the flakiness guard): every choice flows from one
``random.Random(seed)``; step and input names are derived from insertion
counters, never from iteration over sets or dicts; two calls with the same
seed and bounds produce byte-identical documents and job orders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Deterministic word pool for generated messages.
WORDS = (
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
    "oscar", "papa", "quebec", "romeo", "sierra", "tango",
)

#: Default number of generated workflows per conformance run.
DEFAULT_SUITE_SIZE = 20
#: Default base seed (suite workflow ``i`` uses ``base_seed + i``).
DEFAULT_BASE_SEED = 1000


@dataclass
class GeneratedWorkflow:
    """One generated case: a Workflow document plus its job order."""

    seed: int
    doc: Dict[str, Any]
    job: Dict[str, Any]
    #: Structural features drawn for this seed (for reports/debugging).
    features: Tuple[str, ...] = ()

    @property
    def id(self) -> str:
        return f"gen-{self.seed:05d}"


# ------------------------------------------------------------------ tool docs


def _echo_tool(stdout_name: str) -> Dict[str, Any]:
    return {
        "class": "CommandLineTool",
        "baseCommand": "echo",
        "inputs": {"text": {"type": "string", "inputBinding": {"position": 1}}},
        "outputs": {"out": {"type": "stdout"}},
        "stdout": stdout_name,
    }


def _upcase_tool(stdout_name: str) -> Dict[str, Any]:
    return {
        "class": "CommandLineTool",
        "baseCommand": "echo",
        "requirements": [{"class": "InlineJavascriptRequirement"}],
        "inputs": {"text": {"type": "string"}},
        "arguments": ["$(inputs.text.toUpperCase())"],
        "outputs": {"out": {"type": "stdout"}},
        "stdout": stdout_name,
    }


def _write_tool() -> Dict[str, Any]:
    """Scatter body: output file named by the scattered ``name`` input."""
    return {
        "class": "CommandLineTool",
        "baseCommand": ["python3", "-c",
                        "import sys; open(sys.argv[1], 'w').write(sys.argv[2] + '\\n')"],
        "inputs": {
            "name": {"type": "string", "inputBinding": {"position": 1}},
            "word": {"type": "string", "inputBinding": {"position": 2}},
        },
        "outputs": {"out": {"type": "File",
                            "outputBinding": {"glob": "$(inputs.name)"}}},
    }


def _cat_tool(arity: int, stdout_name: str) -> Dict[str, Any]:
    inputs = {f"f{index}": {"type": "File", "inputBinding": {"position": index + 1}}
              for index in range(arity)}
    return {
        "class": "CommandLineTool",
        "baseCommand": "cat",
        "inputs": inputs,
        "outputs": {"out": {"type": "stdout"}},
        "stdout": stdout_name,
    }


def _guarded_echo_tool(stdout_name: str) -> Dict[str, Any]:
    tool = _echo_tool(stdout_name)
    tool["inputs"]["go"] = {"type": "boolean"}
    return tool


# ------------------------------------------------------------------ generator


@dataclass
class _Builder:
    rng: random.Random
    inputs: Dict[str, Any] = field(default_factory=dict)
    job: Dict[str, Any] = field(default_factory=dict)
    steps: Dict[str, Any] = field(default_factory=dict)
    outputs: Dict[str, Any] = field(default_factory=dict)
    #: ``step/out`` references resolving to a single File.
    file_refs: List[str] = field(default_factory=list)
    features: List[str] = field(default_factory=list)

    def phrase(self, words: int) -> str:
        return " ".join(self.rng.choice(WORDS) for _ in range(words))

    def add_input(self, name: str, cwl_type: str, value: Any) -> str:
        self.inputs[name] = cwl_type
        self.job[name] = value
        return name

    def add_step(self, name: str, step: Dict[str, Any]) -> str:
        self.steps[name] = step
        return name

    def expose(self, ref: str, cwl_type: str = "Any") -> None:
        output_id = f"o{len(self.outputs)}"
        self.outputs[output_id] = {"type": cwl_type, "outputSource": ref}


def generate_workflow(seed: int, *, max_width: int = 3,
                      max_depth: int = 3) -> GeneratedWorkflow:
    """Generate one workflow for ``seed`` (bounded width/depth, deterministic)."""
    if max_width < 1 or max_depth < 1:
        raise ValueError("max_width and max_depth must be at least 1")
    builder = _Builder(rng=random.Random(seed))
    rng = builder.rng

    # --- source layer: echo/upcase steps over workflow string inputs.
    n_sources = rng.randint(2, max(2, max_width))
    for index in range(n_sources):
        step_name = f"s{len(builder.steps)}"
        text_input = builder.add_input(f"msg{index}", "string",
                                       builder.phrase(rng.randint(1, 3)))
        tool = _upcase_tool(f"{step_name}.txt") if rng.random() < 0.4 \
            else _echo_tool(f"{step_name}.txt")
        builder.add_step(step_name, {"run": tool, "in": {"text": text_input},
                                     "out": ["out"]})
        builder.file_refs.append(f"{step_name}/out")
        builder.features.append("upcase" if "arguments" in tool else "echo")

    # --- optional dotproduct scatter over generated name/word arrays.
    if rng.random() < 0.6:
        step_name = f"s{len(builder.steps)}"
        shards = rng.randint(2, 3)
        names = builder.add_input(
            f"{step_name}_names", "string[]",
            [f"{step_name}_part{index}.txt" for index in range(shards)])
        words = builder.add_input(
            f"{step_name}_words", "string[]",
            [builder.phrase(1) for _ in range(shards)])
        builder.add_step(step_name, {
            "run": _write_tool(), "scatter": ["name", "word"],
            "scatterMethod": "dotproduct",
            "in": {"name": names, "word": words}, "out": ["out"],
        })
        builder.expose(f"{step_name}/out")
        builder.features.append("scatter")

    # --- optional nested (non-scattered) subworkflow of echo steps.
    if max_depth > 1 and rng.random() < 0.6:
        step_name = f"s{len(builder.steps)}"
        child_steps = rng.randint(1, 2)
        child: Dict[str, Any] = {
            "class": "Workflow",
            "inputs": {f"m{index}": "string" for index in range(child_steps)},
            "outputs": {},
            "steps": {},
        }
        mapping: Dict[str, str] = {}
        for index in range(child_steps):
            parent_input = builder.add_input(
                f"{step_name}_m{index}", "string",
                builder.phrase(rng.randint(1, 2)))
            mapping[f"m{index}"] = parent_input
            child_step = f"c{index}"
            tool = _upcase_tool(f"{step_name}_{child_step}.txt") \
                if rng.random() < 0.5 else _echo_tool(f"{step_name}_{child_step}.txt")
            child["steps"][child_step] = {"run": tool, "in": {"text": f"m{index}"},
                                          "out": ["out"]}
            child["outputs"][f"w{index}"] = {"type": "File",
                                             "outputSource": f"{child_step}/out"}
        builder.add_step(step_name, {"run": child, "in": mapping,
                                     "out": [f"w{index}" for index in range(child_steps)]})
        for index in range(child_steps):
            builder.file_refs.append(f"{step_name}/w{index}")
        builder.features.append("subworkflow")

    # --- combining layers: cat steps over earlier single-File refs.
    for _depth in range(1, max_depth):
        if len(builder.file_refs) < 2 or rng.random() < 0.3:
            break
        step_name = f"s{len(builder.steps)}"
        arity = rng.randint(2, min(3, len(builder.file_refs)))
        chosen = rng.sample(sorted(builder.file_refs), arity)
        tool = _cat_tool(arity, f"{step_name}.txt")
        builder.add_step(step_name, {
            "run": tool,
            "in": {f"f{index}": ref for index, ref in enumerate(chosen)},
            "out": ["out"],
        })
        builder.file_refs.append(f"{step_name}/out")
        builder.features.append("cat")

    # --- optional when-guarded sink over a workflow-input boolean.
    if rng.random() < 0.5:
        step_name = f"s{len(builder.steps)}"
        flag = builder.add_input(f"{step_name}_go", "boolean", rng.random() < 0.5)
        text_input = next(iter(builder.inputs))  # msg0, deterministically
        builder.add_step(step_name, {
            "run": _guarded_echo_tool(f"{step_name}.txt"),
            "when": "$(inputs.go)",
            "in": {"go": flag, "text": text_input},
            "out": ["out"],
        })
        builder.expose(f"{step_name}/out")
        builder.features.append("when")

    # --- expose every file that is still a sink (plus one mid-DAG file).
    consumed = set()
    for step in builder.steps.values():
        consumed.update(source for source in step.get("in", {}).values()
                        if "/" in str(source))
    for ref in builder.file_refs:
        if ref not in consumed:
            builder.expose(ref, "File")
    if not builder.outputs:  # every file was consumed: expose the last one
        builder.expose(builder.file_refs[-1], "File")

    doc = {
        "cwlVersion": "v1.2",
        "class": "Workflow",
        "id": f"generated-{seed}",
        "requirements": [
            {"class": "ScatterFeatureRequirement"},
            {"class": "SubworkflowFeatureRequirement"},
            {"class": "InlineJavascriptRequirement"},
        ],
        "inputs": builder.inputs,
        "outputs": builder.outputs,
        "steps": builder.steps,
    }
    return GeneratedWorkflow(seed=seed, doc=doc, job=builder.job,
                             features=tuple(builder.features))


def layered_dag_structure(nodes: int, *, seed: int = 0,
                          fanin: int = 2) -> List[Tuple[str, List[str]]]:
    """Deterministic layered DAG shape: ``[(step_name, predecessors), ...]``.

    ``nodes`` steps are laid out in roughly ``sqrt(nodes)`` layers of
    ``sqrt(nodes)`` steps each; every step past layer 0 depends on up to
    ``fanin`` steps of the previous layer.  Construction is O(nodes) and all
    choices flow from one ``random.Random(seed)``, so the same arguments
    always yield the same structure — the 10k-node scheduler benchmarks and
    the deep-graph tests share these shapes.
    """
    if nodes < 1:
        raise ValueError("nodes must be at least 1")
    fanin = max(1, int(fanin))
    rng = random.Random(seed)
    width = max(1, int(round(nodes ** 0.5)))
    structure: List[Tuple[str, List[str]]] = []
    previous_layer: List[str] = []
    while len(structure) < nodes:
        layer: List[str] = []
        for _ in range(min(width, nodes - len(structure))):
            name = f"n{len(structure)}"
            if previous_layer:
                count = min(fanin, len(previous_layer))
                deps = sorted({previous_layer[rng.randrange(len(previous_layer))]
                               for _ in range(count)})
            else:
                deps = []
            structure.append((name, deps))
            layer.append(name)
        previous_layer = layer
    return structure


def generate_layered_dag(nodes: int, *, seed: int = 0,
                         fanin: int = 2) -> GeneratedWorkflow:
    """A layered Workflow document with exactly ``nodes`` steps (O(nodes)).

    Layer-0 steps ``echo`` a shared workflow string input; every later step
    ``cat``-combines the files of its (up to ``fanin``) predecessors from the
    previous layer.  Unlike :func:`generate_workflow` this scales to
    10k-step documents: no sampling over growing pools, every decision is a
    constant-time draw, and the document stays inside the engine-portable
    subset (plain CommandLineTool steps, no scatter/subworkflow/when).
    """
    structure = layered_dag_structure(nodes, seed=seed, fanin=fanin)
    steps: Dict[str, Any] = {}
    consumed: set = set()
    for name, deps in structure:
        if not deps:
            steps[name] = {"run": _echo_tool(f"{name}.txt"),
                           "in": {"text": "msg"}, "out": ["out"]}
        else:
            refs = [f"{dep}/out" for dep in deps]
            steps[name] = {
                "run": _cat_tool(len(refs), f"{name}.txt"),
                "in": {f"f{index}": ref for index, ref in enumerate(refs)},
                "out": ["out"],
            }
            consumed.update(refs)
    outputs = {f"o{index}": {"type": "File", "outputSource": f"{name}/out"}
               for index, (name, _deps) in enumerate(structure)
               if f"{name}/out" not in consumed}
    doc = {
        "cwlVersion": "v1.2",
        "class": "Workflow",
        "id": f"layered-{nodes}-{seed}",
        "inputs": {"msg": "string"},
        "outputs": outputs,
        "steps": steps,
    }
    return GeneratedWorkflow(seed=seed, doc=doc, job={"msg": "hello dag"},
                             features=("layered", f"nodes={nodes}",
                                       f"fanin={fanin}"))


def generate_suite(count: int = DEFAULT_SUITE_SIZE, *,
                   base_seed: int = DEFAULT_BASE_SEED,
                   max_width: int = 3, max_depth: int = 3) -> List[GeneratedWorkflow]:
    """``count`` workflows for seeds ``base_seed .. base_seed + count - 1``."""
    return [generate_workflow(base_seed + offset, max_width=max_width,
                              max_depth=max_depth)
            for offset in range(count)]
