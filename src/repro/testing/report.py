"""Aggregate case outcomes into the machine-readable ``CONFORMANCE.json``.

Report shape (version 1)::

    {
      "version": 1,
      "matrix": ["reference/cache=off/compiled=on", ...],
      "summary": {
        "cases": 47, "corpus_cases": 27, "generated_cases": 20,
        "runs": 1128, "passed_cases": 47, "failed_cases": 0,
        "divergences": 0
      },
      "divergences": ["case_id :: config :: what diverged", ...],
      "cases": {
        "<case id>": {
          "origin": "corpus" | "generated",
          "passed": true,
          "skipped": [...],
          "runs": [
            {"config": "...", "exit_class": "success", "passed": true,
             "jobs_run": 3, "wall_time_s": 0.12, "cache_stats": {...}},
            ...
          ]
        }
      }
    }

CI uploads the file as an artifact and fails the conformance job when
``summary.divergences`` is non-zero.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.api.matrix import MatrixConfig
from repro.testing.differential import CaseOutcome

REPORT_VERSION = 1


def build_report(outcomes: Sequence[CaseOutcome],
                 configs: Sequence[MatrixConfig],
                 meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The JSON-ready report for one conformance run."""
    divergences: List[str] = []
    cases: Dict[str, Any] = {}
    runs = 0
    for outcome in outcomes:
        runs += len(outcome.outcomes)
        divergences.extend(f"{outcome.case_id} :: {line}"
                           for line in outcome.divergences)
        cases[outcome.case_id] = {
            "origin": outcome.origin,
            "passed": outcome.passed,
            "skipped": list(outcome.skipped),
            "runs": [config_outcome.describe()
                     for config_outcome in outcome.outcomes],
        }
    report: Dict[str, Any] = {
        "version": REPORT_VERSION,
        "matrix": [config.label for config in configs],
        "summary": {
            "cases": len(outcomes),
            "corpus_cases": sum(1 for o in outcomes if o.origin == "corpus"),
            "generated_cases": sum(1 for o in outcomes if o.origin == "generated"),
            "runs": runs,
            "passed_cases": sum(1 for o in outcomes if o.passed),
            "failed_cases": sum(1 for o in outcomes if not o.passed),
            "divergences": len(divergences),
        },
        "divergences": divergences,
        "cases": cases,
    }
    if meta:
        report["meta"] = dict(meta)
    return report


def write_report(path: os.PathLike, report: Dict[str, Any]) -> str:
    """Write the report as stable (sorted, indented) JSON; returns the path."""
    path = os.fspath(path)
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
