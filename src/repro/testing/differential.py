"""Differential execution of one case across the configuration matrix.

The oracle is :data:`repro.api.REFERENCE_CONFIG` — the cwltool-fidelity
reference runner, cache off, uncached expressions.  Every other
configuration must either

* succeed with **deep-equal canonical outputs** (checksums, sizes,
  basenames, ``secondaryFiles`` — see :mod:`repro.cwl.canonical`), or
* fail with the **same exit class** the reference failed with, or
* fail exactly as the case's per-engine ``overrides`` say it must
  (legitimately unsupported paths, e.g. scattered subworkflows on the
  Parsl bridge).

Anything else is a divergence, recorded per configuration on the
:class:`CaseOutcome`.

Configurations with a fault profile (``MatrixConfig.faults``) are compared
against a *same-profile* reference baseline: the oracle for "engine X under
injected fault plan P" is the reference runner under exactly the same plan P.
Static corpus expectations are not checked against faulted baselines — a
fail-forever plan legitimately breaks a case that expects success; what the
fault matrix asserts is that all engines agree, fault for fault.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.api.matrix import REFERENCE_CONFIG, MatrixConfig, MatrixRun, run_config
from repro.cwl.canonical import expected_value
from repro.testing.corpus import CaseExpectation, ConformanceCase, materialize_job_order
from repro.testing.generator import GeneratedWorkflow


@dataclass
class ConfigOutcome:
    """One configuration's verdict for one case."""

    run: MatrixRun
    #: ``None`` when the configuration conformed; otherwise what diverged.
    divergence: Optional[str] = None

    @property
    def passed(self) -> bool:
        return self.divergence is None

    def describe(self) -> Dict[str, Any]:
        description = self.run.describe()
        description["passed"] = self.passed
        if self.divergence is not None:
            description["divergence"] = self.divergence
        return description


@dataclass
class CaseOutcome:
    """Every configuration's verdict for one case."""

    case_id: str
    origin: str  # "corpus" | "generated"
    outcomes: List[ConfigOutcome] = field(default_factory=list)
    #: Configurations skipped because the engine cannot run the document class.
    skipped: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    @property
    def divergences(self) -> List[str]:
        return [f"{outcome.run.config.label}: {outcome.divergence}"
                for outcome in self.outcomes if outcome.divergence]


def _reference_for(faults: Optional[str]) -> MatrixConfig:
    """The oracle configuration for a given fault profile (None = no faults)."""
    return MatrixConfig("reference", faults=faults) if faults else REFERENCE_CONFIG


def _baseline_faults(configs: Sequence[MatrixConfig]) -> List[Optional[str]]:
    """The fault profiles whose baselines a run needs, no-fault oracle first."""
    seen: List[Optional[str]] = []
    for config in configs:
        if config.faults not in seen:
            seen.append(config.faults)
    if not seen:
        seen.append(None)
    if None in seen:  # the unfaulted oracle always runs first when needed
        seen.remove(None)
        seen.insert(0, None)
    return seen


def _baseline_dir(workdir: str, faults: Optional[str]) -> str:
    suffix = f"-faults-{faults}" if faults else ""
    return os.path.join(workdir, f"reference-baseline{suffix}")


def run_case(case: ConformanceCase, configs: Sequence[MatrixConfig],
             workdir: str, max_workers: int = 4) -> CaseOutcome:
    """Run one corpus case under every applicable configuration."""
    workdir = os.path.abspath(workdir)
    job = materialize_job_order(case.job, os.path.join(workdir, "inputs"))
    engines = case.applicable_engines()

    outcome = CaseOutcome(case_id=case.id, origin="corpus")
    baselines: Dict[Optional[str], MatrixRun] = {}
    for faults in _baseline_faults(configs):
        baseline = run_config(case.process, job, _reference_for(faults),
                              _baseline_dir(workdir, faults),
                              max_workers=max_workers)
        baselines[faults] = baseline
        # Corpus expectations describe unfaulted behaviour; a faulted
        # baseline is an oracle by definition (cross-engine agreement is
        # what the fault axis asserts).
        outcome.outcomes.append(ConfigOutcome(
            run=baseline,
            divergence=_check_expectation(baseline,
                                          case.expectation_for("reference"))
            if faults is None else None,
        ))

    for index, config in enumerate(configs):
        if config.engine not in engines:
            outcome.skipped.append(config.label)
            continue
        if config == _reference_for(config.faults):
            continue  # already ran as its profile's baseline
        run = run_config(case.process, job, config,
                         os.path.join(workdir, f"{index:03d}"),
                         max_workers=max_workers)
        outcome.outcomes.append(ConfigOutcome(
            run=run,
            divergence=_verdict(run, baselines[config.faults],
                                case.expectation_for(config.engine)),
        ))
    return outcome


def run_generated(generated: GeneratedWorkflow, configs: Sequence[MatrixConfig],
                  workdir: str, max_workers: int = 4) -> CaseOutcome:
    """Run one generated workflow; the reference engine is the only oracle."""
    workdir = os.path.abspath(workdir)
    outcome = CaseOutcome(case_id=generated.id, origin="generated")
    baselines: Dict[Optional[str], MatrixRun] = {}
    for faults in _baseline_faults(configs):
        baseline = run_config(generated.doc, generated.job,
                              _reference_for(faults),
                              _baseline_dir(workdir, faults),
                              max_workers=max_workers)
        baselines[faults] = baseline
        divergence = None
        if faults is None and not baseline.ok:
            # Generated workflows must pass unfaulted; under a fault profile
            # a failing baseline can be by design (fail-forever plans).
            divergence = (f"reference baseline failed: {baseline.exit_class} "
                          f"({baseline.error})")
        outcome.outcomes.append(ConfigOutcome(run=baseline, divergence=divergence))

    for index, config in enumerate(configs):
        if config == _reference_for(config.faults):
            continue
        run = run_config(generated.doc, generated.job, config,
                         os.path.join(workdir, f"{index:03d}"),
                         max_workers=max_workers)
        outcome.outcomes.append(ConfigOutcome(
            run=run, divergence=_verdict(run, baselines[config.faults],
                                         CaseExpectation())))
    return outcome


# ---------------------------------------------------------------- comparison


def _verdict(run: MatrixRun, baseline: MatrixRun,
             expectation: CaseExpectation) -> Optional[str]:
    """Why ``run`` diverges from the oracle (``None`` = it conforms)."""
    if expectation.failure is not None:
        return _check_expectation(run, expectation)
    if run.exit_class != baseline.exit_class:
        detail = run.error or "produced outputs"
        return (f"exit class {run.exit_class!r} != reference "
                f"{baseline.exit_class!r} ({detail})")
    if not run.ok:
        return None  # both failed the same way the reference did
    divergence = deep_compare(baseline.outputs, run.outputs)
    if divergence is not None:
        return f"outputs differ from reference at {divergence}"
    if expectation.outputs is not None:
        expected = {key: expected_value(value)
                    for key, value in expectation.outputs.items()}
        divergence = deep_compare(expected, run.outputs)
        if divergence is not None:
            return f"outputs differ from expectation at {divergence}"
    return None


def _check_expectation(run: MatrixRun,
                       expectation: CaseExpectation) -> Optional[str]:
    """Check a run directly against a declared expectation."""
    if expectation.failure is not None:
        if run.exit_class != expectation.failure:
            return (f"expected failure class {expectation.failure!r}, got "
                    f"{run.exit_class!r} ({run.error or 'produced outputs'})")
        if expectation.match and expectation.match not in (run.error or ""):
            return (f"failure message {run.error!r} does not contain "
                    f"{expectation.match!r}")
        return None
    if not run.ok:
        return f"expected success, got {run.exit_class} ({run.error})"
    if expectation.outputs is not None:
        expected = {key: expected_value(value)
                    for key, value in expectation.outputs.items()}
        divergence = deep_compare(expected, run.outputs)
        if divergence is not None:
            return f"outputs differ from expectation at {divergence}"
    return None


def deep_compare(expected: Any, actual: Any, path: str = "$") -> Optional[str]:
    """First difference between two canonical values (``None`` = equal)."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                return f"{path}.{key} (unexpected key, value {actual[key]!r})"
            if key not in actual:
                return f"{path}.{key} (missing key, expected {expected[key]!r})"
            difference = deep_compare(expected[key], actual[key], f"{path}.{key}")
            if difference is not None:
                return difference
        return None
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return f"{path} (length {len(actual)} != {len(expected)})"
        for index, (exp, act) in enumerate(zip(expected, actual)):
            difference = deep_compare(exp, act, f"{path}[{index}]")
            if difference is not None:
                return difference
        return None
    if expected != actual:
        return f"{path} ({actual!r} != {expected!r})"
    return None
