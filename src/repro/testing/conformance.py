"""The conformance command line.

Default invocation — the full matrix, as CI runs it::

    python -m repro.testing.conformance

runs every corpus case plus 20 generated workflows across
{reference, toil, parsl, parsl-workflow} × cache {off, cold, warm} ×
compiled expressions {on, off}, writes ``CONFORMANCE.json`` and exits
non-zero on any divergence from the reference engine.

Useful variations::

    # the fast tier-1 subset (what tests/conformance asserts)
    python -m repro.testing.conformance --tier1

    # one engine, one case, keep the working directories
    python -m repro.testing.conformance --engine toil --case echo_stdout \\
        --workdir /tmp/conf --report /tmp/CONFORMANCE.json

    # a different generated-suite size/seed
    python -m repro.testing.conformance --generated 50 --seed 4242
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
from typing import List, Optional, Sequence

from repro.api.matrix import ENGINE_ORDER, MatrixConfig, matrix_configs
from repro.testing.corpus import load_corpus
from repro.testing.differential import CaseOutcome, run_case, run_generated
from repro.testing.generator import DEFAULT_BASE_SEED, DEFAULT_SUITE_SIZE, generate_suite
from repro.testing.report import build_report, write_report

_COMPILED_MODES = {"on": True, "off": False, "default": None}
_PIPELINE_MODES = {"on": True, "default": None}


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.conformance",
        description="Run the conformance corpus and generated workflows "
                    "differentially across the engine matrix.")
    parser.add_argument("--corpus", default=None,
                        help="corpus directory (default: conformance/corpus)")
    parser.add_argument("--engine", action="append", dest="engines",
                        choices=ENGINE_ORDER, default=None,
                        help="engine(s) to test (repeatable; default: all four)")
    parser.add_argument("--cache", default=None,
                        help="comma-separated cache modes (off, cold, warm; "
                             "default: all three, or off,warm with --tier1)")
    parser.add_argument("--compiled", default=None,
                        help="comma-separated expression modes (on, off, default; "
                             "default: on,off, or default with --tier1)")
    parser.add_argument("--generated", type=int, default=None,
                        help="number of generated workflows (0 disables; "
                             f"default: {DEFAULT_SUITE_SIZE}, or 2 with --tier1)")
    parser.add_argument("--seed", type=int, default=DEFAULT_BASE_SEED,
                        help="base seed for the generated suite")
    parser.add_argument("--case", action="append", dest="cases", default=None,
                        help="run only these corpus case ids (repeatable)")
    parser.add_argument("--tier1", action="store_true",
                        help="fast subset: tier-1 cases, cache off+warm, "
                             "engine-default expressions, 2 generated workflows "
                             "(explicit --cache/--compiled/--generated still win)")
    parser.add_argument("--faults", action="append", dest="faults", default=None,
                        help="inject this seeded fault profile into every "
                             "configuration (repeatable; see "
                             "repro.cwl.faults.fault_profiles). Each faulted "
                             "run is compared against a reference baseline "
                             "under the same profile.")
    parser.add_argument("--pipeline", default=None,
                        help="comma-separated scheduler-core modes (on: the "
                             "asyncio pipelined core on runner engines / a "
                             "bounded submission window on Parsl engines; "
                             "default: each engine's default core). "
                             "'default,on' runs both and compares them.")
    parser.add_argument("--report", default="CONFORMANCE.json",
                        help="where to write the JSON report")
    parser.add_argument("--workdir", default=None,
                        help="keep per-run working directories here "
                             "(default: a temporary directory, removed)")
    parser.add_argument("--max-workers", type=int, default=4)
    parser.add_argument("--quiet", action="store_true")
    return parser.parse_args(argv)


def _configs_from(args: argparse.Namespace) -> List[MatrixConfig]:
    """The requested matrix; ``--tier1`` only narrows flags left at default."""
    engines = tuple(args.engines) if args.engines else ENGINE_ORDER
    cache = args.cache or ("off,warm" if args.tier1 else "off,cold,warm")
    compiled = args.compiled or ("default" if args.tier1 else "on,off")
    cache_modes: Sequence[str] = tuple(m.strip() for m in cache.split(",")
                                       if m.strip())
    try:
        compiled_modes: Sequence[Optional[bool]] = tuple(
            _COMPILED_MODES[m.strip()] for m in compiled.split(",") if m.strip())
    except KeyError as exc:
        raise SystemExit(f"unknown --compiled mode {exc.args[0]!r} "
                         f"(expected on, off or default)")
    fault_modes: Sequence[Optional[str]] = (None,)
    if args.faults:
        from repro.cwl.faults import fault_profiles
        known = fault_profiles()
        wanted: List[str] = []
        for spec in args.faults:
            wanted.extend(name.strip() for name in spec.split(",")
                          if name.strip())
        unknown = [name for name in wanted if name not in known]
        if unknown:
            raise SystemExit(f"unknown --faults profile(s) {unknown} "
                             f"(expected one of {sorted(known)})")
        fault_modes = tuple(wanted)
    pipeline_modes: Sequence[Optional[bool]] = (None,)
    if args.pipeline:
        try:
            pipeline_modes = tuple(
                _PIPELINE_MODES[m.strip()] for m in args.pipeline.split(",")
                if m.strip())
        except KeyError as exc:
            raise SystemExit(f"unknown --pipeline mode {exc.args[0]!r} "
                             f"(expected on or default)")
    return matrix_configs(engines, cache_modes, compiled_modes, fault_modes,
                          pipeline_modes)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    configs = _configs_from(args)

    cases = load_corpus(args.corpus, tier1_only=args.tier1)
    if args.cases:
        wanted = set(args.cases)
        unknown = wanted - {case.id for case in cases}
        if unknown:
            print(f"conformance: unknown case id(s) {sorted(unknown)}",
                  file=sys.stderr)
            return 2
        cases = [case for case in cases if case.id in wanted]

    generated_count = args.generated if args.generated is not None \
        else (2 if args.tier1 else DEFAULT_SUITE_SIZE)
    generated = generate_suite(generated_count, base_seed=args.seed) \
        if generated_count else []

    cleanup = args.workdir is None
    base = os.path.abspath(args.workdir) if args.workdir \
        else tempfile.mkdtemp(prefix="repro-conformance-")

    def say(message: str) -> None:
        if not args.quiet:
            print(message, flush=True)

    say(f"conformance: {len(cases)} corpus case(s), {len(generated)} generated "
        f"workflow(s), {len(configs)} configuration(s) each")

    outcomes: List[CaseOutcome] = []
    try:
        for case in cases:
            outcome = run_case(case, configs,
                               os.path.join(base, "corpus", case.id),
                               max_workers=args.max_workers)
            outcomes.append(outcome)
            _report_case(outcome, say)
        for workflow in generated:
            outcome = run_generated(workflow, configs,
                                    os.path.join(base, "generated", workflow.id),
                                    max_workers=args.max_workers)
            outcomes.append(outcome)
            _report_case(outcome, say)
    finally:
        if cleanup:
            shutil.rmtree(base, ignore_errors=True)

    report = build_report(outcomes, configs, meta={
        "corpus": str(args.corpus) if args.corpus else "conformance/corpus",
        "generated": len(generated),
        "base_seed": args.seed,
        "tier1": bool(args.tier1),
        "faults": sorted({c.faults for c in configs if c.faults}),
        "pipeline": bool(any(c.pipeline for c in configs)),
    })
    path = write_report(args.report, report)

    summary = report["summary"]
    say(f"conformance: {summary['passed_cases']}/{summary['cases']} cases passed "
        f"({summary['runs']} runs, {summary['divergences']} divergence(s)); "
        f"report written to {path}")
    if summary["divergences"]:
        for line in report["divergences"]:
            print(f"DIVERGENCE: {line}", file=sys.stderr)
        return 1
    return 0


def _report_case(outcome: CaseOutcome, say) -> None:
    status = "ok" if outcome.passed else "DIVERGED"
    say(f"  [{status}] {outcome.case_id} "
        f"({len(outcome.outcomes)} run(s), {len(outcome.skipped)} skipped)")


if __name__ == "__main__":  # pragma: no cover — exercised via subprocess tests
    sys.exit(main())
