"""Conformance and differential testing for every execution configuration.

The repository runs the same CWL subset through four engines, with or
without the content-addressed job cache, with or without the
compiled-expression pipeline.  This package turns "they should all agree"
into a tested property, in the spirit of the CWL conformance suite and of
property-based differential testing of compilers:

* :mod:`repro.testing.corpus` — a declarative conformance corpus
  (``conformance/corpus/*.yaml``: document + job order + expected outputs /
  expected-failure class), loadable and runnable case by case.
* :mod:`repro.testing.generator` — a seeded, bounded property-based
  workflow generator emitting random DAGs of echo/upcase/cat/write tools
  with scatter, ``when`` guards and nested subworkflows, all inside the
  subset every engine supports.
* :mod:`repro.testing.differential` — runs one case across the engine ×
  cache × compiled × faults matrix (via :func:`repro.api.run_matrix`) and
  deep-compares each configuration's canonicalised outputs and exit classes
  against the reference engine (faulted configurations against a
  same-fault-profile reference baseline).
* :mod:`repro.testing.report` — aggregates case outcomes into the
  machine-readable ``CONFORMANCE.json`` report.
* :mod:`repro.testing.conformance` — the command line:
  ``python -m repro.testing.conformance`` runs the full corpus plus
  generated workflows across the full matrix and fails on any divergence.
"""

from repro.testing.corpus import (
    CaseExpectation,
    ConformanceCase,
    default_corpus_dir,
    load_corpus,
    materialize_job_order,
)
from repro.testing.differential import (
    CaseOutcome,
    ConfigOutcome,
    deep_compare,
    run_case,
    run_generated,
)
from repro.testing.generator import GeneratedWorkflow, generate_suite, generate_workflow
from repro.testing.report import build_report, write_report

__all__ = [
    "CaseExpectation",
    "CaseOutcome",
    "ConfigOutcome",
    "ConformanceCase",
    "GeneratedWorkflow",
    "build_report",
    "deep_compare",
    "default_corpus_dir",
    "generate_suite",
    "generate_workflow",
    "load_corpus",
    "materialize_job_order",
    "run_case",
    "run_generated",
    "write_report",
]
