"""The paper's contribution: the Parsl + CWL bridge.

Four pieces, matching §III–§V of the paper:

* :class:`~repro.core.cwl_app.CWLApp` — import a CWL ``CommandLineTool`` into a
  Parsl program as a callable app (§III-A, Listings 1–2 and 4).
* :mod:`repro.core.runner` / :mod:`repro.core.cli` — the ``parsl-cwl`` runner
  that executes a CommandLineTool on Parsl executors from the command line,
  configured by a TaPS-style YAML file (§III-B).
* :mod:`repro.core.yaml_config` — the YAML configuration loader.
* :mod:`repro.core.inline_python` — ``InlinePythonRequirement`` support: Python
  expressions (including per-input ``validate:`` rules) inside CWL documents
  (§V, Listings 5–6).
* :class:`~repro.core.workflow_bridge.CWLWorkflowBridge` — the paper's stated
  future work: executing a complete CWL ``Workflow`` through Parsl by converting
  each step into a CWLApp and wiring DataFutures between them.
"""

from repro.core.cwl_app import CWLApp
from repro.core.inline_python import InlinePythonEvaluator, InlinePythonRequirementError
from repro.core.runner import run_tool_with_parsl
from repro.core.workflow_bridge import CWLWorkflowBridge
from repro.core.yaml_config import config_from_dict, load_yaml_config

__all__ = [
    "CWLApp",
    "CWLWorkflowBridge",
    "InlinePythonEvaluator",
    "InlinePythonRequirementError",
    "config_from_dict",
    "load_yaml_config",
    "run_tool_with_parsl",
]
