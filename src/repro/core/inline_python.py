"""``InlinePythonRequirement`` — Python expressions inside CWL documents (paper §V).

The paper proposes a CWL extension mirroring ``InlineJavascriptRequirement``:

.. code-block:: yaml

    requirements:
      - class: InlinePythonRequirement
        expressionLib:
          - |
            def capitalize_words(message):
                return message.title()

    arguments:
      - f"{capitalize_words($(inputs.message))}"

An expression is any string wrapped in an f-string literal (``f"..."`` or
``f'...'``).  Inside it, ``$(inputs.x)`` / ``$(runtime.y)`` / ``$(self...)``
parameter references are resolved first, then the f-string is evaluated in a
namespace containing the functions defined by ``expressionLib`` (and any
modules imported by it).  A per-input ``validate:`` field is evaluated the same
way before the tool executes; an exception raised by the expression aborts the
job (Listing 6).

Because expressions are author-supplied Python, evaluation deliberately uses
``exec``/``eval`` — the same trust model as CWL's JavaScript expressions, where
the document author's code runs inside the runner.
"""

from __future__ import annotations

import builtins
from typing import Any, Dict, List, Optional, Sequence

from repro.cwl.errors import ExpressionError, InputValidationError
from repro.cwl.expressions.paramrefs import find_expressions, resolve_parameter_reference
from repro.cwl.schema import Process

#: The requirement class name introduced by the paper.
INLINE_PYTHON_CLASS = "InlinePythonRequirement"


class InlinePythonRequirementError(ExpressionError):
    """Raised when an inline Python expression fails to parse or evaluate."""


def extract_inline_python(process: Process) -> Optional[Dict[str, Any]]:
    """Return the ``InlinePythonRequirement`` dictionary of ``process``, if any."""
    return process.get_requirement(INLINE_PYTHON_CLASS)


def is_python_expression(value: Any) -> bool:
    """Whether ``value`` is a string the paper's syntax marks as a Python expression.

    The paper signals Python expressions by enclosing them in an f-string
    literal: ``f"{...}"`` (Listing 5) — that is what parsl-cwl looks for.
    """
    if not isinstance(value, str):
        return False
    stripped = value.strip()
    return (stripped.startswith('f"') and stripped.endswith('"')) or \
           (stripped.startswith("f'") and stripped.endswith("'"))


class InlinePythonEvaluator:
    """Evaluate inline Python expressions against a CWL evaluation context."""

    def __init__(self, expression_lib: Optional[Sequence[str]] = None,
                 external_files: Optional[Sequence[str]] = None) -> None:
        self.expression_lib = list(expression_lib or [])
        self.external_files = list(external_files or [])
        self._namespace: Dict[str, Any] = {"__builtins__": builtins}
        self._load_library()

    @classmethod
    def from_process(cls, process: Process) -> "InlinePythonEvaluator":
        """Build an evaluator from a process's ``InlinePythonRequirement`` (possibly empty)."""
        requirement = extract_inline_python(process) or {}
        return cls(
            expression_lib=requirement.get("expressionLib", []),
            external_files=requirement.get("externalPythonFiles", []),
        )

    # ------------------------------------------------------------------ library

    def _load_library(self) -> None:
        for path in self.external_files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                raise InlinePythonRequirementError(
                    f"cannot read external Python file {path!r}: {exc}"
                ) from exc
            self._exec_source(source, origin=path)
        for index, source in enumerate(self.expression_lib):
            self._exec_source(source, origin=f"expressionLib[{index}]")

    def _exec_source(self, source: str, origin: str) -> None:
        try:
            exec(compile(source, origin, "exec"), self._namespace)  # noqa: S102 - by design
        except Exception as exc:
            raise InlinePythonRequirementError(
                f"error loading inline Python library from {origin}: {exc}"
            ) from exc

    @property
    def namespace(self) -> Dict[str, Any]:
        """The evaluation namespace (library functions plus builtins)."""
        return self._namespace

    def defined_names(self) -> List[str]:
        """Names defined by the expression library (functions, constants)."""
        return [name for name in self._namespace
                if not name.startswith("__") and name != "__builtins__"]

    # --------------------------------------------------------------- evaluation

    def evaluate(self, expression: str, context: Dict[str, Any]) -> Any:
        """Evaluate one Python expression string against ``context``.

        ``context`` maps reference roots (``inputs``, ``self``, ``runtime``) to
        values.  Returns the evaluated value; for f-string expressions the result
        is the formatted string unless the f-string consists of exactly one
        replacement field, in which case the field's native value is returned
        (so numeric results stay numeric).
        """
        stripped = expression.strip()
        if not is_python_expression(stripped):
            # A bare parameter reference (or plain string) — reuse CWL semantics.
            refs = find_expressions(stripped)
            if len(refs) == 1 and refs[0].start == 0 and refs[0].end == len(stripped):
                return resolve_parameter_reference(refs[0].body, context)
            return self._interpolate_refs(stripped, context)

        inner = stripped[2:-1]  # strip f" ... " (or f' ... ')
        substituted, bindings = self._substitute_refs(inner, context)
        local_namespace = dict(self._namespace)
        local_namespace.update(bindings)
        local_namespace.update({"inputs": context.get("inputs", {}),
                                "runtime": context.get("runtime", {}),
                                "self": context.get("self")})

        # Single replacement field covering the whole expression: return the raw value.
        single = substituted.strip()
        if single.startswith("{") and single.endswith("}") and \
                single.count("{") == 1 and single.count("}") == 1:
            return self._eval(single[1:-1], local_namespace, expression)

        quote = '"""' if '"""' not in substituted else "'''"
        return self._eval(f"f{quote}{substituted}{quote}", local_namespace, expression)

    def validate_inputs(self, process: Process, job_order: Dict[str, Any],
                        runtime: Optional[Dict[str, Any]] = None) -> None:
        """Run every input's ``validate:`` expression; raise on the first failure."""
        context = {"inputs": job_order, "runtime": runtime or {}, "self": None}
        for param in process.inputs:
            if not param.validate:
                continue
            local_context = dict(context)
            local_context["self"] = job_order.get(param.id)
            try:
                self.evaluate(param.validate, local_context)
            except InlinePythonRequirementError:
                raise
            except Exception as exc:
                raise InputValidationError(
                    f"validation of input {param.id!r} failed: {exc}"
                ) from exc

    # ----------------------------------------------------------------- helpers

    def _substitute_refs(self, text: str, context: Dict[str, Any]):
        """Replace ``$(...)`` references with synthetic variable names."""
        bindings: Dict[str, Any] = {}
        pieces: List[str] = []
        cursor = 0
        for index, ref in enumerate(find_expressions(text)):
            if ref.kind != "paren":
                raise InlinePythonRequirementError(
                    "${...} blocks are not valid inside InlinePython expressions"
                )
            name = f"__cwl_ref_{index}"
            bindings[name] = resolve_parameter_reference(ref.body, context)
            pieces.append(text[cursor:ref.start])
            pieces.append(name)
            cursor = ref.end
        pieces.append(text[cursor:])
        return "".join(pieces), bindings

    def _interpolate_refs(self, text: str, context: Dict[str, Any]) -> Any:
        refs = find_expressions(text)
        if not refs:
            return text
        pieces: List[str] = []
        cursor = 0
        for ref in refs:
            pieces.append(text[cursor:ref.start])
            pieces.append(str(resolve_parameter_reference(ref.body, context)))
            cursor = ref.end
        pieces.append(text[cursor:])
        return "".join(pieces)

    def _eval(self, source: str, namespace: Dict[str, Any], original: str) -> Any:
        try:
            return eval(compile(source, "<inline-python>", "eval"), namespace)  # noqa: S307 - by design
        except InlinePythonRequirementError:
            raise
        except Exception as exc:
            raise InlinePythonRequirementError(
                f"error evaluating inline Python expression {original!r}: {exc}"
            ) from exc
