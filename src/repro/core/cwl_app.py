"""``CWLApp``: import a CWL CommandLineTool into a Parsl program (paper §III-A).

A ``CWLApp`` is constructed from a CWL ``CommandLineTool`` file (or an
already-loaded tool).  Calling it looks exactly like calling a Parsl app:

.. code-block:: python

    echo = CWLApp("echo.cwl")
    future = echo(message="Hello, World!", stdout="hello.txt")
    future.result()

What happens underneath, following the paper:

* the CWL definition supplies the input/output schema — inputs become keyword
  arguments, ``File``-typed inputs are converted to Parsl ``File`` objects (or
  accepted as ``DataFuture`` s from upstream apps, which is what lets CWLApps be
  chained without waiting),
* the command line is constructed from the tool's ``baseCommand``, ``arguments``
  and ``inputBinding`` definitions *on the execution side*, after upstream
  DataFutures have resolved,
* ``stdout`` / ``stderr`` and any statically determinable output files become
  ``DataFuture`` s on the returned ``AppFuture`` (``future.outputs``),
* if the tool carries an ``InlinePythonRequirement``, its per-input ``validate:``
  expressions run before the command executes and its expression library is
  available to ``arguments`` entries written in the paper's f-string syntax.
"""

from __future__ import annotations

import functools
import os
import shlex
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.inline_python import InlinePythonEvaluator, extract_inline_python, is_python_expression
from repro.cwl.command_line import build_command_line, fill_in_defaults
from repro.cwl.errors import InputValidationError, ValidationException
from repro.cwl.jobcache import JobCache, resolve_job_cache
from repro.cwl.loader import load_tool
from repro.cwl.schema import CommandLineTool
from repro.cwl.types import build_file_value, coerce_file_inputs, matches
from repro.cwl.validate import ensure_valid
from repro.parsl.apps.bash import remote_side_bash_executor
from repro.parsl.data_provider.files import File
from repro.parsl.dataflow.dflow import DataFlowKernel, DataFlowKernelLoader
from repro.parsl.dataflow.futures import AppFuture, DataFuture

__all__ = ["CWLApp", "cwl_tool_command", "cached_bash_executor"]


def cwl_tool_command(tool_raw: Dict[str, Any], source_path: Optional[str],
                     cwl_inputs: Dict[str, Any], **_parsl_kwargs: Any) -> str:
    """Execution-side body of a CWLApp (a Parsl *bash app* function).

    Receives the raw tool document plus the resolved CWL input values (Parsl has
    already replaced DataFutures with Files by the time this runs), rebuilds the
    tool model, runs InlinePython validation, evaluates InlinePython arguments,
    and returns the command line string for the bash executor to run.

    With a job cache attached (``cwl_cache_dir`` in the app kwargs — inputs
    are concrete on the execution side, which is what makes this the right
    place for the workflow bridge's cache check), a hit restores the cached
    output files into the working directory and returns a trivial command
    that merely replays the recorded stdout/stderr, so the tool's own
    subprocess never runs; a miss leaves instructions in ``cwl_cache_ctx``
    for :func:`cached_bash_executor` to ingest the results afterwards.
    """
    from repro.cwl.loader import load_document  # local import: runs inside workers

    tool = load_document(dict(tool_raw), base_dir=os.path.dirname(source_path) if source_path else None)
    if not isinstance(tool, CommandLineTool):
        raise ValidationException("CWLApp payload must be a CommandLineTool")

    job_order: Dict[str, Any] = {}
    for key, value in cwl_inputs.items():
        job_order[key] = _to_cwl_value(value)
    job_order = fill_in_defaults(tool.inputs, job_order)
    job_order = {k: coerce_file_inputs(v) for k, v in job_order.items()}

    # Honour the tool's ResourceRequirement so $(runtime.cores) / $(runtime.ram)
    # expressions see the granted resources on the Parsl path too.
    from repro.cwl.runtime import RuntimeContext

    runtime = RuntimeContext().with_resources(tool).runtime_object(os.getcwd(), os.getcwd())

    cache_dir = _parsl_kwargs.get("cwl_cache_dir")
    cache_ctx = _parsl_kwargs.get("cwl_cache_ctx")
    cache_note = _parsl_kwargs.get("cwl_cache_note")
    if cache_dir:
        from repro.cwl.jobcache import get_job_cache, job_key

        cache = get_job_cache(cache_dir)
        key = job_key(tool, job_order, cores=runtime["cores"], ram_mb=runtime["ram"])
        entry = cache.lookup(key)
        if isinstance(cache_note, dict):
            cache_note["cache"] = "hit" if entry is not None else "miss"
        if entry is not None:
            return _cache_hit_command(cache, entry)
        if isinstance(cache_ctx, dict):
            cache_ctx.update(cache_dir=cache_dir, key=key, outdir=os.getcwd())

    # The parsl path always uses the compiled pipeline — this call is the
    # switch: build_command_line/collect_output pick up tool.compiled.  The
    # shared library scope and template cache are process-wide, so repeated
    # invocations of the same tool in one worker skip all parsing.
    from repro.cwl.expressions.compiler import precompile_process

    precompile_process(tool)

    inline_python = extract_inline_python(tool)
    evaluator: Optional[InlinePythonEvaluator] = None
    if inline_python is not None:
        evaluator = InlinePythonEvaluator(
            expression_lib=inline_python.get("expressionLib", []),
            external_files=inline_python.get("externalPythonFiles", []),
        )
        evaluator.validate_inputs(tool, job_order, runtime)

    # Evaluate InlinePython arguments before handing the tool to the generic
    # (JavaScript-based) command-line builder.
    if evaluator is not None and tool.arguments:
        context = {"inputs": job_order, "runtime": runtime, "self": None}
        rewritten: List[Any] = []
        for argument in tool.arguments:
            if isinstance(argument, str) and is_python_expression(argument):
                rewritten.append(str(evaluator.evaluate(argument, context)))
            else:
                rewritten.append(argument)
        tool.arguments = rewritten

    parts = build_command_line(tool, job_order, runtime)
    return parts.joined()


def _to_cwl_value(value: Any) -> Any:
    """Convert Parsl-side values (File, paths, plain scalars) to CWL job-order values."""
    if isinstance(value, File):
        return build_file_value(value.filepath)
    if isinstance(value, list):
        return [_to_cwl_value(item) for item in value]
    return value


def _cache_hit_command(cache: JobCache, entry: Any) -> str:
    """Restore a cached invocation into the cwd; return its replay command.

    Output files are copy-staged (the cwd is shared, and a later run may
    rewrite them in place); the recorded stdout/stderr are *not* staged —
    the bash executor opens and truncates those redirections itself, so the
    replay command regenerates them by ``cat``-ing the stored bodies.  The
    recorded exit code is replayed too, so a tool whose non-zero exit the
    executor would reject behaves identically warm and cold.
    """
    outdir = os.getcwd()
    stdout_name = entry.stream_name("stdout")
    stderr_name = entry.stream_name("stderr")
    cache.restore(entry, outdir,
                  exclude=tuple(name for name in (stdout_name, stderr_name) if name),
                  prefer_copy=True)
    replay: List[str] = []
    stdout_body = cache.cas_body(entry, stdout_name) if stdout_name else None
    stderr_body = cache.cas_body(entry, stderr_name) if stderr_name else None
    if stdout_body:
        replay.append(f"cat {shlex.quote(stdout_body)}")
    if stderr_body:
        replay.append(f"cat {shlex.quote(stderr_body)} 1>&2")
    if entry.exit_code:
        replay.append(f"exit {int(entry.exit_code)}")
    return "; ".join(replay) or ":"


def cached_bash_executor(func: Any, *args: Any, **kwargs: Any) -> int:
    """Bash-app executor wrapper that ingests results into the job cache.

    Runs the standard :func:`remote_side_bash_executor` with a mutable
    ``cwl_cache_ctx`` injected for :func:`cwl_tool_command`; when the body
    reports a cache miss (and the command then succeeded), the declared
    output files plus the stdout/stderr redirections are stored under the
    job's key, warming the store for every engine that shares it.
    """
    ctx: Dict[str, Any] = {}
    kwargs = dict(kwargs)
    kwargs["cwl_cache_ctx"] = ctx
    stdout_spec = kwargs.get("stdout")
    stderr_spec = kwargs.get("stderr")
    declared_outputs = list(kwargs.get("outputs") or [])

    exit_code = remote_side_bash_executor(func, *args, **kwargs)

    if ctx.get("key"):
        try:
            _store_bridge_results(ctx, declared_outputs, stdout_spec, stderr_spec,
                                  exit_code)
        except Exception:  # caching must never fail a successful job
            pass
    return exit_code


def _store_bridge_results(ctx: Dict[str, Any], declared_outputs: List[Any],
                          stdout_spec: Any, stderr_spec: Any,
                          exit_code: int) -> None:
    from repro.cwl.jobcache import relative_to_outdir

    cache = resolve_job_cache(ctx["cache_dir"])
    outdir = ctx["outdir"]

    def spec_path(spec: Any) -> Optional[str]:
        if spec is None:
            return None
        path = os.fspath(spec[0] if isinstance(spec, tuple) else spec)
        return path if os.path.isabs(path) else os.path.join(outdir, path)

    paths = [f.filepath if hasattr(f, "filepath") else os.fspath(f)
             for f in declared_outputs]
    stdout_path = spec_path(stdout_spec)
    stderr_path = spec_path(stderr_spec)
    for stream in (stdout_path, stderr_path):
        if stream and os.path.isfile(stream):
            paths.append(stream)

    cache.store_files(ctx["key"], outdir, paths,
                      stdout_name=relative_to_outdir(stdout_path, outdir),
                      stderr_name=relative_to_outdir(stderr_path, outdir),
                      exit_code=exit_code)


class CWLApp:
    """A CWL CommandLineTool callable as a Parsl app."""

    def __init__(
        self,
        cwl_file: Union[str, os.PathLike, CommandLineTool],
        data_flow_kernel: Optional[DataFlowKernel] = None,
        executors: Union[str, Sequence[str], None] = "all",
        validate_document: bool = True,
        job_cache: Union[None, bool, str, JobCache] = None,
    ) -> None:
        if isinstance(cwl_file, CommandLineTool):
            self.tool = cwl_file
            self.cwl_path = cwl_file.source_path
        else:
            self.cwl_path = os.fspath(cwl_file)
            self.tool = load_tool(self.cwl_path)
        if validate_document:
            ensure_valid(self.tool)
            # Validate-time compilation: submission-side expression use (static
            # glob prediction, output collection) reuses the pinned templates.
            from repro.cwl.expressions.compiler import precompile_process

            precompile_process(self.tool)
        self.data_flow_kernel = data_flow_kernel
        #: Content-addressed result reuse (see :mod:`repro.cwl.jobcache`); the
        #: probe runs on the execution side, where upstream futures are
        #: concrete, so chained/bridged apps cache correctly too.  The
        #: hit/miss outcome travels back through an in-process note dict, so
        #: on process-based executors (ProcessPoolExecutor, HTEX) results are
        #: still cached and restored, but the submit side cannot observe the
        #: outcome: ``JobEvent.cache`` / ``cache_stats`` read as no caching.
        self.job_cache: Optional[JobCache] = resolve_job_cache(job_cache)
        self.executor_label = executors if isinstance(executors, str) or executors is None \
            else (executors[0] if executors else "all")
        if self.executor_label is None:
            self.executor_label = "all"
        self._inline_python = extract_inline_python(self.tool)
        self.__name__ = self.tool.id or os.path.basename(self.cwl_path or "cwl_app")
        self.__doc__ = self.tool.doc or f"CWLApp wrapping {self.__name__}"

    # ------------------------------------------------------------- introspection

    @property
    def input_names(self) -> List[str]:
        """Names of the tool's declared inputs (the valid keyword arguments)."""
        return [param.id for param in self.tool.inputs]

    @property
    def output_names(self) -> List[str]:
        """Names of the tool's declared outputs."""
        return [param.id for param in self.tool.outputs]

    @property
    def required_inputs(self) -> List[str]:
        """Inputs that must be supplied at call time."""
        return [param.id for param in self.tool.inputs
                if not (param.type.is_optional or param.has_default)]

    def describe(self) -> Dict[str, Any]:
        """A summary of the imported tool (used by examples and the CLI)."""
        return {
            "id": self.tool.id,
            "baseCommand": self.tool.base_command,
            "inputs": {p.id: str(p.type) for p in self.tool.inputs},
            "outputs": {p.id: str(p.type) for p in self.tool.outputs},
            "stdout": self.tool.stdout,
            "inline_python": bool(self._inline_python),
            "source": self.cwl_path,
        }

    # ------------------------------------------------------------------ calling

    def __call__(self, **kwargs: Any) -> AppFuture:
        """Invoke the tool through Parsl; returns an :class:`AppFuture`.

        Keyword arguments are the tool's declared inputs; additionally the Parsl
        conventions ``stdout=``, ``stderr=`` override the tool's redirections
        and any unknown keyword raises immediately.
        """
        dfk = self.data_flow_kernel or DataFlowKernelLoader.dfk()

        stdout_override = kwargs.pop("stdout", None)
        stderr_override = kwargs.pop("stderr", None)

        declared = set(self.input_names)
        unknown = [key for key in kwargs if key not in declared]
        if unknown:
            raise InputValidationError(
                f"unknown input(s) {sorted(unknown)} for CWL tool {self.__name__!r}; "
                f"declared inputs are {sorted(declared)}"
            )
        missing = [name for name in self.required_inputs if name not in kwargs]
        if missing:
            raise InputValidationError(
                f"missing required input(s) {sorted(missing)} for CWL tool {self.__name__!r}"
            )

        # Convert values: File-typed inputs given as paths become Parsl Files;
        # DataFutures and Files pass straight through (dependencies / staging).
        cwl_inputs: Dict[str, Any] = {}
        for param in self.tool.inputs:
            if param.id not in kwargs:
                continue
            value = kwargs[param.id]
            cwl_inputs[param.id] = self._convert_input(value, wants_file=param.type.is_file)
        self._validate_concrete_inputs(cwl_inputs)

        stdout_path = stdout_override or self.tool.stdout
        stderr_path = stderr_override or self.tool.stderr
        named_outputs = self._predict_output_files(cwl_inputs, stdout_path, stderr_path)
        output_files = [file_obj for _name, file_obj in named_outputs]

        app_kwargs: Dict[str, Any] = {"cwl_inputs": cwl_inputs}
        if stdout_path:
            app_kwargs["stdout"] = stdout_path
        if stderr_path:
            app_kwargs["stderr"] = stderr_path
        if output_files:
            app_kwargs["outputs"] = output_files
        executor_fn = remote_side_bash_executor
        cache_note: Optional[Dict[str, str]] = None
        if self.job_cache is not None:
            app_kwargs["cwl_cache_dir"] = self.job_cache.cache_dir
            # Per-call outcome channel: filled execution-side, read off the
            # future by the workflow bridge to tag its per-job end events.
            cache_note = {}
            app_kwargs["cwl_cache_note"] = cache_note
            executor_fn = cached_bash_executor

        body = functools.partial(cwl_tool_command, self.tool.raw, self.cwl_path)
        functools.update_wrapper(body, cwl_tool_command)
        body.__name__ = self.__name__  # type: ignore[attr-defined]
        wrapped = functools.partial(executor_fn, body)
        functools.update_wrapper(wrapped, body)

        future = dfk.submit(
            wrapped,
            (),
            app_kwargs,
            app_type="bash",
            executor_label=self.executor_label,
        )
        # Attach a name -> DataFuture mapping so callers (and the workflow
        # bridge) can look up outputs by their CWL output id rather than index.
        named: Dict[str, DataFuture] = {}
        for (name, _file_obj), data_future in zip(named_outputs, future.outputs):
            named.setdefault(name, data_future)
        future.cwl_outputs = named  # type: ignore[attr-defined]
        if cache_note is not None:
            future.cwl_cache_note = cache_note  # type: ignore[attr-defined]
        return future

    # ----------------------------------------------------------------- helpers

    def _convert_input(self, value: Any, wants_file: bool) -> Any:
        if isinstance(value, (DataFuture, File)):
            return value
        if isinstance(value, list):
            return [self._convert_input(item, wants_file) for item in value]
        if wants_file and isinstance(value, (str, os.PathLike)):
            return File(os.fspath(value))
        if wants_file and isinstance(value, dict) and value.get("class") == "File":
            return File(value.get("path") or value.get("location", ""))
        return value

    def _validate_concrete_inputs(self, cwl_inputs: Dict[str, Any]) -> None:
        """Fail fast on concrete values that cannot match the declared type."""
        for param in self.tool.inputs:
            if param.id not in cwl_inputs:
                continue
            value = cwl_inputs[param.id]
            if isinstance(value, (DataFuture, File)) or (
                isinstance(value, list) and any(isinstance(v, (DataFuture, File)) for v in value)
            ):
                continue  # resolved and staged later
            if param.type.is_file:
                continue
            if not matches(value, param.type):
                raise InputValidationError(
                    f"input {param.id!r} value {value!r} does not match declared type {param.type}"
                )

    def _predict_output_files(self, cwl_inputs: Dict[str, Any],
                              stdout_path: Optional[str],
                              stderr_path: Optional[str]) -> List[tuple]:
        """Determine output file names that are knowable at submission time.

        Returns ``(output_id, File)`` pairs.  Covers the common cases used
        throughout the paper: ``type: stdout`` / ``type: stderr`` outputs and
        ``outputBinding.glob`` patterns that are either literal file names or
        single ``$(inputs.x)`` references to an input provided in this call (or
        a default).
        """
        job_for_defaults = fill_in_defaults(self.tool.inputs, dict(cwl_inputs))
        predicted: List[tuple] = []
        for param in self.tool.outputs:
            if param.raw_type == "stdout":
                if stdout_path:
                    predicted.append((param.id, File(stdout_path)))
                continue
            if param.raw_type == "stderr":
                if stderr_path:
                    predicted.append((param.id, File(stderr_path)))
                continue
            binding = param.output_binding
            if binding is None or binding.glob is None:
                continue
            globs = binding.glob if isinstance(binding.glob, list) else [binding.glob]
            for pattern in globs:
                resolved = self._resolve_static_glob(pattern, job_for_defaults)
                if resolved is not None and not any(ch in resolved for ch in "*?["):
                    predicted.append((param.id, File(resolved)))
        return predicted

    @staticmethod
    def _resolve_static_glob(pattern: str, job_order: Dict[str, Any]) -> Optional[str]:
        if not isinstance(pattern, str):
            return None
        pattern = pattern.strip()
        if pattern.startswith("$(") and pattern.endswith(")"):
            body = pattern[2:-1].strip()
            if body.startswith("inputs."):
                value = job_order.get(body[len("inputs."):])
                if isinstance(value, File):
                    return value.filepath
                if isinstance(value, str):
                    return value
                return None
            return None
        if "$(" in pattern or "${" in pattern:
            return None
        return pattern

    def __repr__(self) -> str:
        return f"<CWLApp {self.__name__!r} from {self.cwl_path!r}>"
