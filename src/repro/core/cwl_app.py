"""``CWLApp``: import a CWL CommandLineTool into a Parsl program (paper §III-A).

A ``CWLApp`` is constructed from a CWL ``CommandLineTool`` file (or an
already-loaded tool).  Calling it looks exactly like calling a Parsl app:

.. code-block:: python

    echo = CWLApp("echo.cwl")
    future = echo(message="Hello, World!", stdout="hello.txt")
    future.result()

What happens underneath, following the paper:

* the CWL definition supplies the input/output schema — inputs become keyword
  arguments, ``File``-typed inputs are converted to Parsl ``File`` objects (or
  accepted as ``DataFuture`` s from upstream apps, which is what lets CWLApps be
  chained without waiting),
* the command line is constructed from the tool's ``baseCommand``, ``arguments``
  and ``inputBinding`` definitions *on the execution side*, after upstream
  DataFutures have resolved,
* ``stdout`` / ``stderr`` and any statically determinable output files become
  ``DataFuture`` s on the returned ``AppFuture`` (``future.outputs``),
* if the tool carries an ``InlinePythonRequirement``, its per-input ``validate:``
  expressions run before the command executes and its expression library is
  available to ``arguments`` entries written in the paper's f-string syntax.
"""

from __future__ import annotations

import functools
import os
import shlex
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.inline_python import InlinePythonEvaluator, extract_inline_python, is_python_expression
from repro.cwl.command_line import build_command_line, fill_in_defaults
from repro.cwl.errors import InputValidationError, ValidationException
from repro.cwl.jobcache import JobCache, resolve_job_cache
from repro.cwl.loader import load_tool
from repro.cwl.schema import CommandLineTool
from repro.cwl.types import build_file_value, coerce_file_inputs, matches
from repro.cwl.validate import ensure_valid
from repro.parsl.apps.bash import remote_side_bash_executor
from repro.parsl.data_provider.files import File
from repro.parsl.errors import BashExitFailure
from repro.parsl.dataflow.dflow import DataFlowKernel, DataFlowKernelLoader
from repro.parsl.dataflow.futures import AppFuture, DataFuture

__all__ = ["CWLApp", "cwl_tool_command", "cached_bash_executor",
           "resilient_bash_executor"]


def cwl_tool_command(tool_raw: Dict[str, Any], source_path: Optional[str],
                     cwl_inputs: Dict[str, Any], **_parsl_kwargs: Any) -> str:
    """Execution-side body of a CWLApp (a Parsl *bash app* function).

    Receives the raw tool document plus the resolved CWL input values (Parsl has
    already replaced DataFutures with Files by the time this runs), rebuilds the
    tool model, runs InlinePython validation, evaluates InlinePython arguments,
    and returns the command line string for the bash executor to run.

    With a job cache attached (``cwl_cache_dir`` in the app kwargs — inputs
    are concrete on the execution side, which is what makes this the right
    place for the workflow bridge's cache check), a hit restores the cached
    output files into the working directory and returns a trivial command
    that merely replays the recorded stdout/stderr, so the tool's own
    subprocess never runs; a miss leaves instructions in ``cwl_cache_ctx``
    for :func:`cached_bash_executor` to ingest the results afterwards.
    """
    from repro.cwl.loader import load_document  # local import: runs inside workers

    tool = load_document(dict(tool_raw), base_dir=os.path.dirname(source_path) if source_path else None)
    if not isinstance(tool, CommandLineTool):
        raise ValidationException("CWLApp payload must be a CommandLineTool")

    job_order: Dict[str, Any] = {}
    for key, value in cwl_inputs.items():
        job_order[key] = _to_cwl_value(value)
    job_order = fill_in_defaults(tool.inputs, job_order)
    job_order = {k: coerce_file_inputs(v) for k, v in job_order.items()}

    # Honour the tool's ResourceRequirement so $(runtime.cores) / $(runtime.ram)
    # expressions see the granted resources on the Parsl path too.
    from repro.cwl.runtime import RuntimeContext

    runtime = RuntimeContext().with_resources(tool).runtime_object(os.getcwd(), os.getcwd())

    cache_dir = _parsl_kwargs.get("cwl_cache_dir")
    cache_ctx = _parsl_kwargs.get("cwl_cache_ctx")
    cache_note = _parsl_kwargs.get("cwl_cache_note")
    if cache_dir:
        from repro.cwl.jobcache import get_job_cache, job_key

        cache = get_job_cache(cache_dir)
        key = job_key(tool, job_order, cores=runtime["cores"], ram_mb=runtime["ram"])
        entry = cache.lookup(key)
        if isinstance(cache_note, dict):
            cache_note["cache"] = "hit" if entry is not None else "miss"
        if entry is not None:
            return _cache_hit_command(cache, entry)
        if isinstance(cache_ctx, dict):
            cache_ctx.update(cache_dir=cache_dir, key=key, outdir=os.getcwd())

    # The parsl path defaults to the compiled pipeline — this call is the
    # switch: build_command_line/collect_output pick up tool.compiled.  The
    # shared library scope and template cache are process-wide, so repeated
    # invocations of the same tool in one worker skip all parsing.  With
    # ``cwl_compile_expressions: False`` in the app kwargs (the conformance
    # matrix's uncompiled leg) expressions go through a fresh uncached
    # evaluator instead, exactly like the reference runner.
    uncompiled_evaluator = None
    if _parsl_kwargs.get("cwl_compile_expressions", True) is False:
        uncompiled_evaluator = _uncompiled_evaluator(tool)
    else:
        from repro.cwl.expressions.compiler import precompile_process

        precompile_process(tool)

    inline_python = extract_inline_python(tool)
    evaluator: Optional[InlinePythonEvaluator] = None
    if inline_python is not None:
        evaluator = InlinePythonEvaluator(
            expression_lib=inline_python.get("expressionLib", []),
            external_files=inline_python.get("externalPythonFiles", []),
        )
        evaluator.validate_inputs(tool, job_order, runtime)

    # Evaluate InlinePython arguments before handing the tool to the generic
    # (JavaScript-based) command-line builder.
    if evaluator is not None and tool.arguments:
        context = {"inputs": job_order, "runtime": runtime, "self": None}
        rewritten: List[Any] = []
        for argument in tool.arguments:
            if isinstance(argument, str) and is_python_expression(argument):
                rewritten.append(str(evaluator.evaluate(argument, context)))
            else:
                rewritten.append(argument)
        tool.arguments = rewritten

    parts = build_command_line(tool, job_order, runtime, uncompiled_evaluator)
    command = parts.joined()
    # The runners pass EnvVarRequirement variables through the subprocess
    # environment; the bash executor runs with a fixed environment, so the
    # variables are exported in-shell instead (sorted for determinism).
    if parts.environment:
        exports = "; ".join(
            f"export {name}={shlex.quote(str(value))}"
            for name, value in sorted(parts.environment.items()))
        command = f"{exports}; {command}"
    # The bash executor only wires stdout/stderr redirections; a ``stdin:``
    # field must become part of the shell command itself or the tool would
    # silently read from the worker's inherited stdin (a conformance
    # divergence the stdin corpus cases guard).
    if parts.stdin:
        command += f" < {shlex.quote(parts.stdin)}"
    # Wall-clock timeout: the bash executor has no reaping machinery of its
    # own, so the limit is enforced in-shell with coreutils ``timeout`` (the
    # sub-shell keeps redirections/exports inside the timed region).  Exit
    # 124 travels back as BashExitFailure and is mapped to
    # :class:`~repro.cwl.errors.JobTimeout` by :func:`resilient_bash_executor`,
    # matching the runner engines' SIGTERM→SIGKILL reap classification.
    timeout_s = _parsl_kwargs.get("cwl_timeout_s")
    if timeout_s:
        command = (f"timeout -k 2 {float(timeout_s):g} /bin/bash -c "
                   f"{shlex.quote(command)}")
    # The executor treats any non-zero exit as failure; tools that declare
    # additional successCodes remap them to 0 in-shell so the Parsl path
    # accepts exactly the exits the runners accept.
    success_codes = tuple(tool.success_codes or (0,))
    if set(success_codes) != {0}:
        allowed = " ".join(str(int(code)) for code in success_codes)
        # Strict mapping both ways: a permitted code exits 0, and a code
        # outside successCodes fails even when it is 0 (the runners raise
        # JobFailure for exit 0 when 0 is not permitted).
        command = (f"{command}; __cwl_ec=$?; for __cwl_ok in {allowed}; do "
                   f"[ \"$__cwl_ec\" -eq \"$__cwl_ok\" ] && exit 0; done; "
                   f"[ \"$__cwl_ec\" -eq 0 ] && exit 1; exit $__cwl_ec")
    return command


def _uncompiled_evaluator(tool: CommandLineTool):
    """A fresh cwltool-style evaluator honouring the tool's expressionLib."""
    from repro.cwl.expressions.evaluator import ExpressionEvaluator

    js_req = tool.get_requirement("InlineJavascriptRequirement")
    expression_lib = list(js_req.get("expressionLib", [])) if js_req else []
    return ExpressionEvaluator(expression_lib=expression_lib, js_enabled=True)


def _to_cwl_value(value: Any) -> Any:
    """Convert Parsl-side values (File, paths, plain scalars) to CWL job-order values."""
    if isinstance(value, File):
        return build_file_value(value.filepath)
    if isinstance(value, list):
        return [_to_cwl_value(item) for item in value]
    return value


def _cache_hit_command(cache: JobCache, entry: Any) -> str:
    """Restore a cached invocation into the cwd; return its replay command.

    Output files are copy-staged (the cwd is shared, and a later run may
    rewrite them in place); the recorded stdout/stderr are *not* staged —
    the bash executor opens and truncates those redirections itself, so the
    replay command regenerates them by ``cat``-ing the stored bodies.  The
    replay itself always exits 0: entries are only ever stored for
    successful invocations, so a recorded non-zero code is necessarily one
    the tool permits via ``successCodes``.
    """
    outdir = os.getcwd()
    stdout_name = entry.stream_name("stdout")
    stderr_name = entry.stream_name("stderr")
    cache.restore(entry, outdir,
                  exclude=tuple(name for name in (stdout_name, stderr_name) if name),
                  prefer_copy=True)
    replay: List[str] = []
    stdout_body = cache.cas_body(entry, stdout_name) if stdout_name else None
    stderr_body = cache.cas_body(entry, stderr_name) if stderr_name else None
    if stdout_body:
        replay.append(f"cat {shlex.quote(stdout_body)}")
    if stderr_body:
        replay.append(f"cat {shlex.quote(stderr_body)} 1>&2")
    # Every store site runs only after a *successful* invocation (failed
    # jobs are never ingested), so a hit is a recorded success by
    # construction and the replay always exits 0 — whether the entry records
    # a permitted non-zero code (runner-written, successCodes) or the
    # post-remap 0 this path's own executor observed.
    return "; ".join(replay) or ":"


def cached_bash_executor(func: Any, *args: Any, **kwargs: Any) -> int:
    """Bash-app executor wrapper that ingests results into the job cache.

    Runs the standard :func:`remote_side_bash_executor` with a mutable
    ``cwl_cache_ctx`` injected for :func:`cwl_tool_command`; when the body
    reports a cache miss (and the command then succeeded), the declared
    output files plus the stdout/stderr redirections are stored under the
    job's key, warming the store for every engine that shares it.
    """
    ctx: Dict[str, Any] = {}
    kwargs = dict(kwargs)
    kwargs["cwl_cache_ctx"] = ctx
    stdout_spec = kwargs.get("stdout")
    stderr_spec = kwargs.get("stderr")
    declared_outputs = list(kwargs.get("outputs") or [])

    exit_code = remote_side_bash_executor(func, *args, **kwargs)

    if ctx.get("key"):
        try:
            _store_bridge_results(ctx, declared_outputs, stdout_spec, stderr_spec,
                                  exit_code)
        except Exception:  # caching must never fail a successful job
            pass
    return exit_code


def resilient_bash_executor(func: Any, *args: Any, **kwargs: Any) -> int:
    """Bash-app executor adding retries, fault injection and timeout mapping.

    The fault-tolerance layer's execution-side half for the Parsl engines:
    the same :func:`~repro.cwl.retry.execute_with_retries` loop the runner
    engines use wraps the whole inner executor call, so injected faults fire
    *before* the execution-side cache probe (``cwl_tool_command`` runs inside
    the inner executor) and every re-attempt re-opens (and truncates) the
    stdout/stderr redirections.  A ``timeout``-killed command (exit 124 with
    ``cwl_timeout_s`` configured) is re-raised as
    :class:`~repro.cwl.errors.JobTimeout` so retry classification and the
    conformance exit-class contract match the runner engines.  Retries are
    recorded into the in-process ``cwl_retry_note`` list, which the workflow
    bridge reads off the future to emit ``"retry"`` events.
    """
    from repro.cwl.errors import JobTimeout
    from repro.cwl.retry import execute_with_retries

    kwargs = dict(kwargs)
    policy = kwargs.pop("cwl_retry_policy", None)
    plan = kwargs.pop("cwl_fault_plan", None)
    retry_note = kwargs.pop("cwl_retry_note", None)
    job_name = kwargs.pop("cwl_job_name", None) or getattr(func, "__name__", "<tool>")
    timeout_s = kwargs.get("cwl_timeout_s")
    inner = cached_bash_executor if kwargs.get("cwl_cache_dir") else remote_side_bash_executor

    def attempt(_n: int) -> int:
        try:
            # A fresh kwargs copy per attempt: the caching wrapper injects a
            # mutable cwl_cache_ctx into its own copy each time.
            return inner(func, *args, **dict(kwargs))
        except BashExitFailure as exc:
            if timeout_s and exc.exitcode == 124:
                raise JobTimeout(job_name, float(timeout_s)) from exc
            raise

    def on_retry(attempt_no: int, exc: BaseException, delay: float) -> None:
        if retry_note is not None:
            retry_note.append({"attempt": attempt_no, "error": str(exc),
                               "delay_s": delay})

    return execute_with_retries(attempt, policy=policy, job=job_name,
                                fault_plan=plan, on_retry=on_retry)


def _store_bridge_results(ctx: Dict[str, Any], declared_outputs: List[Any],
                          stdout_spec: Any, stderr_spec: Any,
                          exit_code: int) -> None:
    from repro.cwl.jobcache import relative_to_outdir

    cache = resolve_job_cache(ctx["cache_dir"])
    outdir = ctx["outdir"]

    def spec_path(spec: Any) -> Optional[str]:
        if spec is None:
            return None
        path = os.fspath(spec[0] if isinstance(spec, tuple) else spec)
        return path if os.path.isabs(path) else os.path.join(outdir, path)

    paths = [f.filepath if hasattr(f, "filepath") else os.fspath(f)
             for f in declared_outputs]
    stdout_path = spec_path(stdout_spec)
    stderr_path = spec_path(stderr_spec)
    for stream in (stdout_path, stderr_path):
        if stream and os.path.isfile(stream):
            paths.append(stream)

    cache.store_files(ctx["key"], outdir, paths,
                      stdout_name=relative_to_outdir(stdout_path, outdir),
                      stderr_name=relative_to_outdir(stderr_path, outdir),
                      exit_code=exit_code)


class CWLApp:
    """A CWL CommandLineTool callable as a Parsl app."""

    def __init__(
        self,
        cwl_file: Union[str, os.PathLike, CommandLineTool],
        data_flow_kernel: Optional[DataFlowKernel] = None,
        executors: Union[str, Sequence[str], None] = "all",
        validate_document: bool = True,
        job_cache: Union[None, bool, str, JobCache] = None,
        compile_expressions: Optional[bool] = None,
        retry_policy: Optional[Any] = None,
        fault_plan: Optional[Any] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        if isinstance(cwl_file, CommandLineTool):
            self.tool = cwl_file
            self.cwl_path = cwl_file.source_path
        else:
            self.cwl_path = os.fspath(cwl_file)
            self.tool = load_tool(self.cwl_path)
        #: Tri-state like :attr:`repro.cwl.runtime.RuntimeContext.compile_expressions`:
        #: ``None``/``True`` use the compiled pipeline (the Parsl default),
        #: ``False`` evaluates every expression with a fresh uncached engine.
        self.compile_expressions = compile_expressions is not False
        if validate_document:
            ensure_valid(self.tool)
        if validate_document and self.compile_expressions:
            # Validate-time compilation: submission-side expression use (static
            # glob prediction, output collection) reuses the pinned templates.
            from repro.cwl.expressions.compiler import precompile_process

            precompile_process(self.tool)
        self.data_flow_kernel = data_flow_kernel
        #: Content-addressed result reuse (see :mod:`repro.cwl.jobcache`); the
        #: probe runs on the execution side, where upstream futures are
        #: concrete, so chained/bridged apps cache correctly too.  The
        #: hit/miss outcome travels back through an in-process note dict, so
        #: on process-based executors (ProcessPoolExecutor, HTEX) results are
        #: still cached and restored, but the submit side cannot observe the
        #: outcome: ``JobEvent.cache`` / ``cache_stats`` read as no caching.
        self.job_cache: Optional[JobCache] = resolve_job_cache(job_cache)
        #: Fault-tolerance options (see :mod:`repro.cwl.retry` /
        #: :mod:`repro.cwl.faults`): when any is set the app routes through
        #: :func:`resilient_bash_executor`, which retries the whole
        #: execution-side call (cache probe included) under the policy.
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.timeout_s = timeout_s
        self.executor_label = executors if isinstance(executors, str) or executors is None \
            else (executors[0] if executors else "all")
        if self.executor_label is None:
            self.executor_label = "all"
        self._inline_python = extract_inline_python(self.tool)
        self.__name__ = self.tool.id or os.path.basename(self.cwl_path or "cwl_app")
        self.__doc__ = self.tool.doc or f"CWLApp wrapping {self.__name__}"

    # ------------------------------------------------------------- introspection

    @property
    def input_names(self) -> List[str]:
        """Names of the tool's declared inputs (the valid keyword arguments)."""
        return [param.id for param in self.tool.inputs]

    @property
    def output_names(self) -> List[str]:
        """Names of the tool's declared outputs."""
        return [param.id for param in self.tool.outputs]

    @property
    def required_inputs(self) -> List[str]:
        """Inputs that must be supplied at call time."""
        return [param.id for param in self.tool.inputs
                if not (param.type.is_optional or param.has_default)]

    def describe(self) -> Dict[str, Any]:
        """A summary of the imported tool (used by examples and the CLI)."""
        return {
            "id": self.tool.id,
            "baseCommand": self.tool.base_command,
            "inputs": {p.id: str(p.type) for p in self.tool.inputs},
            "outputs": {p.id: str(p.type) for p in self.tool.outputs},
            "stdout": self.tool.stdout,
            "inline_python": bool(self._inline_python),
            "source": self.cwl_path,
        }

    # ------------------------------------------------------------------ calling

    def __call__(self, **kwargs: Any) -> AppFuture:
        """Invoke the tool through Parsl; returns an :class:`AppFuture`.

        Keyword arguments are the tool's declared inputs; additionally the Parsl
        conventions ``stdout=``, ``stderr=`` override the tool's redirections
        and any unknown keyword raises immediately.
        """
        dfk = self.data_flow_kernel or DataFlowKernelLoader.dfk()

        stdout_override = kwargs.pop("stdout", None)
        stderr_override = kwargs.pop("stderr", None)

        declared = set(self.input_names)
        unknown = [key for key in kwargs if key not in declared]
        if unknown:
            raise InputValidationError(
                f"unknown input(s) {sorted(unknown)} for CWL tool {self.__name__!r}; "
                f"declared inputs are {sorted(declared)}"
            )
        missing = [name for name in self.required_inputs if name not in kwargs]
        if missing:
            raise InputValidationError(
                f"missing required input(s) {sorted(missing)} for CWL tool {self.__name__!r}"
            )

        # Convert values: File-typed inputs given as paths become Parsl Files;
        # DataFutures and Files pass straight through (dependencies / staging).
        cwl_inputs: Dict[str, Any] = {}
        for param in self.tool.inputs:
            if param.id not in kwargs:
                continue
            value = kwargs[param.id]
            cwl_inputs[param.id] = self._convert_input(value, wants_file=param.type.is_file)
        self._validate_concrete_inputs(cwl_inputs)

        # stdout:/stderr: may be expressions; anything whose referenced
        # inputs are concrete at submission time is evaluated here, so the
        # redirection lands on the *evaluated* file name exactly as it does
        # under the runner engines.
        job_for_defaults = fill_in_defaults(self.tool.inputs, dict(cwl_inputs))
        stdout_path = stdout_override or self._resolve_static_std(
            self.tool.stdout, job_for_defaults)
        stderr_path = stderr_override or self._resolve_static_std(
            self.tool.stderr, job_for_defaults)
        named_outputs = self._predict_output_files(cwl_inputs, stdout_path, stderr_path)
        output_files = [file_obj for _name, file_obj in named_outputs]

        app_kwargs: Dict[str, Any] = {"cwl_inputs": cwl_inputs}
        if not self.compile_expressions:
            app_kwargs["cwl_compile_expressions"] = False
        if stdout_path:
            app_kwargs["stdout"] = stdout_path
        if stderr_path:
            app_kwargs["stderr"] = stderr_path
        if output_files:
            app_kwargs["outputs"] = output_files
        executor_fn = remote_side_bash_executor
        cache_note: Optional[Dict[str, str]] = None
        if self.job_cache is not None:
            app_kwargs["cwl_cache_dir"] = self.job_cache.cache_dir
            # Per-call outcome channel: filled execution-side, read off the
            # future by the workflow bridge to tag its per-job end events.
            cache_note = {}
            app_kwargs["cwl_cache_note"] = cache_note
            executor_fn = cached_bash_executor
        retry_note: Optional[List[Dict[str, Any]]] = None
        if (self.retry_policy is not None or self.fault_plan is not None
                or self.timeout_s):
            if self.timeout_s:
                app_kwargs["cwl_timeout_s"] = float(self.timeout_s)
            if self.retry_policy is not None:
                app_kwargs["cwl_retry_policy"] = self.retry_policy
            if self.fault_plan is not None:
                app_kwargs["cwl_fault_plan"] = self.fault_plan
            app_kwargs["cwl_job_name"] = self.tool.id or self.__name__
            # Per-call retry channel, the resilience analogue of cache_note.
            retry_note = []
            app_kwargs["cwl_retry_note"] = retry_note
            executor_fn = resilient_bash_executor

        body = functools.partial(cwl_tool_command, self.tool.raw, self.cwl_path)
        functools.update_wrapper(body, cwl_tool_command)
        body.__name__ = self.__name__  # type: ignore[attr-defined]
        wrapped = functools.partial(executor_fn, body)
        functools.update_wrapper(wrapped, body)

        future = dfk.submit(
            wrapped,
            (),
            app_kwargs,
            app_type="bash",
            executor_label=self.executor_label,
        )
        # Attach a name -> DataFuture mapping so callers (and the workflow
        # bridge) can look up outputs by their CWL output id rather than index.
        named: Dict[str, DataFuture] = {}
        for (name, _file_obj), data_future in zip(named_outputs, future.outputs):
            named.setdefault(name, data_future)
        future.cwl_outputs = named  # type: ignore[attr-defined]
        if cache_note is not None:
            future.cwl_cache_note = cache_note  # type: ignore[attr-defined]
        if retry_note is not None:
            future.cwl_retry_note = retry_note  # type: ignore[attr-defined]
        return future

    # ----------------------------------------------------------------- helpers

    def _convert_input(self, value: Any, wants_file: bool) -> Any:
        if isinstance(value, (DataFuture, File)):
            return value
        if isinstance(value, list):
            return [self._convert_input(item, wants_file) for item in value]
        if wants_file and isinstance(value, (str, os.PathLike)):
            return File(os.fspath(value))
        if wants_file and isinstance(value, dict) and value.get("class") == "File":
            return File(value.get("path") or value.get("location", ""))
        return value

    def _validate_concrete_inputs(self, cwl_inputs: Dict[str, Any]) -> None:
        """Fail fast on concrete values that cannot match the declared type."""
        for param in self.tool.inputs:
            if param.id not in cwl_inputs:
                continue
            value = cwl_inputs[param.id]
            if isinstance(value, (DataFuture, File)) or (
                isinstance(value, list) and any(isinstance(v, (DataFuture, File)) for v in value)
            ):
                continue  # resolved and staged later
            if param.type.is_file:
                continue
            if not matches(value, param.type):
                raise InputValidationError(
                    f"input {param.id!r} value {value!r} does not match declared type {param.type}"
                )

    def _predict_output_files(self, cwl_inputs: Dict[str, Any],
                              stdout_path: Optional[str],
                              stderr_path: Optional[str]) -> List[tuple]:
        """Determine output file names that are knowable at submission time.

        Returns ``(output_id, File)`` pairs.  Covers the common cases used
        throughout the paper: ``type: stdout`` / ``type: stderr`` outputs and
        ``outputBinding.glob`` patterns that are either literal file names or
        single ``$(inputs.x)`` references to an input provided in this call (or
        a default).
        """
        job_for_defaults = fill_in_defaults(self.tool.inputs, dict(cwl_inputs))
        predicted: List[tuple] = []
        for param in self.tool.outputs:
            if param.raw_type == "stdout":
                if stdout_path:
                    predicted.append((param.id, File(stdout_path)))
                continue
            if param.raw_type == "stderr":
                if stderr_path:
                    predicted.append((param.id, File(stderr_path)))
                continue
            binding = param.output_binding
            if binding is None or binding.glob is None:
                continue
            globs = binding.glob if isinstance(binding.glob, list) else [binding.glob]
            for pattern in globs:
                resolved = self._resolve_static_glob(pattern, job_for_defaults)
                if resolved is not None and not any(ch in resolved for ch in "*?["):
                    predicted.append((param.id, File(resolved)))
        return predicted

    def _resolve_static_std(self, spec: Optional[str],
                            job_order: Dict[str, Any]) -> Optional[str]:
        """Evaluate a ``stdout:``/``stderr:`` file-name template if possible.

        Literals pass through; single ``$(inputs.x)`` references resolve like
        static globs; richer templates (``$(inputs.text).txt``) are evaluated
        with whatever inputs are already concrete.  Unresolvable specs (e.g.
        referencing an upstream future) fall back to the raw string — the
        pre-existing behaviour.
        """
        if spec is None or ("$(" not in spec and "${" not in spec):
            return spec
        resolved = self._resolve_static_glob(spec, job_order)
        if resolved is not None:
            return resolved
        concrete = {key: _to_cwl_value(value) for key, value in job_order.items()
                    if not isinstance(value, DataFuture)}
        try:
            evaluated = _uncompiled_evaluator(self.tool).evaluate(
                spec, {"inputs": concrete, "runtime": {}, "self": None})
        except Exception:
            return spec
        return str(evaluated) if evaluated is not None else spec

    @staticmethod
    def _resolve_static_glob(pattern: str, job_order: Dict[str, Any]) -> Optional[str]:
        if not isinstance(pattern, str):
            return None
        pattern = pattern.strip()
        if pattern.startswith("$(") and pattern.endswith(")"):
            body = pattern[2:-1].strip()
            if body.startswith("inputs."):
                value = job_order.get(body[len("inputs."):])
                if isinstance(value, File):
                    return value.filepath
                if isinstance(value, str):
                    return value
                return None
            return None
        if "$(" in pattern or "${" in pattern:
            return None
        return pattern

    def __repr__(self) -> str:
        return f"<CWLApp {self.__name__!r} from {self.cwl_path!r}>"
