"""Execute complete CWL Workflows through Parsl (the paper's stated future work).

The paper's ``parsl-cwl`` prototype only runs single CommandLineTools; §VIII
lists "support in Parsl to run complete CWL workflows" as future work.  This
module implements that extension so the evaluation workflow (Listing 3) can be
run either through the hand-written Parsl program of Listing 4 *or* directly
from its CWL Workflow definition.

Since PR 3 the bridge shares the :class:`~repro.cwl.graph.WorkflowGraph` IR
with the workflow engine: the workflow is compiled once at load time into the
same explicit dataflow graph the reference and Toil-like runners schedule
from, and :meth:`submit` simply walks it in topological order:

* every ``step`` node's CommandLineTool becomes a :class:`~repro.core.cwl_app.CWLApp`,
* dependency edges become ``DataFuture`` s, so Parsl's dataflow scheduler
  interleaves steps exactly as it would for a native Parsl program,
* ``scatter`` nodes over concrete arrays expand at submission time,
* nested (non-scattered) subworkflow steps are flattened into the parent
  graph by the IR — their ``ingress``/``egress`` nodes seed child inputs and
  map child outputs at submission time, so the bridge now runs subworkflows
  it previously rejected,
* workflow outputs are returned as ``DataFuture`` s / values keyed by output id.

Dynamic constructs whose value depends on *task results* (e.g. ``when`` guards
referencing upstream outputs, or scattering over a future) are outside what
can be decided at submission time and raise a clear error instead of silently
misbehaving.  Scattering a sub-*workflow* step likewise stays unsupported.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Union

from repro.core.cwl_app import CWLApp
from repro.cwl.errors import InputValidationError, UnsupportedRequirement, WorkflowException
from repro.cwl.expressions.compiler import CompiledEvaluator
from repro.cwl.expressions.evaluator import needs_expression_evaluation
from repro.cwl.graph import (
    EGRESS,
    INGRESS,
    SCATTER,
    STEP,
    GraphNode,
    WorkflowGraph,
    build_graph,
    merge_link_values,
    seed_workflow_inputs,
)
from repro.cwl.loader import load_document
from repro.cwl.scatter import build_scatter_jobs
from repro.cwl.schema import CommandLineTool, Process, Workflow, WorkflowStep
from repro.cwl.validate import ensure_valid
from repro.parsl.dataflow.dflow import DataFlowKernel
from repro.parsl.dataflow.futures import AppFuture, DataFuture
from repro.utils.logging_config import get_logger

logger = get_logger("core.workflow_bridge")


class CWLWorkflowBridge:
    """Convert a CWL Workflow into a Parsl dataflow and run it."""

    def __init__(self, workflow: Union[str, os.PathLike, Workflow],
                 data_flow_kernel: Optional[DataFlowKernel] = None,
                 validate: bool = True,
                 job_observer: Optional[Any] = None,
                 job_cache: Optional[Any] = None,
                 compile_expressions: Optional[bool] = None,
                 retry_policy: Optional[Any] = None,
                 fault_plan: Optional[Any] = None,
                 timeout_s: Optional[float] = None,
                 on_error: str = "stop",
                 journal: Optional[Any] = None,
                 max_inflight: Optional[int] = None) -> None:
        if on_error not in ("stop", "continue"):
            raise ValueError(f"on_error must be 'stop' or 'continue', got {on_error!r}")
        if isinstance(workflow, Workflow):
            self.workflow = workflow
        else:
            loaded = load_document(workflow)
            if not isinstance(loaded, Workflow):
                raise WorkflowException(f"{workflow} is not a CWL Workflow")
            self.workflow = loaded
        if validate:
            ensure_valid(self.workflow)
        #: The shared dataflow IR, compiled once at load time (the same graph
        #: the WorkflowEngine schedules from).
        self.graph: WorkflowGraph = build_graph(self.workflow)
        self.data_flow_kernel = data_flow_kernel
        #: Optional job observer (duck-typed ``job_started``/``job_finished``,
        #: see :class:`repro.api.events.EventRecorder`); notified when a step
        #: is submitted and, once :meth:`run` has resolved all outputs, when
        #: each step future finished.
        self.job_observer = job_observer
        #: Shared content-addressed job cache (see :mod:`repro.cwl.jobcache`);
        #: handed to every step's :class:`CWLApp`, whose execution-side probe
        #: is where upstream futures are concrete enough to fingerprint.
        from repro.cwl.jobcache import resolve_job_cache

        self.job_cache = resolve_job_cache(job_cache)
        #: Tri-state expression-pipeline switch handed to every step's
        #: :class:`CWLApp` (``False`` = fresh uncached evaluators end to end,
        #: the conformance matrix's uncompiled leg).
        self.compile_expressions = compile_expressions is not False
        #: Fault-tolerance options handed to every step's :class:`CWLApp`
        #: (see :mod:`repro.cwl.retry` / :mod:`repro.cwl.faults`): retries and
        #: fault injection run inside the execution-side bash wrapper, ahead
        #: of the cache probe, matching the runner engines' ordering.
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.timeout_s = timeout_s
        #: ``"stop"`` re-raises the first failed step from :meth:`run`;
        #: ``"continue"`` resolves unaffected outputs and records the failed
        #: steps in :attr:`failures` (permanentFail propagation, like the
        #: scheduler's poisoning).
        self.on_error = on_error
        #: Optional :class:`~repro.cwl.journal.RunJournal`; per-step terminal
        #: states are recorded when futures drain.
        self.journal = journal
        #: Failed step name → exception, from the last :meth:`run`.
        self.failures: Dict[str, BaseException] = {}
        #: Bound on *unfinished* submitted jobs during submission: with a 10k
        #: node graph, eagerly materialising every app call would hold every
        #: staged input handle live at once.  ``None`` keeps Parsl's eager
        #: submission (the historical behaviour).
        self.max_inflight = max(1, int(max_inflight)) if max_inflight else None
        self._pending_observations: List[tuple] = []
        self._apps: Dict[str, CWLApp] = {}

    # -------------------------------------------------------------- submission

    def submit(self, job_order: Dict[str, Any]) -> Dict[str, Any]:
        """Submit every graph node and return workflow outputs as futures/values."""
        # InputValidationError (a WorkflowException) classifies as "invalid",
        # matching the runner engines' job-order validation failures — the
        # conformance exit-class contract for missing workflow inputs.
        values: Dict[str, Any] = seed_workflow_inputs(self.workflow, job_order,
                                                      error=InputValidationError)
        skipped_scopes: List[str] = []

        def is_skipped(scope: str) -> bool:
            return any(scope.startswith(skipped) for skipped in skipped_scopes)

        for node_id in self.graph.topological_order():
            node = self.graph.nodes[node_id]
            if node.kind == EGRESS:
                self._submit_egress(node, values, is_skipped(node.child_scope))
                continue
            if is_skipped(node.scope):
                continue
            if node.kind == STEP:
                self._submit_step(node, values)
            elif node.kind == SCATTER:
                self._submit_scatter(node, values)
            elif node.kind == INGRESS:
                self._submit_ingress(node, values, skipped_scopes)
            else:
                raise WorkflowException(
                    f"graph node {node.id!r} of kind {node.kind!r} cannot be "
                    "submitted at load time")

        outputs: Dict[str, Any] = {}
        for output in self.workflow.workflow_outputs:
            if not output.output_source:
                outputs[output.id] = None
                continue
            resolved = [values.get(source) for source in output.output_source]
            outputs[output.id] = merge_link_values(resolved, output.link_merge)
        return outputs

    def run(self, job_order: Dict[str, Any]) -> Dict[str, Any]:
        """Submit the workflow and block until all outputs are concrete values.

        Under ``on_error="continue"`` a failed step does not abort the run:
        outputs that (transitively) depend on it resolve to ``None`` — Parsl's
        dependency propagation fails the dependent futures for us — and the
        failures are available in :attr:`failures` afterwards.
        """
        self.failures = {}
        try:
            outputs = self.submit(job_order)
            if self.on_error == "continue":
                resolved: Dict[str, Any] = {}
                for key, value in outputs.items():
                    try:
                        resolved[key] = self._wait(value)
                    except Exception:
                        resolved[key] = None
                return resolved
            return {key: self._wait(value) for key, value in outputs.items()}
        finally:
            self._drain_observations()

    # ------------------------------------------------------------------- nodes

    def _submit_step(self, node: GraphNode, values: Dict[str, Any]) -> None:
        step = node.step
        app = self._app_for(node)
        gathered = self._gather_inputs(step, values, node.scope)

        if step.when is not None:
            condition = self._evaluate_static(step.when, gathered)
            if not condition:
                for out_id in step.out:
                    values[f"{node.scope}{step.id}/{out_id}"] = None
                return

        future = self._observed_call(app, gathered, node.id)
        named = getattr(future, "cwl_outputs", {})
        for out_id in step.out:
            if out_id not in named:
                raise WorkflowException(
                    f"step {step.id!r}: output {out_id!r} cannot be predicted at submission "
                    f"time (predictable outputs: {sorted(named)}); the workflow bridge requires "
                    "literal or input-derived glob patterns"
                )
            values[f"{node.scope}{step.id}/{out_id}"] = named[out_id]

    def _submit_scatter(self, node: GraphNode, values: Dict[str, Any]) -> None:
        step = node.step
        app = self._app_for(node)
        gathered = self._gather_inputs(step, values, node.scope)

        if step.when is not None:
            condition = self._evaluate_static(step.when, gathered)
            if not condition:
                for out_id in step.out:
                    values[f"{node.scope}{step.id}/{out_id}"] = None
                return

        concrete = {key: self._require_concrete(value, step.id, key)
                    for key, value in gathered.items() if key in step.scatter}
        merged = dict(gathered)
        merged.update(concrete)
        plan = build_scatter_jobs(merged, step.scatter, step.scatter_method)
        per_output: Dict[str, List[Any]] = {out_id: [] for out_id in step.out}
        for index, job in enumerate(plan.jobs):
            future = self._observed_call(app, job, f"{node.id}[{index}]")
            named = getattr(future, "cwl_outputs", {})
            for out_id in step.out:
                per_output[out_id].append(named.get(out_id, future))
        for out_id in step.out:
            values[f"{node.scope}{step.id}/{out_id}"] = per_output[out_id]

    def _submit_ingress(self, node: GraphNode, values: Dict[str, Any],
                        skipped_scopes: List[str]) -> None:
        """Enter a flattened subworkflow: evaluate ``when``, seed child inputs."""
        step = node.step
        gathered = self._gather_inputs(step, values, node.scope)
        if step.when is not None and not self._evaluate_static(step.when, gathered):
            skipped_scopes.append(node.child_scope)
            return
        seeded = seed_workflow_inputs(node.child, gathered, error=WorkflowException)
        for key, value in seeded.items():
            values[node.child_scope + key] = value

    def _submit_egress(self, node: GraphNode, values: Dict[str, Any],
                       skipped: bool) -> None:
        """Leave a subworkflow: map child workflow outputs into the parent scope."""
        step = node.step
        if skipped:
            for out_id in step.out:
                values[node.child_scope + out_id] = None
            return
        child_outputs: Dict[str, Any] = {}
        for output in node.child.workflow_outputs:
            if not output.output_source:
                child_outputs[output.id] = None
                continue
            resolved = [values.get(node.child_scope + source)
                        for source in output.output_source]
            child_outputs[output.id] = merge_link_values(resolved, output.link_merge)
        for out_id in step.out:
            if out_id not in child_outputs:
                raise WorkflowException(
                    f"step {step.id!r} did not produce declared output {out_id!r} "
                    f"(produced {sorted(child_outputs)})"
                )
        for out_id, value in child_outputs.items():
            values[node.child_scope + out_id] = value

    # ----------------------------------------------------------------- plumbing

    def _observed_call(self, app: CWLApp, kwargs: Dict[str, Any], name: str) -> AppFuture:
        """Invoke ``app``, reporting the job start to :attr:`job_observer`.

        The matching end event is recorded by :meth:`_drain_observations` —
        not a done-callback, which CPython fires *after* waking ``result()``
        waiters and would let :meth:`run` return before its events landed.
        """
        observer = self.job_observer
        token = observer.job_started(name) if observer is not None else None
        try:
            future = app(**kwargs)
        except Exception as exc:
            if observer is not None:
                observer.job_finished(token, ok=False, error=str(exc))
            raise
        self._pending_observations.append((future, token, name))
        if self.max_inflight is not None:
            self._throttle_inflight()
        return future

    def _throttle_inflight(self) -> None:
        """Backpressure the submission walk against ``max_inflight``.

        Blocks on the oldest unfinished future while more than
        ``max_inflight`` submitted jobs are live.  Dependency edges are
        already futures, so waiting on the oldest (a topological ancestor or
        peer of everything after it) cannot deadlock the dataflow.
        """
        while True:
            live = [f for f, _tok, _name in self._pending_observations
                    if not f.done()]
            if len(live) < self.max_inflight:
                return
            live[0].exception()  # block for completion without raising

    def _drain_observations(self) -> None:
        """Resolve every submitted future: failures, retry events, end events.

        Futures are tracked even without an observer so that
        ``on_error="continue"`` can report which steps failed.  Retries are
        replayed from the future's in-process ``cwl_retry_note`` (written by
        :func:`~repro.core.cwl_app.resilient_bash_executor`), so the event
        stream per job reads start → retry* → end like the runner engines'.
        """
        observer = self.job_observer
        pending, self._pending_observations = self._pending_observations, []
        for future, token, name in pending:
            exception = future.exception()
            if exception is not None:
                self.failures.setdefault(name, exception)
            note = getattr(future, "cwl_cache_note", None) or {}
            retries = getattr(future, "cwl_retry_note", None) or []
            if self.journal is not None:
                self.journal.node_state(name, "failed" if exception else "done")
            if observer is None:
                continue
            for entry in retries:
                observer.job_retry(token, entry["attempt"],
                                   error=entry["error"],
                                   delay_s=entry["delay_s"])
            observer.job_finished(token, ok=exception is None,
                                  error=str(exception) if exception else None,
                                  cache=note.get("cache"),
                                  attempt=retries[-1]["attempt"] + 1 if retries else 1)

    def _app_for(self, node: GraphNode) -> CWLApp:
        if node.id in self._apps:
            return self._apps[node.id]
        step = node.step
        process: Optional[Process] = step.embedded_process
        if process is None and isinstance(step.run, str):
            from repro.cwl.graph import default_resolver

            process = default_resolver(step, node.workflow)
        elif process is None and isinstance(step.run, Process):
            process = step.run
        if isinstance(process, Workflow):
            raise UnsupportedRequirement(
                f"step {step.id!r} scatters over a nested Workflow; the Parsl workflow "
                "bridge expands scatter at submission time over CommandLineTool steps only "
                "(use ReferenceRunner for scattered subworkflows)"
            )
        if not isinstance(process, CommandLineTool):
            raise WorkflowException(f"step {step.id!r} does not resolve to a CommandLineTool")
        app = CWLApp(process, data_flow_kernel=self.data_flow_kernel,
                     job_cache=self.job_cache,
                     compile_expressions=self.compile_expressions,
                     retry_policy=self.retry_policy,
                     fault_plan=self.fault_plan,
                     timeout_s=self.timeout_s)
        self._apps[node.id] = app
        return app

    def _gather_inputs(self, step: WorkflowStep, values: Dict[str, Any],
                       scope: str) -> Dict[str, Any]:
        gathered: Dict[str, Any] = {}
        for step_input in step.in_:
            if step_input.source:
                sourced = [values[scope + source] for source in step_input.source]
                value = merge_link_values(sourced, step_input.link_merge)
            else:
                value = None
            if value is None and step_input.has_default:
                value = step_input.default
            gathered[step_input.id] = value
        for step_input in step.in_:
            if step_input.value_from is None:
                continue
            gathered[step_input.id] = self._evaluate_static(
                step_input.value_from, gathered, self_value=gathered.get(step_input.id))
        return gathered

    def _evaluate_static(self, expression: str, inputs: Dict[str, Any],
                         self_value: Any = None) -> Any:
        """Evaluate a step-level expression at submission time.

        Plain strings pass through; expressions may only reference values that
        are concrete at submission time (workflow inputs, literals) — futures
        cannot be inspected before they run.
        """
        if not needs_expression_evaluation(expression):
            return expression
        concrete_inputs = {}
        for key, value in inputs.items():
            if isinstance(value, (AppFuture, DataFuture)):
                concrete_inputs[key] = {"basename": getattr(value, "filename", None),
                                        "path": getattr(value, "filepath", None),
                                        "class": "File"}
            else:
                concrete_inputs[key] = value
        # The bridge is a long-lived engine: submission-time expressions go
        # through the compiled pipeline (parse-once template cache) unless
        # the uncompiled leg was requested.
        if self.compile_expressions:
            evaluator = CompiledEvaluator(js_enabled=True)
        else:
            from repro.cwl.expressions.evaluator import ExpressionEvaluator

            evaluator = ExpressionEvaluator(js_enabled=True)
        return evaluator.evaluate(expression, {"inputs": concrete_inputs, "self": self_value,
                                               "runtime": {}})

    @staticmethod
    def _require_concrete(value: Any, step_id: str, key: str) -> Any:
        if isinstance(value, (AppFuture, DataFuture)):
            raise UnsupportedRequirement(
                f"step {step_id!r} scatters over {key!r} whose value is a future; scatter widths "
                "must be known at submission time in the Parsl workflow bridge"
            )
        return value

    @staticmethod
    def _wait(value: Any) -> Any:
        if isinstance(value, DataFuture):
            return value.result()
        if isinstance(value, AppFuture):
            return value.result()
        if isinstance(value, list):
            return [CWLWorkflowBridge._wait(item) for item in value]
        return value
