"""Execute complete CWL Workflows through Parsl (the paper's stated future work).

The paper's ``parsl-cwl`` prototype only runs single CommandLineTools; §VIII
lists "support in Parsl to run complete CWL workflows" as future work.  This
module implements that extension so the evaluation workflow (Listing 3) can be
run either through the hand-written Parsl program of Listing 4 *or* directly
from its CWL Workflow definition:

* every step's CommandLineTool becomes a :class:`~repro.core.cwl_app.CWLApp`,
* step-to-step data dependencies become ``DataFuture`` s, so Parsl's dataflow
  scheduler interleaves steps exactly as it would for a native Parsl program,
* ``scatter`` over workflow-level array inputs expands at submission time,
* step-level ``valueFrom`` strings (literal values or ``$(inputs.x)``
  references over concrete values) are evaluated at submission time,
* workflow outputs are returned as ``DataFuture`` s / values keyed by output id.

Dynamic constructs whose value depends on *task results* (e.g. ``when`` guards
referencing upstream outputs) are outside what can be decided at submission
time and raise a clear error instead of silently misbehaving.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Union

from repro.core.cwl_app import CWLApp
from repro.cwl.errors import UnsupportedRequirement, WorkflowException
from repro.cwl.expressions.compiler import CompiledEvaluator
from repro.cwl.expressions.evaluator import needs_expression_evaluation
from repro.cwl.loader import load_document, load_document_cached
from repro.cwl.scatter import build_scatter_jobs
from repro.cwl.schema import CommandLineTool, Workflow, WorkflowStep
from repro.cwl.validate import ensure_valid
from repro.parsl.dataflow.dflow import DataFlowKernel
from repro.parsl.dataflow.futures import AppFuture, DataFuture
from repro.utils.logging_config import get_logger

logger = get_logger("core.workflow_bridge")


class CWLWorkflowBridge:
    """Convert a CWL Workflow into a Parsl dataflow and run it."""

    def __init__(self, workflow: Union[str, os.PathLike, Workflow],
                 data_flow_kernel: Optional[DataFlowKernel] = None,
                 validate: bool = True,
                 job_observer: Optional[Any] = None) -> None:
        if isinstance(workflow, Workflow):
            self.workflow = workflow
        else:
            loaded = load_document(workflow)
            if not isinstance(loaded, Workflow):
                raise WorkflowException(f"{workflow} is not a CWL Workflow")
            self.workflow = loaded
        if validate:
            ensure_valid(self.workflow)
        self.data_flow_kernel = data_flow_kernel
        #: Optional job observer (duck-typed ``job_started``/``job_finished``,
        #: see :class:`repro.api.events.EventRecorder`); notified when a step
        #: is submitted and, once :meth:`run` has resolved all outputs, when
        #: each step future finished.
        self.job_observer = job_observer
        self._pending_observations: List[tuple] = []
        self._apps: Dict[str, CWLApp] = {}

    # -------------------------------------------------------------- submission

    def submit(self, job_order: Dict[str, Any]) -> Dict[str, Any]:
        """Submit every step and return workflow outputs as futures/values."""
        values: Dict[str, Any] = {}
        for param in self.workflow.inputs:
            if param.id in job_order:
                values[param.id] = job_order[param.id]
            elif param.has_default:
                values[param.id] = param.default
            elif param.type.is_optional:
                values[param.id] = None
            else:
                raise WorkflowException(f"workflow input {param.id!r} is required")

        remaining = list(self.workflow.steps)
        submitted: Dict[str, AppFuture] = {}
        # Steps are submitted in dependency order, but they execute concurrently:
        # Parsl's DFK holds each task until its DataFuture inputs resolve.
        while remaining:
            progressed = False
            for step in list(remaining):
                if not self._sources_known(step, values):
                    continue
                self._submit_step(step, values, submitted)
                remaining.remove(step)
                progressed = True
            if not progressed:
                unresolved = {s.id: [src for si in s.in_ for src in si.source
                                     if src not in values] for s in remaining}
                raise WorkflowException(
                    f"cannot order workflow steps; unresolved sources: {unresolved}"
                )

        outputs: Dict[str, Any] = {}
        for output in self.workflow.workflow_outputs:
            if not output.output_source:
                outputs[output.id] = None
                continue
            resolved = [values.get(source) for source in output.output_source]
            outputs[output.id] = resolved[0] if len(resolved) == 1 else resolved
        return outputs

    def run(self, job_order: Dict[str, Any]) -> Dict[str, Any]:
        """Submit the workflow and block until all outputs are concrete values."""
        try:
            outputs = self.submit(job_order)
            return {key: self._wait(value) for key, value in outputs.items()}
        finally:
            self._drain_observations()

    # ----------------------------------------------------------------- plumbing

    def _sources_known(self, step: WorkflowStep, values: Dict[str, Any]) -> bool:
        return all(source in values for step_input in step.in_ for source in step_input.source)

    def _submit_step(self, step: WorkflowStep, values: Dict[str, Any],
                     submitted: Dict[str, AppFuture]) -> None:
        app = self._app_for(step)
        gathered = self._gather_inputs(step, values)

        if step.when is not None:
            condition = self._evaluate_static(step.when, gathered)
            if not condition:
                for out_id in step.out:
                    values[f"{step.id}/{out_id}"] = None
                return

        if step.scatter:
            concrete = {key: self._require_concrete(value, step.id, key)
                        for key, value in gathered.items() if key in step.scatter}
            merged = dict(gathered)
            merged.update(concrete)
            plan = build_scatter_jobs(merged, step.scatter, step.scatter_method)
            per_output: Dict[str, List[Any]] = {out_id: [] for out_id in step.out}
            for index, job in enumerate(plan.jobs):
                future = self._observed_call(app, job, f"{step.id}[{index}]")
                submitted[f"{step.id}[{index}]"] = future
                named = getattr(future, "cwl_outputs", {})
                for out_id in step.out:
                    per_output[out_id].append(named.get(out_id, future))
            for out_id in step.out:
                values[f"{step.id}/{out_id}"] = per_output[out_id]
            return

        future = self._observed_call(app, gathered, step.id)
        submitted[step.id] = future
        named = getattr(future, "cwl_outputs", {})
        for out_id in step.out:
            if out_id not in named:
                raise WorkflowException(
                    f"step {step.id!r}: output {out_id!r} cannot be predicted at submission "
                    f"time (predictable outputs: {sorted(named)}); the workflow bridge requires "
                    "literal or input-derived glob patterns"
                )
            values[f"{step.id}/{out_id}"] = named[out_id]

    def _observed_call(self, app: CWLApp, kwargs: Dict[str, Any], name: str) -> AppFuture:
        """Invoke ``app``, reporting the job start to :attr:`job_observer`.

        The matching end event is recorded by :meth:`_drain_observations` —
        not a done-callback, which CPython fires *after* waking ``result()``
        waiters and would let :meth:`run` return before its events landed.
        """
        observer = self.job_observer
        if observer is None:
            return app(**kwargs)
        token = observer.job_started(name)
        try:
            future = app(**kwargs)
        except Exception as exc:
            observer.job_finished(token, ok=False, error=str(exc))
            raise
        self._pending_observations.append((future, token))
        return future

    def _drain_observations(self) -> None:
        """Report an end event for every submitted future (waits as needed)."""
        observer = self.job_observer
        pending, self._pending_observations = self._pending_observations, []
        if observer is None:
            return
        for future, token in pending:
            exception = future.exception()
            observer.job_finished(token, ok=exception is None,
                                  error=str(exception) if exception else None)

    def _app_for(self, step: WorkflowStep) -> CWLApp:
        if step.id in self._apps:
            return self._apps[step.id]
        process = step.embedded_process
        if process is None and isinstance(step.run, str):
            base = os.path.dirname(self.workflow.source_path or "")
            path = step.run if os.path.isabs(step.run) else os.path.join(base, step.run)
            process = load_document_cached(path)
        if isinstance(process, Workflow):
            raise UnsupportedRequirement(
                f"step {step.id!r} runs a nested Workflow; the Parsl workflow bridge currently "
                "supports CommandLineTool steps (use ReferenceRunner for nested workflows)"
            )
        if not isinstance(process, CommandLineTool):
            raise WorkflowException(f"step {step.id!r} does not resolve to a CommandLineTool")
        app = CWLApp(process, data_flow_kernel=self.data_flow_kernel)
        self._apps[step.id] = app
        return app

    def _gather_inputs(self, step: WorkflowStep, values: Dict[str, Any]) -> Dict[str, Any]:
        gathered: Dict[str, Any] = {}
        for step_input in step.in_:
            if step_input.source:
                sourced = [values[source] for source in step_input.source]
                value = sourced[0] if len(sourced) == 1 else sourced
            else:
                value = None
            if value is None and step_input.has_default:
                value = step_input.default
            gathered[step_input.id] = value
        for step_input in step.in_:
            if step_input.value_from is None:
                continue
            gathered[step_input.id] = self._evaluate_static(
                step_input.value_from, gathered, self_value=gathered.get(step_input.id))
        return gathered

    def _evaluate_static(self, expression: str, inputs: Dict[str, Any],
                         self_value: Any = None) -> Any:
        """Evaluate a step-level expression at submission time.

        Plain strings pass through; expressions may only reference values that
        are concrete at submission time (workflow inputs, literals) — futures
        cannot be inspected before they run.
        """
        if not needs_expression_evaluation(expression):
            return expression
        concrete_inputs = {}
        for key, value in inputs.items():
            if isinstance(value, (AppFuture, DataFuture)):
                concrete_inputs[key] = {"basename": getattr(value, "filename", None),
                                        "path": getattr(value, "filepath", None),
                                        "class": "File"}
            else:
                concrete_inputs[key] = value
        # The bridge is a long-lived engine: submission-time expressions go
        # through the compiled pipeline (parse-once template cache).
        evaluator = CompiledEvaluator(js_enabled=True)
        return evaluator.evaluate(expression, {"inputs": concrete_inputs, "self": self_value,
                                               "runtime": {}})

    @staticmethod
    def _require_concrete(value: Any, step_id: str, key: str) -> Any:
        if isinstance(value, (AppFuture, DataFuture)):
            raise UnsupportedRequirement(
                f"step {step_id!r} scatters over {key!r} whose value is a future; scatter widths "
                "must be known at submission time in the Parsl workflow bridge"
            )
        return value

    @staticmethod
    def _wait(value: Any) -> Any:
        if isinstance(value, DataFuture):
            return value.result()
        if isinstance(value, AppFuture):
            return value.result()
        if isinstance(value, list):
            return [CWLWorkflowBridge._wait(item) for item in value]
        return value
