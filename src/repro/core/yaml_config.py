"""TaPS-style YAML configuration for the ``parsl-cwl`` runner (paper §III-B).

The paper adopts a YAML configuration format (following the TaPS benchmark
suite) so that Parsl configuration lives alongside the CWL documents rather than
in Python.  The supported keys:

.. code-block:: yaml

    executor: htex            # htex | thread-pool | process-pool | workqueue
    provider: slurm           # local | slurm | pbs | kubernetes  (htex only)
    nodes: 3                  # nodes per block (htex + slurm/pbs)
    cores_per_node: 48
    workers_per_node: 8
    max_threads: 8            # thread-pool
    max_workers: 4            # process-pool
    total_cores: 8            # workqueue
    retries: 0
    run_dir: runinfo
    app_cache: true
    label: htex

Unknown keys raise immediately — misspelling ``workers_per_node`` should not
silently fall back to a default.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Union

from repro.cluster.nodes import NodeInventory
from repro.cluster.scheduler import SimulatedSlurmCluster
from repro.parsl.config import Config
from repro.parsl.errors import ConfigurationError
from repro.parsl.executors.high_throughput.executor import HighThroughputExecutor
from repro.parsl.executors.processes import ProcessPoolExecutor
from repro.parsl.executors.threads import ThreadPoolExecutor
from repro.parsl.executors.workqueue import WorkQueueStyleExecutor
from repro.parsl.providers.kubernetes import KubernetesProvider
from repro.parsl.providers.local import LocalProvider
from repro.parsl.providers.pbs import PBSProProvider
from repro.parsl.providers.slurm import SlurmProvider
from repro.utils.yamlio import load_yaml_file

_KNOWN_KEYS = {
    "executor", "provider", "nodes", "cores_per_node", "workers_per_node",
    "max_threads", "max_workers", "total_cores", "retries", "run_dir",
    "app_cache", "label", "monitoring", "queue", "partition", "namespace",
    "walltime",
}

_EXECUTOR_ALIASES = {
    "htex": "htex",
    "high-throughput": "htex",
    "highthroughput": "htex",
    "thread-pool": "threads",
    "threads": "threads",
    "threadpool": "threads",
    "process-pool": "processes",
    "processes": "processes",
    "workqueue": "workqueue",
    "work-queue": "workqueue",
    "taskvine": "workqueue",
}


def load_yaml_config(path: Union[str, os.PathLike],
                     cluster: Optional[SimulatedSlurmCluster] = None) -> Config:
    """Load a TaPS-style YAML configuration file into a live :class:`Config`."""
    document = load_yaml_file(path)
    if document is None:
        document = {}
    if not isinstance(document, dict):
        raise ConfigurationError(f"configuration file {path} must contain a mapping")
    return config_from_dict(document, cluster=cluster)


def config_from_dict(document: Dict[str, Any],
                     cluster: Optional[SimulatedSlurmCluster] = None) -> Config:
    """Build a :class:`Config` from an already-parsed configuration dictionary."""
    unknown = set(document) - _KNOWN_KEYS
    if unknown:
        raise ConfigurationError(
            f"unknown configuration key(s) {sorted(unknown)}; supported keys are {sorted(_KNOWN_KEYS)}"
        )

    executor_name = _EXECUTOR_ALIASES.get(str(document.get("executor", "thread-pool")).lower())
    if executor_name is None:
        raise ConfigurationError(
            f"unknown executor {document.get('executor')!r}; expected one of {sorted(_EXECUTOR_ALIASES)}"
        )
    label = document.get("label", executor_name)

    if executor_name == "threads":
        executor = ThreadPoolExecutor(label=label, max_threads=int(document.get("max_threads", 8)))
    elif executor_name == "processes":
        executor = ProcessPoolExecutor(label=label, max_workers=int(document.get("max_workers", 4)))
    elif executor_name == "workqueue":
        executor = WorkQueueStyleExecutor(label=label, total_cores=int(document.get("total_cores", 8)))
    else:  # htex
        executor = HighThroughputExecutor(
            label=label,
            provider=_build_provider(document, cluster),
            max_workers_per_node=int(document.get("workers_per_node", 4)),
        )

    return Config(
        executors=[executor],
        retries=int(document.get("retries", 0)),
        app_cache=bool(document.get("app_cache", True)),
        run_dir=str(document.get("run_dir", "runinfo")),
        monitoring=bool(document.get("monitoring", False)),
    )


def _build_provider(document: Dict[str, Any], cluster: Optional[SimulatedSlurmCluster]):
    provider_name = str(document.get("provider", "local")).lower()
    nodes = int(document.get("nodes", 1))
    cores_per_node = int(document.get("cores_per_node", os.cpu_count() or 4))
    walltime = str(document.get("walltime", "00:30:00"))

    if provider_name == "local":
        return LocalProvider(nodes_per_block=nodes, cores_per_node=cores_per_node,
                             init_blocks=1, max_blocks=1, walltime=walltime)
    if provider_name == "slurm":
        return SlurmProvider(
            nodes_per_block=nodes,
            cores_per_node=cores_per_node,
            init_blocks=1,
            max_blocks=1,
            walltime=walltime,
            partition=str(document.get("partition", "normal")),
            cluster=cluster or SimulatedSlurmCluster(
                NodeInventory.homogeneous(nodes, cores=cores_per_node)),
        )
    if provider_name in ("pbs", "pbspro"):
        return PBSProProvider(
            nodes_per_block=nodes,
            cores_per_node=cores_per_node,
            init_blocks=1,
            max_blocks=1,
            walltime=walltime,
            queue=str(document.get("queue", "workq")),
            cluster=cluster or SimulatedSlurmCluster(
                NodeInventory.homogeneous(nodes, cores=cores_per_node)),
        )
    if provider_name in ("kubernetes", "k8s"):
        return KubernetesProvider(
            pods_per_block=nodes,
            cores_per_pod=cores_per_node,
            namespace=str(document.get("namespace", "default")),
        )
    raise ConfigurationError(
        f"unknown provider {provider_name!r}; expected local, slurm, pbs or kubernetes"
    )
