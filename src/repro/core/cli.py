"""The ``parsl-cwl`` command-line runner (paper §III-B).

Usage, matching the paper::

    parsl-cwl config.yml echo.cwl inputs.yml
    parsl-cwl config.yml echo.cwl --message='Hello'

The first positional argument is the TaPS-style YAML Parsl configuration, the
second is the CWL CommandLineTool, and inputs come either from a YAML job order
file or from ``--name value`` / ``--name=value`` flags.  The CWL output object
is printed as JSON.  Execution routes through the :mod:`repro.api` registry's
``"parsl"`` engine.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.cwl.cli import parse_cli_inputs
from repro.utils.yamlio import dump_json, load_yaml_file


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``parsl-cwl``."""
    argv = list(sys.argv[1:] if argv is None else argv)

    # Separate "--name value" input overrides (everything after the positionals).
    positionals = []
    index = 0
    options = {"--outdir": None, "--quiet": False}
    while index < len(argv) and len(positionals) < 3:
        token = argv[index]
        if token in ("-h", "--help"):
            _print_help()
            return 0
        if token == "--quiet":
            options["--quiet"] = True
            index += 1
            continue
        if token == "--outdir":
            options["--outdir"] = argv[index + 1] if index + 1 < len(argv) else None
            index += 2
            continue
        if token.startswith("--"):
            break
        positionals.append(token)
        index += 1
    overrides = argv[index:]

    if len(positionals) < 2:
        print("usage: parsl-cwl [--outdir DIR] config.yml tool.cwl [inputs.yml] [--input value ...]",
              file=sys.stderr)
        return 2

    config_path = positionals[0]
    tool_path = positionals[1]
    job_file = positionals[2] if len(positionals) > 2 else None

    try:
        job_order = {}
        if job_file:
            loaded = load_yaml_file(job_file)
            if loaded:
                if not isinstance(loaded, dict):
                    raise ValueError(f"job order file {job_file} must contain a mapping")
                job_order.update(loaded)
        job_order.update(parse_cli_inputs(overrides))

        outdir = options["--outdir"]
        previous_cwd = os.getcwd()
        if outdir:
            os.makedirs(outdir, exist_ok=True)
            os.chdir(outdir)
        try:
            from repro.api import run as api_run

            result = api_run(
                os.path.join(previous_cwd, tool_path) if not os.path.isabs(tool_path) else tool_path,
                _resolve_job_paths(job_order, previous_cwd),
                engine="parsl",
                config=os.path.join(previous_cwd, config_path) if not os.path.isabs(config_path) else config_path,
            )
        finally:
            if outdir:
                os.chdir(previous_cwd)
    except Exception as exc:  # CLI boundary
        print(f"parsl-cwl: error: {exc}", file=sys.stderr)
        return 1

    print(dump_json(result.outputs))
    if not options["--quiet"]:
        print(f"Final process status is {result.status}", file=sys.stderr)
    return 0


def _resolve_job_paths(job_order: dict, base: str) -> dict:
    """Make relative File paths in the job order absolute against the invocation cwd."""
    resolved = {}
    for key, value in job_order.items():
        if isinstance(value, dict) and value.get("class") == "File" and "path" in value \
                and not os.path.isabs(value["path"]):
            value = dict(value)
            value["path"] = os.path.join(base, value["path"])
        elif isinstance(value, str) and not os.path.isabs(value) and os.path.exists(os.path.join(base, value)) \
                and ("/" in value or value.endswith((".png", ".txt", ".csv", ".json", ".yml", ".yaml"))):
            value = os.path.join(base, value)
        resolved[key] = value
    return resolved


def _print_help() -> None:
    print(__doc__)
    print("usage: parsl-cwl [--outdir DIR] [--quiet] config.yml tool.cwl [inputs.yml] [--input value ...]")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
