"""Programmatic entry point of the ``parsl-cwl`` runner (paper §III-B).

``run_tool_with_parsl`` executes one CWL CommandLineTool on Parsl executors and
returns the CWL output object, which is also what the ``parsl-cwl`` command
line prints.  The function manages the DataFlowKernel lifecycle only when it
loaded the kernel itself, so it can be embedded in a larger Parsl program that
already called :func:`repro.parsl.load`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Union

from repro.core.cwl_app import CWLApp
from repro.core.yaml_config import load_yaml_config
from repro.cwl.loader import load_tool
from repro.cwl.outputs import collect_outputs
from repro.cwl.runtime import RuntimeContext
from repro.cwl.schema import CommandLineTool
from repro.cwl.types import value_to_path
from repro.parsl.config import Config
from repro.parsl.dataflow.dflow import DataFlowKernelLoader
from repro.parsl.errors import NoDataFlowKernelError
from repro.utils.logging_config import get_logger

logger = get_logger("core.runner")


def run_tool_with_parsl(
    tool: Union[str, os.PathLike, "CommandLineTool"],
    job_order: Optional[Dict[str, Any]] = None,
    config: Union[None, str, os.PathLike, Config] = None,
    outdir: Optional[str] = None,
    cleanup: Optional[bool] = None,
) -> Dict[str, Any]:
    """Execute ``tool`` with the given ``job_order`` on Parsl.

    Parameters
    ----------
    tool:
        Path to a CWL CommandLineTool document, or an already-loaded
        :class:`~repro.cwl.schema.CommandLineTool`.
    job_order:
        Input values (plain values; ``File`` inputs may be given as paths or
        ``{"class": "File", "path": ...}`` objects).
    config:
        A YAML configuration path, an already-built :class:`Config`, or ``None``
        to use whatever DataFlowKernel is already loaded.
    outdir:
        Directory in which output files are collected (defaults to the current
        working directory, which is where Parsl bash apps execute).
    cleanup:
        Whether to shut down the DataFlowKernel afterwards.  Defaults to True
        exactly when this call loaded the kernel itself.
    """
    job_order = dict(job_order or {})

    loaded_here = False
    if config is not None:
        if not isinstance(config, Config):
            config = load_yaml_config(config)
        DataFlowKernelLoader.load(config)
        loaded_here = True
    else:
        try:
            DataFlowKernelLoader.dfk()
        except NoDataFlowKernelError:
            DataFlowKernelLoader.load(Config.default())
            loaded_here = True
    if cleanup is None:
        cleanup = loaded_here

    try:
        tool_doc = tool if isinstance(tool, CommandLineTool) else load_tool(tool)
        app = CWLApp(tool_doc)
        future = app(**job_order)
        future.result()

        outdir = outdir or os.getcwd()
        stdout_path = future.stdout
        stderr_path = future.stderr
        # The parsl engine always uses the compiled-expression pipeline: the
        # CWLApp constructor precompiled the tool, and collect_outputs' default
        # evaluator picks up the pinned templates from app.tool.compiled.
        runtime = RuntimeContext().with_resources(app.tool).runtime_object(outdir, outdir)
        outputs = collect_outputs(
            app.tool,
            outdir=outdir,
            stdout_path=_absolute(stdout_path, outdir),
            stderr_path=_absolute(stderr_path, outdir),
            job_order=_cwl_job_order(app, job_order),
            runtime=runtime,
        )
        return outputs
    finally:
        if cleanup:
            DataFlowKernelLoader.clear()


def _absolute(path: Optional[str], base: str) -> Optional[str]:
    if path is None:
        return None
    return path if os.path.isabs(path) else os.path.join(base, path)


def _cwl_job_order(app: CWLApp, job_order: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild the CWL-side job order (File values as dictionaries) for output collection."""
    from repro.cwl.command_line import fill_in_defaults
    from repro.cwl.types import build_file_value, coerce_file_inputs

    rebuilt: Dict[str, Any] = {}
    for param in app.tool.inputs:
        if param.id not in job_order:
            continue
        value = job_order[param.id]
        if param.type.is_file and isinstance(value, (str, os.PathLike)):
            rebuilt[param.id] = build_file_value(os.fspath(value))
        else:
            rebuilt[param.id] = coerce_file_inputs(value)
    return fill_in_defaults(app.tool.inputs, rebuilt)
