"""Programmatic entry point of the ``parsl-cwl`` runner (paper §III-B).

``run_tool_with_parsl`` executes one CWL CommandLineTool on Parsl executors and
returns the CWL output object, which is also what the ``parsl-cwl`` command
line prints.  The function manages the DataFlowKernel lifecycle only when it
loaded the kernel itself, so it can be embedded in a larger Parsl program that
already called :func:`repro.parsl.load`.

With a job cache attached (``job_cache=``), the invocation is fingerprinted on
the submission side — the inputs are concrete here, unlike in the workflow
bridge — and a hit restores the cached files and collects outputs without
touching Parsl (or even loading a DataFlowKernel) at all; a miss executes
normally and then ingests the produced files, so the next run of any engine
sharing the store is warm.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Union

from repro.core.cwl_app import CWLApp, _uncompiled_evaluator
from repro.core.yaml_config import load_yaml_config
from repro.cwl.jobcache import JobCache, job_key, relative_to_outdir, resolve_job_cache
from repro.cwl.loader import load_tool
from repro.cwl.outputs import collect_outputs
from repro.cwl.runtime import RuntimeContext
from repro.cwl.schema import CommandLineTool
from repro.cwl.types import is_directory_value, is_file_value, value_to_path
from repro.parsl.config import Config
from repro.parsl.dataflow.dflow import DataFlowKernelLoader
from repro.parsl.errors import NoDataFlowKernelError
from repro.utils.logging_config import get_logger

logger = get_logger("core.runner")


def run_tool_with_parsl(
    tool: Union[str, os.PathLike, "CommandLineTool"],
    job_order: Optional[Dict[str, Any]] = None,
    config: Union[None, str, os.PathLike, Config] = None,
    outdir: Optional[str] = None,
    cleanup: Optional[bool] = None,
    job_cache: Union[None, bool, str, JobCache] = None,
    cache_note: Optional[Dict[str, str]] = None,
    compile_expressions: Optional[bool] = None,
    timeout_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Execute ``tool`` with the given ``job_order`` on Parsl.

    Parameters
    ----------
    tool:
        Path to a CWL CommandLineTool document, or an already-loaded
        :class:`~repro.cwl.schema.CommandLineTool`.
    job_order:
        Input values (plain values; ``File`` inputs may be given as paths or
        ``{"class": "File", "path": ...}`` objects).
    config:
        A YAML configuration path, an already-built :class:`Config`, or ``None``
        to use whatever DataFlowKernel is already loaded.
    outdir:
        Directory in which output files are collected (defaults to the current
        working directory, which is where Parsl bash apps execute).
    cleanup:
        Whether to shut down the DataFlowKernel afterwards.  Defaults to True
        exactly when this call loaded the kernel itself.
    job_cache:
        A :class:`~repro.cwl.jobcache.JobCache`, a store directory, ``True``
        for the default store, or ``None``/``False`` for no caching.
    cache_note:
        Optional dict the call annotates with ``{"cache": "hit"|"miss"}``
        (used by the unified API to tag the per-job event).
    compile_expressions:
        Tri-state: ``None``/``True`` use the compiled-expression pipeline
        (the Parsl default); ``False`` evaluates expressions with fresh
        uncached engines, like the reference runner (the conformance
        matrix's uncompiled leg).
    timeout_s:
        Optional per-job wall-clock limit, enforced in-shell on the execution
        side; exceeding it raises :class:`~repro.cwl.errors.JobTimeout`
        (retries, if any, are the caller's concern — the unified API wraps
        this whole call, cache probe included, in its retry loop).
    """
    job_order = dict(job_order or {})
    tool_doc = tool if isinstance(tool, CommandLineTool) else load_tool(tool)
    cache = resolve_job_cache(job_cache)
    # This path ingests exactly the files the collected output object
    # references; an outputEval may reduce matched files to a plain value, so
    # such tools cannot round-trip through the submission-side store (the
    # runner engines still cache them — they ingest the whole job outdir).
    if cache is not None and not _parsl_cacheable(tool_doc):
        cache = None

    cache_key: Optional[str] = None
    if cache is not None:
        cwl_order = _cwl_job_order(tool_doc, job_order)
        resources = RuntimeContext().with_resources(tool_doc)
        cache_key = job_key(tool_doc, cwl_order,
                            cores=resources.cores, ram_mb=resources.ram_mb)
        entry = cache.lookup(cache_key)
        if entry is not None:
            if cache_note is not None:
                cache_note["cache"] = "hit"
            return _restore_cached(cache, entry, tool_doc, cwl_order, outdir)
        if cache_note is not None:
            cache_note["cache"] = "miss"

    loaded_here = False
    if config is not None:
        if not isinstance(config, Config):
            config = load_yaml_config(config)
        DataFlowKernelLoader.load(config)
        loaded_here = True
    else:
        try:
            DataFlowKernelLoader.dfk()
        except NoDataFlowKernelError:
            DataFlowKernelLoader.load(Config.default())
            loaded_here = True
    if cleanup is None:
        cleanup = loaded_here

    try:
        app = CWLApp(tool_doc, compile_expressions=compile_expressions,
                     timeout_s=timeout_s)
        future = app(**job_order)
        future.result()

        outdir = outdir or os.getcwd()
        stdout_path = _absolute(future.stdout, outdir)
        stderr_path = _absolute(future.stderr, outdir)
        # By default collect_outputs' evaluator picks up the pinned templates
        # the CWLApp constructor compiled onto the tool; with
        # compile_expressions=False an explicit uncached evaluator is used
        # instead.
        runtime = RuntimeContext().with_resources(app.tool).runtime_object(outdir, outdir)
        outputs = collect_outputs(
            app.tool,
            outdir=outdir,
            stdout_path=stdout_path,
            stderr_path=stderr_path,
            job_order=_cwl_job_order(app.tool, job_order),
            runtime=runtime,
            evaluator=None if app.compile_expressions else _uncompiled_evaluator(app.tool),
        )
        if cache is not None and cache_key is not None:
            try:
                _store_collected(cache, cache_key, outdir, outputs,
                                 stdout_path, stderr_path)
            except Exception:
                # A full/read-only store must never fail a job that succeeded.
                logger.warning("could not store %s in the cache at %s",
                               tool_doc.id, cache.cache_dir, exc_info=True)
        return outputs
    finally:
        if cleanup:
            DataFlowKernelLoader.clear()


def _parsl_cacheable(tool: CommandLineTool) -> bool:
    """Whether every declared output survives a referenced-files-only store."""
    return not any(
        param.output_binding is not None
        and param.output_binding.output_eval is not None
        for param in tool.outputs
    )


def _restore_cached(cache: JobCache, entry: Any, tool_doc: CommandLineTool,
                    cwl_order: Dict[str, Any], outdir: Optional[str]) -> Dict[str, Any]:
    """Stage a cached invocation into ``outdir`` and re-collect its outputs.

    Copy-staged (not hardlinked) because the default outdir is the shared
    working directory, whose files may later be rewritten in place.
    """
    from repro.cwl.expressions.compiler import precompile_process

    outdir = outdir or os.getcwd()
    cache.restore(entry, outdir, prefer_copy=True)
    precompile_process(tool_doc)
    stdout_name = entry.stream_name("stdout")
    stderr_name = entry.stream_name("stderr")
    runtime = RuntimeContext().with_resources(tool_doc).runtime_object(outdir, outdir)
    return collect_outputs(
        tool_doc,
        outdir=outdir,
        stdout_path=os.path.join(outdir, stdout_name) if stdout_name else None,
        stderr_path=os.path.join(outdir, stderr_name) if stderr_name else None,
        job_order=cwl_order,
        runtime=runtime,
    )


def _store_collected(cache: JobCache, key: str, outdir: str,
                     outputs: Dict[str, Any],
                     stdout_path: Optional[str],
                     stderr_path: Optional[str]) -> None:
    """Ingest the files a collected output object references, plus streams."""
    paths = _output_file_paths(outputs)
    for stream in (stdout_path, stderr_path):
        if stream and os.path.isfile(stream):
            paths.append(stream)
    cache.store_files(
        key, outdir, paths,
        stdout_name=relative_to_outdir(stdout_path, outdir),
        stderr_name=relative_to_outdir(stderr_path, outdir),
    )


def _output_file_paths(value: Any, into: Optional[List[str]] = None) -> List[str]:
    """Every File/Directory path referenced by an output object."""
    paths = [] if into is None else into
    if is_file_value(value) or is_directory_value(value):
        try:
            paths.append(value_to_path(value))
        except Exception:
            pass
    elif isinstance(value, list):
        for item in value:
            _output_file_paths(item, paths)
    elif isinstance(value, dict):
        for item in value.values():
            _output_file_paths(item, paths)
    return paths


def _absolute(path: Optional[str], base: str) -> Optional[str]:
    if path is None:
        return None
    return path if os.path.isabs(path) else os.path.join(base, path)


def _cwl_job_order(tool: CommandLineTool, job_order: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild the CWL-side job order (File values as dictionaries) for output collection."""
    from repro.cwl.command_line import fill_in_defaults
    from repro.cwl.types import build_file_value, coerce_file_inputs

    rebuilt: Dict[str, Any] = {}
    for param in tool.inputs:
        if param.id not in job_order:
            continue
        value = job_order[param.id]
        if param.type.is_file and isinstance(value, (str, os.PathLike)):
            rebuilt[param.id] = build_file_value(os.fspath(value))
        else:
            rebuilt[param.id] = coerce_file_inputs(value)
    return fill_in_defaults(tool.inputs, rebuilt)
