"""A from-scratch implementation of a CWL v1.2 subset.

The Common Workflow Language reference implementation (``cwltool``) and the
Toil runner are not installable offline, so this subpackage provides the CWL
machinery the paper's integration and evaluation need:

* :mod:`repro.cwl.types` — the CWL type system (primitive types, ``File`` /
  ``Directory`` values, arrays, records, enums, optional/union types).
* :mod:`repro.cwl.schema` — the document model (``CommandLineTool``,
  ``Workflow``, ``ExpressionTool``, steps, parameters, bindings, requirements).
* :mod:`repro.cwl.loader` — YAML loading and normalisation into the model.
* :mod:`repro.cwl.validate` — structural validation of documents.
* :mod:`repro.cwl.expressions` — parameter references and a pure-Python
  interpreter for CWL's JavaScript expressions.
* :mod:`repro.cwl.command_line` — command-line construction from a tool and a
  job order (positions, prefixes, arrays, stdin/stdout/stderr redirection).
* :mod:`repro.cwl.outputs` — output collection (glob, outputEval, checksums).
* :mod:`repro.cwl.job` — single-tool job execution.
* :mod:`repro.cwl.graph` — the explicit dataflow IR: a ``WorkflowGraph`` of
  step/scatter/ingress/egress nodes with precomputed edges, indegrees and
  critical-path priorities, shared by every execution path.
* :mod:`repro.cwl.scheduler` — the event-driven dependency-counting scheduler
  (one bounded worker pool, priority dispatch, runtime scatter expansion).
* :mod:`repro.cwl.workflow` — the workflow engine (graph-backed dataflow
  scheduling, scatter, conditional ``when``, flattened subworkflows).
* :mod:`repro.cwl.runners` — the cwltool-like reference runner and the
  Toil-like runner used as evaluation baselines.
"""

from repro.cwl.loader import load_document, load_tool
from repro.cwl.schema import CommandLineTool, ExpressionTool, Workflow
from repro.cwl.runtime import RuntimeContext
from repro.cwl.job import CommandLineJob
from repro.cwl.runners.reference import ReferenceRunner
from repro.cwl.runners.toil.runner import ToilStyleRunner

__all__ = [
    "CommandLineJob",
    "CommandLineTool",
    "ExpressionTool",
    "ReferenceRunner",
    "RuntimeContext",
    "ToilStyleRunner",
    "Workflow",
    "load_document",
    "load_tool",
]
