"""Canonical, engine-independent form of CWL output objects.

Every engine resolves File outputs to *different* absolute paths (per-job
working directories, the Parsl cwd, the Toil job store) and decorates them
with different extras (``jobStoreFileID``, ``dirname``, cached ``contents``).
For conformance and differential testing two executions count as equivalent
when their outputs agree on the *content-addressed core*: class, basename,
size and checksum for files (recursively for directories and
``secondaryFiles``), exact values for everything else.

:func:`canonical_value` / :func:`canonical_outputs` reduce real execution
outputs to that core; :func:`expected_value` converts the compact form used
by conformance corpus YAML (where a File may be written as ``{class: File,
contents: "..."}``) into the same shape, so expected and actual outputs are
directly comparable with ``==``.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.cwl.types import is_directory_value, is_file_value, value_to_path
from repro.utils.hashing import hash_bytes, hash_file

#: File-value keys that carry engine- or path-dependent detail and are
#: dropped from the canonical form.
_DROPPED_FILE_KEYS = {
    "path", "location", "dirname", "nameroot", "nameext", "contents",
    "jobStoreFileID",
}


def canonical_value(value: Any) -> Any:
    """Reduce one output value to its engine-independent core.

    Files become ``{"class", "basename", "size", "checksum"}`` (checksum
    computed from the file on disk when the engine did not already record
    one); directories become their basename plus a canonicalised, listed
    content; lists and plain dicts recurse; scalars pass through.
    """
    if is_file_value(value):
        return _canonical_file(value)
    if is_directory_value(value):
        return _canonical_directory(value)
    if isinstance(value, list):
        return [canonical_value(item) for item in value]
    if isinstance(value, dict):
        return {key: canonical_value(item) for key, item in sorted(value.items())}
    return value


def canonical_outputs(outputs: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Canonicalise a whole CWL output object (output id -> value)."""
    return {key: canonical_value(value) for key, value in (outputs or {}).items()}


def _canonical_file(value: Dict[str, Any]) -> Dict[str, Any]:
    canonical: Dict[str, Any] = {"class": "File"}
    path: Optional[str] = None
    try:
        path = value_to_path(value)
    except Exception:
        path = None
    basename = value.get("basename")
    if basename is None and path:
        basename = os.path.basename(path)
    canonical["basename"] = basename

    size = value.get("size")
    checksum = value.get("checksum")
    if path and os.path.isfile(path):
        if size is None:
            size = os.stat(path).st_size
        if checksum is None:
            checksum = hash_file(path)
    canonical["size"] = size
    canonical["checksum"] = checksum

    if "secondaryFiles" in value:
        canonical["secondaryFiles"] = [canonical_value(item)
                                       for item in value["secondaryFiles"] or []]
    for key, item in sorted(value.items()):
        if key in canonical or key in _DROPPED_FILE_KEYS or key == "class":
            continue
        canonical[key] = canonical_value(item)
    return canonical


def _canonical_directory(value: Dict[str, Any]) -> Dict[str, Any]:
    canonical: Dict[str, Any] = {"class": "Directory",
                                 "basename": value.get("basename")}
    listing = value.get("listing")
    if listing is None:
        path = value.get("path")
        if path and os.path.isdir(path):
            listing = []
            for name in sorted(os.listdir(path)):
                full = os.path.join(path, name)
                if os.path.isdir(full):
                    listing.append({"class": "Directory", "path": full,
                                    "basename": name})
                else:
                    listing.append({"class": "File", "path": full,
                                    "basename": name})
    canonical["listing"] = sorted(
        (canonical_value(item) for item in listing or []),
        key=lambda item: str(item.get("basename", "")) if isinstance(item, dict) else str(item),
    )
    return canonical


def expected_value(spec: Any) -> Any:
    """Convert a corpus-YAML expected value into canonical form.

    The corpus writes file expectations by *content*::

        output: {class: File, basename: hello.txt, contents: "hi\\n"}

    which converts to the same ``{class, basename, size, checksum}`` shape
    :func:`canonical_value` produces for real outputs.  Specs that already
    carry ``size``/``checksum`` pass through; everything else recurses.
    """
    if isinstance(spec, dict) and spec.get("class") == "File":
        expected: Dict[str, Any] = {"class": "File",
                                    "basename": spec.get("basename")}
        if "contents" in spec and ("size" not in spec or "checksum" not in spec):
            body = str(spec["contents"]).encode("utf-8")
            expected["size"] = spec.get("size", len(body))
            expected["checksum"] = spec.get("checksum", hash_bytes(body))
        else:
            expected["size"] = spec.get("size")
            expected["checksum"] = spec.get("checksum")
        if "secondaryFiles" in spec:
            expected["secondaryFiles"] = [expected_value(item)
                                          for item in spec["secondaryFiles"] or []]
        return expected
    if isinstance(spec, dict) and spec.get("class") == "Directory":
        return {"class": "Directory", "basename": spec.get("basename"),
                "listing": sorted((expected_value(item) for item in spec.get("listing") or []),
                                  key=lambda item: str(item.get("basename", ""))
                                  if isinstance(item, dict) else str(item))}
    if isinstance(spec, list):
        return [expected_value(item) for item in spec]
    if isinstance(spec, dict):
        return {key: expected_value(item) for key, item in sorted(spec.items())}
    return spec
