"""Command-line construction.

Given a :class:`~repro.cwl.schema.CommandLineTool` and a job order (the concrete
input values), :func:`build_command_line` produces the argv list plus the
stdin/stdout/stderr redirections, following the CWL binding rules:

* ``baseCommand`` elements come first,
* each ``arguments`` entry and each bound input contributes a *binding* with a
  sort key ``(position, tie-breaker)``; bindings are stable-sorted by position,
* ``prefix`` / ``separate`` / ``itemSeparator`` control how values render,
* boolean inputs emit just their prefix when true and nothing when false,
* ``File`` values render as their path, arrays render per ``itemSeparator``,
* ``valueFrom`` expressions are evaluated with ``self`` bound to the input value,
* ``stdout``/``stderr``/``stdin`` fields may themselves contain expressions.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cwl.errors import ValidationException
from repro.cwl.expressions.evaluator import ExpressionEvaluator
from repro.cwl.schema import CommandInputParameter, CommandLineBinding, CommandLineTool
from repro.cwl.types import CWLType, is_directory_value, is_file_value, value_to_path


@dataclass
class CommandLineParts:
    """The result of command-line construction."""

    argv: List[str]
    stdin: Optional[str] = None
    stdout: Optional[str] = None
    stderr: Optional[str] = None
    environment: Dict[str, str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.environment is None:
            self.environment = {}

    def joined(self) -> str:
        """The argv as a single shell-quoted string (for logging / bash apps)."""
        return " ".join(shlex.quote(part) for part in self.argv)


def _value_to_cli_string(value: Any) -> str:
    """Render one scalar value the way it should appear on the command line."""
    if is_file_value(value) or is_directory_value(value):
        return value_to_path(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _binding_tokens(value: Any, binding: CommandLineBinding, cwl_type: Optional[CWLType]) -> List[str]:
    """Expand one bound value into its command-line tokens."""
    # Null / omitted optional values contribute nothing.
    if value is None:
        return []

    # Booleans: the prefix is emitted only when the value is true.
    if isinstance(value, bool):
        if value and binding.prefix:
            return [binding.prefix]
        return []

    # Arrays.
    if isinstance(value, list):
        if not value:
            return []
        rendered = [_value_to_cli_string(item) for item in value]
        if binding.item_separator is not None:
            joined = binding.item_separator.join(rendered)
            if binding.prefix:
                return [binding.prefix, joined] if binding.separate else [binding.prefix + joined]
            return [joined]
        # No itemSeparator: prefix (if any) is repeated before every element per CWL spec
        # when the array itself has no nested bindings.
        tokens: List[str] = []
        for item in rendered:
            if binding.prefix:
                if binding.separate:
                    tokens.extend([binding.prefix, item])
                else:
                    tokens.append(binding.prefix + item)
            else:
                tokens.append(item)
        return tokens

    rendered_value = _value_to_cli_string(value)
    if binding.prefix:
        if binding.separate:
            return [binding.prefix, rendered_value]
        return [binding.prefix + rendered_value]
    return [rendered_value]


def build_command_line(
    tool: CommandLineTool,
    job_order: Dict[str, Any],
    runtime: Dict[str, Any],
    evaluator: Optional[ExpressionEvaluator] = None,
) -> CommandLineParts:
    """Construct the argv and redirections for one invocation of ``tool``.

    When no ``evaluator`` is supplied, a tool that went through
    :func:`~repro.cwl.expressions.compiler.precompile_process` contributes its
    precompiled evaluator; otherwise a fresh uncached one is built.
    """
    if evaluator is None:
        compilation = getattr(tool, "compiled", None)
        evaluator = compilation.evaluator if compilation is not None \
            else ExpressionEvaluator(js_enabled=True)
    context = {"inputs": job_order, "runtime": runtime, "self": None}

    bindings: List[Tuple[Tuple[int, int], List[str]]] = []
    tie_breaker = 0

    # arguments: contribute bindings with default position 0.
    for argument in tool.arguments:
        tie_breaker += 1
        if isinstance(argument, str):
            evaluated = evaluator.evaluate(argument, context)
            tokens = [_value_to_cli_string(evaluated)] if evaluated is not None else []
            bindings.append(((0, tie_breaker), tokens))
            continue
        binding: CommandLineBinding = argument
        position = binding.position or 0
        if binding.value_from is None:
            raise ValidationException("argument bindings must provide valueFrom")
        evaluated = evaluator.evaluate(binding.value_from, context)
        tokens = _binding_tokens(evaluated, binding, None)
        bindings.append(((position, tie_breaker), tokens))

    # inputs with inputBinding.
    for param in tool.inputs:
        if param.input_binding is None:
            continue
        tie_breaker += 1
        value = job_order.get(param.id)
        binding = param.input_binding
        position_spec = binding.position
        if isinstance(position_spec, str):
            position = int(evaluator.evaluate(position_spec, context) or 0)
        else:
            position = position_spec or 0
        if binding.value_from is not None:
            local_context = dict(context)
            local_context["self"] = value
            value = evaluator.evaluate(binding.value_from, local_context)
        tokens = _binding_tokens(value, binding, param.type)
        bindings.append(((position, tie_breaker), tokens))

    bindings.sort(key=lambda item: item[0])

    argv: List[str] = list(tool.base_command)
    for _key, tokens in bindings:
        argv.extend(tokens)

    stdin = evaluator.evaluate(tool.stdin, context) if tool.stdin else None
    stdout = evaluator.evaluate(tool.stdout, context) if tool.stdout else None
    stderr = evaluator.evaluate(tool.stderr, context) if tool.stderr else None

    # Tools whose outputs use type stdout/stderr without naming a file get a default name.
    if stdout is None and any(o.raw_type == "stdout" for o in tool.outputs):
        stdout = f"{(tool.id or 'tool').replace('/', '_')}.stdout"
    if stderr is None and any(o.raw_type == "stderr" for o in tool.outputs):
        stderr = f"{(tool.id or 'tool').replace('/', '_')}.stderr"

    environment: Dict[str, str] = {}
    env_req = tool.get_requirement("EnvVarRequirement")
    if env_req:
        env_def = env_req.get("envDef", {})
        if isinstance(env_def, list):
            env_def = {entry["envName"]: entry["envValue"] for entry in env_def}
        for name, value_expr in env_def.items():
            environment[name] = str(evaluator.evaluate(value_expr, context))

    if is_file_value(job_order.get("__stdin__", None)):
        stdin = value_to_path(job_order["__stdin__"])
    elif stdin is not None and (is_file_value(stdin) or is_directory_value(stdin)):
        stdin = value_to_path(stdin)

    return CommandLineParts(
        argv=[str(part) for part in argv],
        stdin=stdin if stdin is None or isinstance(stdin, str) else str(stdin),
        stdout=stdout if stdout is None or isinstance(stdout, str) else str(stdout),
        stderr=stderr if stderr is None or isinstance(stderr, str) else str(stderr),
        environment=environment,
    )


def fill_in_defaults(tool_inputs: List[CommandInputParameter],
                     job_order: Dict[str, Any]) -> Dict[str, Any]:
    """Return a copy of ``job_order`` with declared defaults applied.

    Missing required (non-optional, no-default) inputs are left absent; the
    validator reports them.
    """
    filled = dict(job_order)
    for param in tool_inputs:
        if param.id in filled and filled[param.id] is not None:
            continue
        if param.has_default:
            filled[param.id] = param.default
        elif param.type.is_optional and param.id not in filled:
            filled[param.id] = None
    return filled
