"""CWL runners: the cwltool-like reference runner and the Toil-like runner."""

from repro.cwl.runners.base import BaseRunner, RunnerResult
from repro.cwl.runners.reference import ReferenceRunner
from repro.cwl.runners.toil.runner import ToilStyleRunner

__all__ = ["BaseRunner", "ReferenceRunner", "RunnerResult", "ToilStyleRunner"]
