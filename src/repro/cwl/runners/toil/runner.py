"""The Toil-like CWL runner.

Execution model (mirroring ``toil-cwl-runner``):

1. every tool invocation becomes a job *description* written to the file-based
   job store,
2. the job is issued to a batch system (local thread pool or the simulated
   Slurm cluster) and its state transitions (issued → running → done/failed)
   are persisted back to the store,
3. output files are imported into the job store (content-addressed copies) so
   a resumed workflow could reuse them,
4. workflow-level dataflow (step ordering, scatter, ``when``) reuses the shared
   :class:`~repro.cwl.workflow.WorkflowEngine`, with jobs running concurrently
   when the batch system allows it.

The per-job store writes and (for the Slurm batch system) the per-task
scheduler round trips are what differentiate this runner's scaling behaviour
from the Parsl bridge in Figure 1.
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, Dict, Optional

from repro.cwl.cow import job_order_view
from repro.cwl.job import CommandLineJob
from repro.cwl.runners.base import BaseRunner
from repro.cwl.runners.toil.batch import BatchSystem, SingleMachineBatchSystem
from repro.cwl.runners.toil.jobstore import FileJobStore
from repro.cwl.runtime import RuntimeContext
from repro.cwl.schema import CommandLineTool, Process, Workflow
from repro.cwl.types import is_file_value
from repro.cwl.workflow import WorkflowEngine
from repro.utils.logging_config import get_logger

logger = get_logger("cwl.runners.toil")


class ToilStyleRunner(BaseRunner):
    """Job-store based CWL runner with pluggable batch systems."""

    name = "toil-like"

    def __init__(
        self,
        job_store_dir: Optional[str] = None,
        batch_system: Optional[BatchSystem] = None,
        runtime_context: Optional[RuntimeContext] = None,
        parallel: bool = True,
        max_workers: int = 8,
        import_outputs: bool = True,
        validate: bool = True,
        pipeline: bool = False,
        max_inflight: Optional[int] = None,
    ) -> None:
        if runtime_context is None:
            runtime_context = RuntimeContext(cache_js_engine=False)
        if runtime_context.compile_expressions is None:
            # This long-lived runner defaults to the compiled-expression
            # pipeline; pass compile_expressions=False to force the
            # cwltool-style per-evaluation cost model instead.
            runtime_context = runtime_context.child(compile_expressions=True)
        super().__init__(runtime_context=runtime_context, validate=validate)
        #: True when this runner created a throwaway store itself; such stores
        #: are destroyed on :meth:`close` by default so sessions never leak
        #: ``toil-jobstore-*`` temp directories between runs.
        self._owns_job_store = job_store_dir is None
        self.job_store = FileJobStore(job_store_dir or tempfile.mkdtemp(prefix="toil-jobstore-"))
        self.batch_system = batch_system or SingleMachineBatchSystem(max_cores=max_workers)
        self.parallel = parallel
        self.max_workers = max_workers
        self.import_outputs = import_outputs
        #: Run workflows on the asyncio pipelined scheduler core instead of
        #: the thread-pool core (``max_inflight`` bounds its in-flight window).
        self.pipeline = pipeline
        self.max_inflight = max_inflight
        #: Per-stage wall time of the last pipelined workflow run.
        self.stage_timings: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ tools

    def run_tool(self, tool: CommandLineTool, job_order: Dict[str, Any],
                 runtime_context: RuntimeContext) -> Dict[str, Any]:
        stored = self.job_store.create_job(
            name=tool.id or "tool",
            requirements=self._job_requirements(tool),
            payload={"inputs": _summarise_job_order(job_order)},
        )
        cache_enabled = runtime_context.job_cache_dir() is not None

        def attempt(_n: int) -> Dict[str, Any]:
            job = CommandLineJob(
                tool=tool,
                # Copy-on-write view instead of deepcopy: scatter loops issue
                # this per job, and the leaves never needed copying.
                job_order=job_order_view(job_order),
                runtime_context=runtime_context,
            )
            if cache_enabled:
                # Probe the job cache before issuing: a hit restores the
                # outputs without the batch-system round trip (Toil likewise
                # reuses job-store results without rescheduling the job).
                cached = job.cached_result()
                if cached is not None:
                    if self.import_outputs:
                        self._import_output_files(cached.outputs)
                    self.job_store.update_job(stored, state="done")
                    self.note_job_meta(cache="hit")
                    return cached.outputs

            cache_outcome: Dict[str, str] = {}

            def payload() -> Dict[str, Any]:
                self.job_store.update_job(stored, state="running")
                result = job.execute()
                if cache_enabled:
                    cache_outcome["cache"] = "hit" if result.cache_hit else "miss"
                if self.import_outputs:
                    self._import_output_files(result.outputs)
                return result.outputs

            self.job_store.update_job(stored, state="issued")
            cores = int(self._job_requirements(tool).get("coresMin", 1))
            future = self.batch_system.issue(stored.name, payload, cores=cores)
            try:
                outputs = future.result()
            except Exception as exc:
                self.job_store.update_job(stored, state="failed", error=str(exc))
                raise
            self.job_store.update_job(stored, state="done")
            if cache_outcome:
                self.note_job_meta(**cache_outcome)
            return outputs

        # The retry loop wraps the whole probe-and-issue path, so injected
        # faults fire ahead of the cache probe (identical to the other
        # engines) and each re-attempt is re-issued through the batch system.
        return self._with_retries(runtime_context, tool.id or "<tool>", attempt)

    def run_workflow(self, workflow: Workflow, job_order: Dict[str, Any],
                     runtime_context: RuntimeContext) -> Dict[str, Any]:
        engine = WorkflowEngine(
            workflow,
            process_runner=self._process_runner,
            runtime_context=runtime_context,
            parallel=self.parallel,
            max_workers=self.max_workers,
            pipeline=self.pipeline,
            max_inflight=self.max_inflight,
        )
        try:
            return engine.run(job_order)
        finally:
            self.node_states = engine.node_states
            self.failures = engine.failures
            self.stage_timings = engine.stage_timings

    # --------------------------------------------------------------- plumbing

    def _process_runner(self, process: Process, job_order: Dict[str, Any],
                        runtime_context: RuntimeContext) -> Dict[str, Any]:
        return self._run_process(process, job_order, runtime_context)

    @staticmethod
    def _job_requirements(tool: CommandLineTool) -> Dict[str, Any]:
        resource_req = tool.get_requirement("ResourceRequirement") or {}
        return {
            "coresMin": resource_req.get("coresMin", 1),
            "ramMin": resource_req.get("ramMin", 256),
        }

    def _import_output_files(self, outputs: Dict[str, Any]) -> None:
        """Copy every produced File into the job store (Toil's behaviour)."""

        def visit(value: Any) -> None:
            if is_file_value(value):
                path = value.get("path")
                if path and os.path.exists(path):
                    value["jobStoreFileID"] = self.job_store.import_file(path)
            elif isinstance(value, list):
                for item in value:
                    visit(item)
            elif isinstance(value, dict):
                for item in value.values():
                    visit(item)

        visit(outputs)

    def close(self, destroy_job_store: Optional[bool] = None) -> None:
        """Shut down the batch system and release the job store.

        ``destroy_job_store=None`` (the default) removes the store only when
        this runner created it as a temp directory; pass ``True``/``False`` to
        force either way (a caller-supplied ``job_store_dir`` is theirs to
        keep unless they ask for destruction).  Idempotent: closing twice is
        safe, so engine/session teardown is deterministic.
        """
        self.batch_system.shutdown()
        if destroy_job_store is None:
            destroy_job_store = self._owns_job_store
        if destroy_job_store:
            self.job_store.destroy()


def _summarise_job_order(job_order: Dict[str, Any]) -> Dict[str, Any]:
    """A JSON-safe summary of the job order for the stored job description."""
    summary: Dict[str, Any] = {}
    for key, value in job_order.items():
        if is_file_value(value):
            summary[key] = {"class": "File", "basename": value.get("basename")}
        elif isinstance(value, (str, int, float, bool)) or value is None:
            summary[key] = value
        else:
            summary[key] = repr(value)[:200]
    return summary
