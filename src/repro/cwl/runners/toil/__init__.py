"""A Toil-like CWL runner: file-based job store + batch-system dispatch."""

from repro.cwl.runners.toil.jobstore import FileJobStore
from repro.cwl.runners.toil.batch import (
    BatchSystem,
    SingleMachineBatchSystem,
    SlurmBatchSystem,
)
from repro.cwl.runners.toil.runner import ToilStyleRunner

__all__ = [
    "BatchSystem",
    "FileJobStore",
    "SingleMachineBatchSystem",
    "SlurmBatchSystem",
    "ToilStyleRunner",
]
