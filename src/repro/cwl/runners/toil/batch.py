"""Batch systems for the Toil-like runner.

Toil separates *what* to run (jobs in the job store) from *where* to run it
(a batch system).  Two batch systems are provided:

* :class:`SingleMachineBatchSystem` — a bounded thread pool on the local host,
  the analogue of ``--batchSystem single_machine``.
* :class:`SlurmBatchSystem` — every issued job becomes one job in the simulated
  Slurm cluster (`repro.cluster`), the analogue of ``--batchSystem slurm`` used
  in the paper's three-node experiment.  Note the contrast with Parsl's pilot
  job model: Toil submits *one scheduler job per task*, which is precisely why
  its per-task overhead is higher on busy clusters.
"""

from __future__ import annotations

import concurrent.futures as cf
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Optional

from repro.cluster.jobs import JobSpec, JobState
from repro.cluster.scheduler import SimulatedSlurmCluster, default_cluster


class BatchSystem(ABC):
    """Interface: issue callables, wait for them, shut down."""

    @abstractmethod
    def issue(self, name: str, payload: Callable[[], Any],
              cores: int = 1, memory_mb: int = 256) -> "cf.Future":
        """Run ``payload`` somewhere; returns a future for its result."""

    @abstractmethod
    def shutdown(self) -> None:
        """Release all resources."""


class SingleMachineBatchSystem(BatchSystem):
    """Run issued jobs on a bounded local thread pool."""

    def __init__(self, max_cores: int = 8) -> None:
        if max_cores < 1:
            raise ValueError("max_cores must be >= 1")
        self.max_cores = max_cores
        self._pool = cf.ThreadPoolExecutor(max_workers=max_cores,
                                           thread_name_prefix="toil-single")
        self.jobs_issued = 0

    def issue(self, name: str, payload: Callable[[], Any],
              cores: int = 1, memory_mb: int = 256) -> cf.Future:
        self.jobs_issued += 1
        return self._pool.submit(payload)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=False)


class SlurmBatchSystem(BatchSystem):
    """Submit every issued job to the (simulated) Slurm cluster."""

    def __init__(self, cluster: Optional[SimulatedSlurmCluster] = None,
                 cores_per_job: int = 1, memory_mb_per_job: int = 256) -> None:
        self.cluster = cluster or default_cluster()
        self.cores_per_job = cores_per_job
        self.memory_mb_per_job = memory_mb_per_job
        self.jobs_issued = 0
        self._watcher_pool = cf.ThreadPoolExecutor(max_workers=64,
                                                   thread_name_prefix="toil-slurm-watch")

    def issue(self, name: str, payload: Callable[[], Any],
              cores: int = 1, memory_mb: int = 256) -> cf.Future:
        self.jobs_issued += 1
        spec = JobSpec(
            name=name,
            callable_payload=payload,
            nodes=1,
            cores_per_node=max(cores, self.cores_per_job),
            memory_mb_per_node=max(memory_mb, self.memory_mb_per_job),
        )
        job_id = self.cluster.sbatch(spec)

        def wait_for_job() -> Any:
            job = self.cluster.wait(job_id)
            if job.state == JobState.COMPLETED:
                return job.result
            raise RuntimeError(f"batch job {name!r} ({job_id}) ended in state {job.state}: {job.error}")

        return self._watcher_pool.submit(wait_for_job)

    def shutdown(self) -> None:
        self._watcher_pool.shutdown(wait=True, cancel_futures=False)
