"""A file-based job store.

Toil persists every job description, its state transitions and all intermediate
files into a *job store* so that interrupted workflows can be resumed.  This
class reproduces the parts that matter for behaviour and for the performance
comparison:

* each job is a JSON document on disk, written when the job is created and
  rewritten on every state change,
* intermediate files are imported into the store as content-addressed copies
  and exported back out when a downstream job (or the final output) needs them,
* the store can be reopened and enumerated, which is what makes the Toil-like
  runner restartable.

These per-job filesystem writes are exactly the overhead that makes a job-store
based runner slower per task than Parsl's in-memory dataflow, which is the
effect visible in the paper's Figure 1.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.utils.hashing import hash_file
from repro.utils.ids import RunIdGenerator


@dataclass
class StoredJob:
    """One job description persisted in the job store."""

    job_id: str
    name: str
    state: str = "new"                      # new | issued | running | done | failed
    requirements: Dict[str, Any] = field(default_factory=dict)
    payload: Dict[str, Any] = field(default_factory=dict)
    created_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)
    error: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)


class FileJobStore:
    """Persist jobs and files under a single directory."""

    def __init__(self, store_dir: str) -> None:
        self.store_dir = os.path.abspath(store_dir)
        self.jobs_dir = os.path.join(self.store_dir, "jobs")
        self.files_dir = os.path.join(self.store_dir, "files")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.files_dir, exist_ok=True)
        self._ids = RunIdGenerator(start=1)
        self._lock = threading.Lock()

    # ----------------------------------------------------------------- jobs

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def create_job(self, name: str, requirements: Optional[Dict[str, Any]] = None,
                   payload: Optional[Dict[str, Any]] = None) -> StoredJob:
        """Create and persist a new job description."""
        with self._lock:
            job_id = f"job-{self._ids.next():06d}"
        job = StoredJob(job_id=job_id, name=name,
                        requirements=requirements or {}, payload=payload or {})
        self._write(job)
        return job

    def update_job(self, job: StoredJob, state: Optional[str] = None,
                   error: Optional[str] = None) -> StoredJob:
        """Persist a state change."""
        if state is not None:
            job.state = state
        if error is not None:
            job.error = error
        job.updated_at = time.time()
        self._write(job)
        return job

    def load_job(self, job_id: str) -> StoredJob:
        with open(self._job_path(job_id), "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return StoredJob(**data)

    def list_jobs(self) -> List[StoredJob]:
        jobs = []
        for entry in sorted(os.listdir(self.jobs_dir)):
            if entry.endswith(".json"):
                jobs.append(self.load_job(entry[:-5]))
        return jobs

    def delete_job(self, job_id: str) -> None:
        try:
            os.unlink(self._job_path(job_id))
        except FileNotFoundError:
            pass

    def _write(self, job: StoredJob) -> None:
        path = self._job_path(job.job_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(job.to_json(), handle, indent=2, sort_keys=True)
        os.replace(tmp, path)

    # ---------------------------------------------------------------- files

    def import_file(self, path: str) -> str:
        """Copy ``path`` into the store; returns the store file id."""
        checksum = hash_file(path).split("$", 1)[1]
        basename = os.path.basename(path)
        file_id = f"{checksum[:16]}-{basename}"
        destination = os.path.join(self.files_dir, file_id)
        if not os.path.exists(destination):
            shutil.copy2(path, destination)
        return file_id

    def export_file(self, file_id: str, destination: str) -> str:
        """Copy a stored file out of the store to ``destination``."""
        source = os.path.join(self.files_dir, file_id)
        os.makedirs(os.path.dirname(os.path.abspath(destination)) or ".", exist_ok=True)
        shutil.copy2(source, destination)
        return destination

    def file_path(self, file_id: str) -> str:
        return os.path.join(self.files_dir, file_id)

    def has_file(self, file_id: str) -> bool:
        return os.path.exists(os.path.join(self.files_dir, file_id))

    # ------------------------------------------------------------- lifecycle

    def stats(self) -> Dict[str, int]:
        """Counts of jobs per state plus stored file count (used in tests)."""
        counts: Dict[str, int] = {}
        for job in self.list_jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        counts["files"] = len(os.listdir(self.files_dir))
        return counts

    def destroy(self) -> None:
        """Remove the job store from disk entirely."""
        shutil.rmtree(self.store_dir, ignore_errors=True)
