"""A file-based job store.

Toil persists every job description, its state transitions and all intermediate
files into a *job store* so that interrupted workflows can be resumed.  This
class reproduces the parts that matter for behaviour and for the performance
comparison:

* each job is a JSON document on disk, written when the job is created and
  rewritten on every state change,
* intermediate files are imported into the store as content-addressed copies
  and exported back out when a downstream job (or the final output) needs them,
* the store can be reopened and enumerated, which is what makes the Toil-like
  runner restartable.

These per-job filesystem writes are exactly the overhead that makes a job-store
based runner slower per task than Parsl's in-memory dataflow, which is the
effect visible in the paper's Figure 1.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.cwl.jobcache import stage_file
from repro.utils.hashing import hash_file
from repro.utils.ids import RunIdGenerator


@dataclass
class StoredJob:
    """One job description persisted in the job store."""

    job_id: str
    name: str
    state: str = "new"                      # new | issued | running | done | failed
    requirements: Dict[str, Any] = field(default_factory=dict)
    payload: Dict[str, Any] = field(default_factory=dict)
    created_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)
    error: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)


class FileJobStore:
    """Persist jobs and files under a single directory."""

    def __init__(self, store_dir: str) -> None:
        self.store_dir = os.path.abspath(store_dir)
        self.jobs_dir = os.path.join(self.store_dir, "jobs")
        self.files_dir = os.path.join(self.store_dir, "files")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.files_dir, exist_ok=True)
        self._ids = RunIdGenerator(start=1)
        self._lock = threading.Lock()
        # State counts are maintained incrementally (one scan on open for
        # restartability) so stats() stays O(1) however many jobs a
        # long-lived session accumulates.  Unreadable job documents (e.g.
        # truncated by a crash) are skipped, not fatal.
        self._state_counts: Dict[str, int] = {}
        self._file_count = 0
        for entry in sorted(os.listdir(self.jobs_dir)):
            if not entry.endswith(".json"):
                continue
            try:
                state = self.load_job(entry[:-5]).state
            except Exception:
                continue
            self._state_counts[state] = self._state_counts.get(state, 0) + 1
        try:
            self._file_count = len(os.listdir(self.files_dir))
        except OSError:
            self._file_count = 0

    # ----------------------------------------------------------------- jobs

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def create_job(self, name: str, requirements: Optional[Dict[str, Any]] = None,
                   payload: Optional[Dict[str, Any]] = None) -> StoredJob:
        """Create and persist a new job description."""
        with self._lock:
            job_id = f"job-{self._ids.next():06d}"
        job = StoredJob(job_id=job_id, name=name,
                        requirements=requirements or {}, payload=payload or {})
        self._write(job)
        with self._lock:
            self._state_counts[job.state] = self._state_counts.get(job.state, 0) + 1
        return job

    def update_job(self, job: StoredJob, state: Optional[str] = None,
                   error: Optional[str] = None) -> StoredJob:
        """Persist a state change."""
        if state is not None and state != job.state:
            with self._lock:
                self._state_counts[job.state] = self._state_counts.get(job.state, 1) - 1
                self._state_counts[state] = self._state_counts.get(state, 0) + 1
            job.state = state
        if error is not None:
            job.error = error
        job.updated_at = time.time()
        self._write(job)
        return job

    def load_job(self, job_id: str) -> StoredJob:
        with open(self._job_path(job_id), "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return StoredJob(**data)

    def list_jobs(self) -> List[StoredJob]:
        jobs = []
        for entry in sorted(os.listdir(self.jobs_dir)):
            if entry.endswith(".json"):
                jobs.append(self.load_job(entry[:-5]))
        return jobs

    def delete_job(self, job_id: str) -> None:
        state: Optional[str] = None
        try:
            state = self.load_job(job_id).state
        except Exception:
            pass  # corrupt documents are still deletable
        try:
            os.unlink(self._job_path(job_id))
        except FileNotFoundError:
            return
        if state is not None:
            with self._lock:
                self._state_counts[state] = self._state_counts.get(state, 1) - 1

    def _write(self, job: StoredJob) -> None:
        path = self._job_path(job.job_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(job.to_json(), handle, indent=2, sort_keys=True)
        os.replace(tmp, path)

    # ---------------------------------------------------------------- files

    def import_file(self, path: str) -> str:
        """Import ``path`` into the store; returns the store file id.

        Zero-copy: the content-addressed store entry is a hardlink to the
        produced file whenever the filesystem allows it, with a copy as the
        fallback (see :func:`repro.cwl.jobcache.stage_file`).
        """
        checksum = hash_file(path).split("$", 1)[1]
        basename = os.path.basename(path)
        file_id = f"{checksum[:16]}-{basename}"
        destination = os.path.join(self.files_dir, file_id)
        if not os.path.exists(destination):
            # stage_file reports "kept" when a concurrent importer won the
            # race, so exactly one of the racers counts the new file.
            if stage_file(path, destination, overwrite=False) != "kept":
                with self._lock:
                    self._file_count += 1
        return file_id

    def export_file(self, file_id: str, destination: str) -> str:
        """Stage a stored file out of the store to ``destination`` (hardlink,
        copy fallback)."""
        source = os.path.join(self.files_dir, file_id)
        stage_file(source, destination)
        return destination

    def file_path(self, file_id: str) -> str:
        return os.path.join(self.files_dir, file_id)

    def has_file(self, file_id: str) -> bool:
        return os.path.exists(os.path.join(self.files_dir, file_id))

    # ------------------------------------------------------------- lifecycle

    def stats(self) -> Dict[str, int]:
        """Counts of jobs per state plus stored file count.

        Served from incrementally maintained counters — constant time, where
        the previous implementation re-read every job document on each call
        (a growing per-run cost in long-lived sessions).
        """
        with self._lock:
            counts = {state: count for state, count in self._state_counts.items()
                      if count > 0}
            counts["files"] = self._file_count
        return counts

    def destroy(self) -> None:
        """Remove the job store from disk entirely."""
        shutil.rmtree(self.store_dir, ignore_errors=True)
