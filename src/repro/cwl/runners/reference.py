"""The cwltool-like reference runner.

This runner mirrors how ``cwltool`` executes documents:

* every job gets its own freshly created working directory,
* the tool document is re-validated and the job order deep-copied for every job
  (cwltool rebuilds its internal ``Process`` state per job),
* JavaScript expressions are evaluated with a *fresh* engine per evaluation —
  the analogue of cwltool starting a node.js sandbox for expression batches —
  unless the runtime context explicitly enables engine caching
  (``cache_js_engine=True``) or the compiled pipeline
  (``compile_expressions=True``); both stay off by default so the Figure 2
  uncached series keeps its shape,
* with ``parallel=False`` jobs run strictly one at a time (plain ``cwltool``);
  with ``parallel=True`` independent steps and scatter jobs run on a thread
  pool (``cwltool --parallel``), which is the configuration the paper compares
  against.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional

from repro.cwl.job import CommandLineJob
from repro.cwl.runners.base import BaseRunner
from repro.cwl.runtime import RuntimeContext
from repro.cwl.schema import CommandLineTool, Process, Workflow
from repro.cwl.validate import ensure_valid
from repro.cwl.workflow import WorkflowEngine


class ReferenceRunner(BaseRunner):
    """Serial (or thread-parallel) local CWL runner."""

    name = "cwltool-like"

    def __init__(self, runtime_context: Optional[RuntimeContext] = None,
                 parallel: bool = False, max_workers: int = 8,
                 validate: bool = True, pipeline: bool = False,
                 max_inflight: Optional[int] = None) -> None:
        if runtime_context is None:
            runtime_context = RuntimeContext(cache_js_engine=False)
        super().__init__(runtime_context=runtime_context, validate=validate)
        self.parallel = parallel
        self.max_workers = max_workers
        #: Run workflows on the asyncio pipelined scheduler core instead of
        #: the thread-pool core (``max_inflight`` bounds its in-flight window).
        self.pipeline = pipeline
        self.max_inflight = max_inflight
        #: Per-stage wall time of the last pipelined workflow run.
        self.stage_timings: Optional[Dict[str, Any]] = None

    # ----------------------------------------------------------------- tooling

    def run_tool(self, tool: CommandLineTool, job_order: Dict[str, Any],
                 runtime_context: RuntimeContext) -> Dict[str, Any]:
        # cwltool revalidates and rebuilds its job object for every invocation;
        # reproducing that per-job work keeps the runner comparison honest.
        if self.validate:
            ensure_valid(tool)
        def attempt(_n: int):
            job = CommandLineJob(
                tool=tool,
                job_order=copy.deepcopy(job_order),
                runtime_context=runtime_context,
            )
            return job.execute()

        result = self._with_retries(runtime_context, tool.id or "<tool>", attempt)
        if runtime_context.job_cache_dir() is not None:
            self.note_job_meta(cache="hit" if result.cache_hit else "miss")
        return result.outputs

    def run_workflow(self, workflow: Workflow, job_order: Dict[str, Any],
                     runtime_context: RuntimeContext) -> Dict[str, Any]:
        engine = WorkflowEngine(
            workflow,
            process_runner=self._process_runner,
            runtime_context=runtime_context,
            parallel=self.parallel,
            max_workers=self.max_workers,
            pipeline=self.pipeline,
            max_inflight=self.max_inflight,
        )
        try:
            return engine.run(job_order)
        finally:
            self.node_states = engine.node_states
            self.failures = engine.failures
            self.stage_timings = engine.stage_timings

    # ----------------------------------------------------------------- plumbing

    def _process_runner(self, process: Process, job_order: Dict[str, Any],
                        runtime_context: RuntimeContext) -> Dict[str, Any]:
        return self._run_process(process, job_order, runtime_context)
