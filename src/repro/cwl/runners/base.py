"""Common machinery shared by the CWL runners.

A *runner* takes a loaded process plus a job order and produces an output
object, the same contract as ``cwltool workflow.cwl job.yml``.  The two
concrete runners in this package differ in how they execute individual jobs:

* :class:`~repro.cwl.runners.reference.ReferenceRunner` executes each job as a
  local subprocess (optionally using a thread pool for independent jobs),
  mirroring ``cwltool`` / ``cwltool --parallel``.
* :class:`~repro.cwl.runners.toil.runner.ToilStyleRunner` records each job in a
  file-based job store and dispatches it through a batch system (single machine
  or the simulated Slurm cluster), mirroring ``toil-cwl-runner``.

The Parsl bridge (:mod:`repro.core`) is effectively a third runner and is the
paper's contribution.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.cwl.errors import ValidationException
from repro.cwl.expressions.evaluator import ExpressionEvaluator
from repro.cwl.runtime import RuntimeContext
from repro.cwl.schema import CommandLineTool, ExpressionTool, Process, Workflow
from repro.cwl.types import coerce_file_inputs
from repro.cwl.validate import ensure_valid


@dataclass
class RunnerResult:
    """Output object plus bookkeeping from one runner invocation."""

    outputs: Dict[str, Any]
    status: str = "success"
    #: Number of individual tool jobs that were executed.
    jobs_run: int = 0
    #: Wall-clock seconds, filled in by the runner.
    wall_time_s: float = 0.0
    details: Dict[str, Any] = field(default_factory=dict)


class BaseRunner(ABC):
    """Shared runner behaviour: validation, expression-tool handling, dispatch."""

    name = "base"

    def __init__(self, runtime_context: Optional[RuntimeContext] = None,
                 validate: bool = True) -> None:
        self.runtime_context = runtime_context or RuntimeContext()
        self.validate = validate
        self.jobs_run = 0
        #: Scheduler node states / failures of the last workflow run (filled
        #: by ``run_workflow``; empty for single tools and fully green runs).
        self.node_states: Dict[str, str] = {}
        self.failures: Dict[str, BaseException] = {}
        #: Optional job observer (duck-typed ``job_started``/``job_finished``,
        #: see :class:`repro.api.events.EventRecorder`).  Set by the unified
        #: API engines; may be called from worker threads.
        self.hooks = None
        #: Per-thread side channel through which ``run_tool`` implementations
        #: annotate the *current* job's end event (e.g. cache hit/miss).  A
        #: thread-local works because ``_observed`` and the ``run_tool`` it
        #: wraps always share a thread, even when the actual execution is
        #: delegated elsewhere (the Toil batch system).
        self._job_meta = threading.local()

    def note_job_meta(self, **meta: Any) -> None:
        """Record metadata for the job currently observed on this thread."""
        current = getattr(self._job_meta, "value", None) or {}
        current.update(meta)
        self._job_meta.value = current

    def _with_retries(self, runtime_context: RuntimeContext, job_name: str,
                      fn) -> Any:
        """Run ``fn(attempt)`` under the context's retry policy + fault plan.

        The one retry loop every runner's ``run_tool`` goes through: faults
        inject *before* each attempt (ahead of any cache probe), retries are
        surfaced as ``"retry"`` events on the observer channel, and the final
        attempt number is noted on the job's end event.
        """
        policy = runtime_context.retry_policy
        plan = runtime_context.fault_plan
        if policy is None and plan is None:
            return fn(1)
        from repro.cwl.retry import RetryObservation, execute_with_retries

        hooks = self.hooks

        def on_retry(attempt: int, exc: BaseException, delay: float) -> None:
            token = getattr(self._job_meta, "token", None)
            if hooks is not None and token is not None:
                hooks.job_retry(token, attempt, error=str(exc), delay_s=delay)
            if runtime_context.journal is not None:
                runtime_context.journal.record(
                    "retry", job=job_name, attempt=attempt, error=str(exc),
                    delay_s=delay)

        observation = RetryObservation()
        try:
            return execute_with_retries(
                fn, policy=policy, job=job_name, fault_plan=plan,
                observation=observation, on_retry=on_retry)
        finally:
            if observation.attempt > 1:
                self.note_job_meta(attempt=observation.attempt)

    # ------------------------------------------------------------------ public

    def run(self, process: Process, job_order: Dict[str, Any]) -> RunnerResult:
        """Run any process (tool, expression tool or workflow)."""
        import time

        start = time.perf_counter()
        self.jobs_run = 0
        self.node_states: Dict[str, str] = {}
        self.failures: Dict[str, BaseException] = {}
        if self.validate:
            ensure_valid(process)
        if self.runtime_context.compile_expressions:
            # The precompiled-process pass: every expression in the document
            # (bindings, outputs, step valueFrom/when, sub-processes) is
            # compiled once here, at validate time.
            from repro.cwl.expressions.compiler import precompile_process

            precompile_process(process)
        job_order = {k: coerce_file_inputs(v) for k, v in job_order.items()}
        outputs = self._run_process(process, job_order, self.runtime_context)
        elapsed = time.perf_counter() - start
        # Failed nodes only reach this point under on_error="continue": the
        # outputs are partial and the result says so instead of raising.
        details: Dict[str, Any] = {}
        if self.failures:
            details["failures"] = {node: str(exc)
                                   for node, exc in self.failures.items()}
        if self.node_states:
            details["node_states"] = dict(self.node_states)
        status = "permanentFail" if self.failures else "success"
        return RunnerResult(outputs=outputs, status=status, jobs_run=self.jobs_run,
                            wall_time_s=elapsed, details=details)

    # ----------------------------------------------------------------- dispatch

    def _run_process(self, process: Process, job_order: Dict[str, Any],
                     runtime_context: RuntimeContext) -> Dict[str, Any]:
        if isinstance(process, CommandLineTool):
            self.jobs_run += 1
            return self._observed(self.run_tool, process, job_order, runtime_context)
        if isinstance(process, ExpressionTool):
            self.jobs_run += 1
            return self._observed(self.run_expression_tool, process, job_order,
                                  runtime_context)
        if isinstance(process, Workflow):
            return self.run_workflow(process, job_order, runtime_context)
        raise ValidationException(f"cannot run process of type {type(process).__name__}")

    def _observed(self, method, process: Process, job_order: Dict[str, Any],
                  runtime_context: RuntimeContext) -> Dict[str, Any]:
        """Run one job, reporting start/end to the attached observer (if any)."""
        hooks = self.hooks
        if hooks is None:
            return method(process, job_order, runtime_context)
        token = hooks.job_started(process.id or type(process).__name__)
        self._job_meta.value = None
        self._job_meta.token = token
        try:
            outputs = method(process, job_order, runtime_context)
        except Exception as exc:
            meta = getattr(self._job_meta, "value", None) or {}
            self._job_meta.value = None
            self._job_meta.token = None
            hooks.job_finished(token, ok=False, error=str(exc),
                               attempt=meta.get("attempt", 1))
            raise
        meta = getattr(self._job_meta, "value", None) or {}
        self._job_meta.value = None
        self._job_meta.token = None
        hooks.job_finished(token, cache=meta.get("cache"),
                           attempt=meta.get("attempt", 1))
        return outputs

    # ------------------------------------------------------------- per-process

    @abstractmethod
    def run_tool(self, tool: CommandLineTool, job_order: Dict[str, Any],
                 runtime_context: RuntimeContext) -> Dict[str, Any]:
        """Execute one CommandLineTool invocation."""

    @abstractmethod
    def run_workflow(self, workflow: Workflow, job_order: Dict[str, Any],
                     runtime_context: RuntimeContext) -> Dict[str, Any]:
        """Execute a Workflow."""

    def run_expression_tool(self, tool: ExpressionTool, job_order: Dict[str, Any],
                            runtime_context: RuntimeContext) -> Dict[str, Any]:
        """Execute an ExpressionTool by evaluating its expression."""
        if runtime_context.compile_expressions:
            from repro.cwl.expressions.compiler import precompile_process

            evaluator = precompile_process(tool).evaluator
        else:
            js_req = tool.get_requirement("InlineJavascriptRequirement")
            evaluator = ExpressionEvaluator(
                expression_lib=list(js_req.get("expressionLib", [])) if js_req else [],
                js_enabled=True,
                cache_engine=runtime_context.cache_js_engine,
            )
        context = {"inputs": job_order, "self": None,
                   "runtime": runtime_context.runtime_object("", "")}
        result = evaluator.evaluate(tool.expression, context)
        if not isinstance(result, dict):
            raise ValidationException(
                f"ExpressionTool {tool.id!r} expression must evaluate to an object, got {type(result).__name__}"
            )
        return {param.id: result.get(param.id) for param in tool.outputs}
