"""Bounded retries with deterministic backoff.

Transient failures — a flaky tool exit, an injected fault, a reaped timeout —
are re-executed under a :class:`RetryPolicy` carried on
:class:`~repro.cwl.runtime.RuntimeContext` and honoured by all four engines.
Two properties matter for reproducibility:

* **Deterministic jitter.**  The backoff schedule is a pure function of
  ``(seed, job name, attempt)``: a sha1 over those three values supplies the
  jitter fraction, so two runs of the same workflow produce byte-identical
  schedules (no wall-clock or PRNG state leaks in).
* **Classified retryability.**  Whether a failure is worth retrying is decided
  from the same classification the conformance harness compares on
  (:func:`repro.cwl.errors.exit_class`): validation errors,
  :class:`~repro.cwl.errors.UnsupportedRequirement` and expression failures
  never retry — re-running cannot fix a bad document — while timeouts, listed
  exit codes and listed error classes do.

The module-level :func:`execute_with_retries` is the one retry loop every
execution path shares (reference runner, Toil batch payload, Parsl
submission side and the bridge's execution-side bash wrapper), so fault
injection and attempt accounting behave identically everywhere.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from repro.cwl.errors import JobFailure, JobTimeout, exit_class, unwrap_failure

#: Exit classes that retrying can never fix: the document (or the engine's
#: supported subset) is the problem, not the execution.
NEVER_RETRY_EXIT_CLASSES = frozenset({"invalid", "unsupported", "expressionError"})


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-execute a failed job, and how long to wait.

    The delay before retry ``n`` (1-based attempt that just failed) is::

        min(backoff_s * multiplier ** (n - 1), max_backoff_s) * (1 + jitter * u)

    where ``u`` in ``[0, 1)`` is the deterministic jitter fraction derived
    from ``(seed, job, n)``.
    """

    #: Total attempts including the first one; ``1`` disables retries.
    max_attempts: int = 1
    #: Base delay in seconds before the first retry.
    backoff_s: float = 0.05
    #: Multiplier applied per subsequent retry (exponential backoff).
    multiplier: float = 2.0
    #: Upper bound on any single delay.
    max_backoff_s: float = 30.0
    #: Maximum jitter as a fraction of the base delay (0 disables jitter).
    jitter: float = 0.5
    #: Seed mixed into the jitter hash; same seed → same schedule.
    seed: int = 0
    #: Tool exit codes considered transient (retried when hit).
    retryable_exit_codes: Tuple[int, ...] = ()
    #: Stable error-class names (``type(exc).__name__`` after unwrapping)
    #: considered transient in addition to :class:`JobTimeout`.
    retryable_errors: Tuple[str, ...] = ("OSError", "ConnectionError")

    def jitter_fraction(self, job: str, attempt: int) -> float:
        """Deterministic ``[0, 1)`` fraction for ``(seed, job, attempt)``."""
        digest = hashlib.sha1(
            f"{self.seed}\x00{job}\x00{attempt}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def delay_s(self, job: str, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        base = min(self.backoff_s * self.multiplier ** (attempt - 1),
                   self.max_backoff_s)
        return base * (1.0 + self.jitter * self.jitter_fraction(job, attempt))

    def schedule(self, job: str) -> Tuple[float, ...]:
        """The full backoff schedule for ``job`` — one delay per retry.

        A pure function of the policy and the job name; the determinism tests
        assert two computations of this are byte-identical.
        """
        return tuple(self.delay_s(job, attempt)
                     for attempt in range(1, self.max_attempts))

    def retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is a transient failure under this policy."""
        exc = unwrap_failure(exc)
        if exit_class(exc) in NEVER_RETRY_EXIT_CLASSES:
            return False
        if isinstance(exc, JobTimeout):
            return True
        # A non-permitted exit code (ours or Parsl's BashExitFailure) retries
        # exactly when the code is listed as transient.
        code = None
        if isinstance(exc, JobFailure):
            code = exc.exit_code
        elif type(exc).__name__ == "BashExitFailure":
            code = getattr(exc, "exitcode", None)
        if code is not None:
            return code in self.retryable_exit_codes
        return type(exc).__name__ in self.retryable_errors


@dataclass
class RetryObservation:
    """Mutable attempt accounting filled in by :func:`execute_with_retries`."""

    attempt: int = 1
    retries: list = field(default_factory=list)  # (attempt, error str, delay)


def execute_with_retries(
    fn: Callable[[int], Any],
    *,
    policy: Optional[RetryPolicy],
    job: str,
    fault_plan: Optional[Any] = None,
    observation: Optional[RetryObservation] = None,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Run ``fn(attempt)`` under ``policy``, injecting faults from ``fault_plan``.

    The fault plan is consulted *before* each attempt (ahead of any cache
    probe inside ``fn``), so warm and cold cache modes observe identical
    injected behaviour on every engine.  ``on_retry(attempt, exc, delay)``
    fires once per retry before sleeping; ``observation`` (if given) ends up
    holding the final attempt number.
    """
    attempt = 1
    while True:
        if observation is not None:
            observation.attempt = attempt
        try:
            if fault_plan is not None:
                fault_plan.apply(job, attempt)
            return fn(attempt)
        except BaseException as exc:
            if (policy is None or attempt >= policy.max_attempts
                    or not policy.retryable(exc)):
                raise
            delay = policy.delay_s(job, attempt)
            if observation is not None:
                observation.retries.append((attempt, str(exc), delay))
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                sleep(delay)
            attempt += 1
