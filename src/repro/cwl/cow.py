"""Copy-on-write job-order views.

The Toil-like runner used to ``copy.deepcopy`` the job order for every job it
issued — on a scatter over N items that is N full deep copies of structures
whose leaves (paths, contents strings, sizes) are immutable and never need
copying at all.

:func:`job_order_view` provides the same isolation guarantee far cheaper: the
*containers* (dicts, lists) are duplicated so a job that annotates a File
value or appends to a list never writes into a sibling job's view, while every
leaf value is shared by reference.  Because leaves are immutable (strings,
numbers, booleans, ``None``), sharing them is indistinguishable from copying —
this is the copy-on-write contract with the "write" resolved eagerly at the
container level, skipping ``deepcopy``'s per-object dispatch, memo table and
reduce protocol entirely (roughly an order of magnitude faster on typical
File-bearing job orders).
"""

from __future__ import annotations

from typing import Any, Dict


def job_order_view(job_order: Dict[str, Any]) -> Dict[str, Any]:
    """An isolated view of ``job_order``: private containers, shared leaves."""
    return {key: _view(value) for key, value in job_order.items()}


def _view(value: Any) -> Any:
    if isinstance(value, dict):
        return {key: _view(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_view(item) for item in value]
    return value
