"""The workflow execution engine.

:class:`WorkflowEngine` executes a loaded :class:`~repro.cwl.schema.Workflow`
against a job order.  Execution is dataflow-driven: a step runs as soon as all
of its sources are available, regardless of the order steps appear in the
document (CWL semantics, and the property the paper leans on when comparing
with Parsl's implicit DAG).

The engine is runner-agnostic: the actual execution of a step's process is
delegated to a ``process_runner`` callable supplied by the runner
(cwltool-like, Toil-like, or the Parsl bridge), which receives the resolved
process, the step's job order and the runtime context and returns the output
object.  The engine handles:

* gathering step inputs from workflow inputs and upstream step outputs
  (including ``MultipleInputFeatureRequirement`` merging and defaults),
* ``valueFrom`` on step inputs (``StepInputExpressionRequirement``),
* conditional execution via ``when``,
* ``scatter`` with all three scatter methods,
* subworkflows (recursing into nested Workflow processes),
* optional parallel execution of independent steps and scatter jobs.
"""

from __future__ import annotations

import concurrent.futures as cf
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.cwl.errors import ValidationException, WorkflowException
from repro.cwl.expressions.evaluator import ExpressionEvaluator
from repro.cwl.loader import load_document_cached
from repro.cwl.runtime import RuntimeContext
from repro.cwl.scatter import build_scatter_jobs, nest_outputs
from repro.cwl.schema import Process, Workflow, WorkflowStep
from repro.cwl.types import coerce_file_inputs
from repro.utils.logging_config import get_logger

logger = get_logger("cwl.workflow")

#: Signature of the callable that actually runs one process invocation.
ProcessRunner = Callable[[Process, Dict[str, Any], RuntimeContext], Dict[str, Any]]


@dataclass
class StepExecutionRecord:
    """Bookkeeping for one step execution (exposed for tests and monitoring)."""

    step_id: str
    scattered: bool = False
    job_count: int = 1
    skipped: bool = False
    outputs: Dict[str, Any] = field(default_factory=dict)


class WorkflowEngine:
    """Dataflow scheduler for one workflow instance."""

    def __init__(
        self,
        workflow: Workflow,
        process_runner: ProcessRunner,
        runtime_context: Optional[RuntimeContext] = None,
        parallel: bool = False,
        max_workers: int = 8,
    ) -> None:
        self.workflow = workflow
        self.process_runner = process_runner
        self.runtime_context = runtime_context or RuntimeContext()
        self.parallel = parallel
        self.max_workers = max_workers
        self.records: Dict[str, StepExecutionRecord] = {}
        self._values: Dict[str, Any] = {}
        self._values_lock = threading.Lock()
        self._step_evaluator_cache: Optional[Any] = None
        #: Lazily resolved ``run:`` processes, pinned per engine instance so a
        #: single workflow run sees one snapshot of each tool even if the file
        #: changes mid-run (see :meth:`_resolve_process`).
        self._resolved_processes: Dict[str, Process] = {}

    def _step_evaluator(self):
        """Evaluator for step-level ``when`` / ``valueFrom`` expressions.

        With the compiled pipeline on, one parse-once evaluator is shared by
        every step (thread-safe); otherwise a fresh cwltool-style evaluator is
        built per use, as before.  Both are constructed *without* the
        workflow's ``expressionLib`` — step-level expressions have never had
        access to it here, and the compiled mode must not silently change
        evaluation semantics, only cost.
        """
        if self.runtime_context.compile_expressions:
            if self._step_evaluator_cache is None:
                from repro.cwl.expressions.compiler import CompiledEvaluator

                self._step_evaluator_cache = CompiledEvaluator(js_enabled=True)
            return self._step_evaluator_cache
        return ExpressionEvaluator(js_enabled=True,
                                   cache_engine=self.runtime_context.cache_js_engine)

    # ------------------------------------------------------------------ public

    def run(self, job_order: Dict[str, Any]) -> Dict[str, Any]:
        """Execute the workflow and return its output object."""
        job_order = {k: coerce_file_inputs(v) for k, v in job_order.items()}
        self._seed_inputs(job_order)

        pending: Set[str] = {step.id for step in self.workflow.steps}
        completed: Set[str] = set()

        if self.parallel:
            self._run_parallel(pending, completed)
        else:
            self._run_serial(pending, completed)

        return self._collect_workflow_outputs()

    # ------------------------------------------------------------- scheduling

    def _run_serial(self, pending: Set[str], completed: Set[str]) -> None:
        while pending:
            ready = [step_id for step_id in pending if self._step_ready(step_id)]
            if not ready:
                unresolved = {s: self._missing_sources(s) for s in pending}
                raise WorkflowException(
                    f"workflow deadlock: no step can run; unresolved sources: {unresolved}"
                )
            for step_id in ready:
                self._execute_step(self.workflow.get_step(step_id))
                pending.discard(step_id)
                completed.add(step_id)

    def _run_parallel(self, pending: Set[str], completed: Set[str]) -> None:
        with cf.ThreadPoolExecutor(max_workers=self.max_workers,
                                   thread_name_prefix="cwl-workflow") as pool:
            running: Dict[cf.Future, str] = {}
            while pending or running:
                ready = [step_id for step_id in list(pending) if self._step_ready(step_id)]
                for step_id in ready:
                    pending.discard(step_id)
                    future = pool.submit(self._execute_step, self.workflow.get_step(step_id))
                    running[future] = step_id
                if not running:
                    if pending:
                        unresolved = {s: self._missing_sources(s) for s in pending}
                        raise WorkflowException(
                            f"workflow deadlock: no step can run; unresolved sources: {unresolved}"
                        )
                    break
                done, _ = cf.wait(list(running), return_when=cf.FIRST_COMPLETED)
                for future in done:
                    step_id = running.pop(future)
                    future.result()  # re-raise failures
                    completed.add(step_id)

    # ------------------------------------------------------------- data store

    def _seed_inputs(self, job_order: Dict[str, Any]) -> None:
        with self._values_lock:
            for param in self.workflow.inputs:
                if param.id in job_order:
                    self._values[param.id] = job_order[param.id]
                elif param.has_default:
                    self._values[param.id] = param.default
                elif param.type.is_optional:
                    self._values[param.id] = None
                else:
                    raise ValidationException(
                        f"workflow input {param.id!r} is required but was not provided"
                    )

    def _store(self, key: str, value: Any) -> None:
        with self._values_lock:
            self._values[key] = value

    def _available(self, key: str) -> bool:
        with self._values_lock:
            return key in self._values

    def _get(self, key: str) -> Any:
        with self._values_lock:
            return self._values[key]

    def _step_ready(self, step_id: str) -> bool:
        step = self.workflow.get_step(step_id)
        if step is None:
            return False
        for step_input in step.in_:
            for source in step_input.source:
                if not self._available(source):
                    return False
        return True

    def _missing_sources(self, step_id: str) -> List[str]:
        step = self.workflow.get_step(step_id)
        missing: List[str] = []
        if step is None:
            return missing
        for step_input in step.in_:
            for source in step_input.source:
                if not self._available(source):
                    missing.append(source)
        return missing

    # --------------------------------------------------------------- execution

    def _execute_step(self, step: Optional[WorkflowStep]) -> None:
        if step is None:
            raise WorkflowException("attempted to execute an unknown step")
        logger.debug("executing step %s", step.id)
        record = StepExecutionRecord(step_id=step.id)
        self.records[step.id] = record

        process = self._resolve_process(step)
        step_inputs = self._gather_step_inputs(step)

        # Conditional execution (`when`).
        if step.when is not None:
            evaluator = self._step_evaluator()
            condition = evaluator.evaluate(step.when, {"inputs": step_inputs, "self": None,
                                                       "runtime": {}})
            if not condition:
                record.skipped = True
                for out_id in step.out:
                    self._store(f"{step.id}/{out_id}", None)
                return

        if step.scatter:
            plan = build_scatter_jobs(step_inputs, step.scatter, step.scatter_method)
            record.scattered = True
            record.job_count = len(plan.jobs)
            results = self._run_scatter_jobs(process, plan.jobs)
            for out_id in step.out:
                flat = [result.get(out_id) for result in results]
                if step.scatter_method == "nested_crossproduct":
                    value = nest_outputs(flat, plan.shape)
                else:
                    value = flat
                self._store(f"{step.id}/{out_id}", value)
            record.outputs = {out_id: self._get(f"{step.id}/{out_id}") for out_id in step.out}
            return

        outputs = self.process_runner(process, step_inputs, self.runtime_context)
        for out_id in step.out:
            if out_id not in outputs:
                raise WorkflowException(
                    f"step {step.id!r} did not produce declared output {out_id!r} "
                    f"(produced {sorted(outputs)})"
                )
            self._store(f"{step.id}/{out_id}", outputs[out_id])
        record.outputs = {out_id: outputs[out_id] for out_id in step.out}

    def _run_scatter_jobs(self, process: Process, jobs: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        if not jobs:
            return []
        if not self.parallel or len(jobs) == 1:
            return [self.process_runner(process, job, self.runtime_context) for job in jobs]
        with cf.ThreadPoolExecutor(max_workers=self.max_workers,
                                   thread_name_prefix="cwl-scatter") as pool:
            futures = [pool.submit(self.process_runner, process, job, self.runtime_context)
                       for job in jobs]
            return [future.result() for future in futures]

    def _resolve_process(self, step: WorkflowStep) -> Process:
        if step.embedded_process is not None:
            return step.embedded_process
        if isinstance(step.run, str):
            resolved = self._resolved_processes.get(step.id)
            if resolved is not None:
                return resolved
            base_dir = None
            if self.workflow.source_path:
                import os

                base_dir = os.path.dirname(self.workflow.source_path)
            # Pinned on this engine instance (snapshot per run), NOT on the
            # step object: the enclosing workflow may live in the loader's
            # document cache, whose dependency stamps were computed at parse
            # time — pinning there would outlive the child's own mtime check.
            process = load_document_cached(step.run if base_dir is None else
                                           step.run if step.run.startswith("/") else
                                           f"{base_dir}/{step.run}")
            self._resolved_processes[step.id] = process
            return process
        raise WorkflowException(f"step {step.id!r} has an unresolvable run reference {step.run!r}")

    # ------------------------------------------------------------- step inputs

    def _gather_step_inputs(self, step: WorkflowStep) -> Dict[str, Any]:
        gathered: Dict[str, Any] = {}
        for step_input in step.in_:
            if step_input.source:
                values = [self._get(source) for source in step_input.source]
                if len(values) == 1:
                    value = values[0]
                elif step_input.link_merge == "merge_flattened":
                    value = [item for sub in values
                             for item in (sub if isinstance(sub, list) else [sub])]
                else:  # merge_nested
                    value = values
            else:
                value = None
            if value is None and step_input.has_default:
                value = step_input.default
            gathered[step_input.id] = value

        # valueFrom runs after all sources/defaults are resolved, with `self` bound
        # to the pre-valueFrom value of that input (CWL v1.2 semantics).
        needs_expression = any(si.value_from is not None for si in step.in_)
        if needs_expression:
            evaluator = self._step_evaluator()
            base_context = dict(gathered)
            for step_input in step.in_:
                if step_input.value_from is None:
                    continue
                context = {"inputs": base_context, "self": base_context.get(step_input.id),
                           "runtime": {}}
                gathered[step_input.id] = evaluator.evaluate(step_input.value_from, context)
        return gathered

    # --------------------------------------------------------- workflow outputs

    def _collect_workflow_outputs(self) -> Dict[str, Any]:
        outputs: Dict[str, Any] = {}
        for output in self.workflow.workflow_outputs:
            if not output.output_source:
                outputs[output.id] = None
                continue
            values = []
            for source in output.output_source:
                if not self._available(source):
                    raise WorkflowException(
                        f"workflow output {output.id!r} source {source!r} was never produced"
                    )
                values.append(self._get(source))
            if len(values) == 1:
                outputs[output.id] = values[0]
            elif output.link_merge == "merge_flattened":
                outputs[output.id] = [item for sub in values
                                      for item in (sub if isinstance(sub, list) else [sub])]
            else:
                outputs[output.id] = values
        return outputs
