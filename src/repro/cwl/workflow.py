"""The workflow execution engine.

:class:`WorkflowEngine` executes a loaded :class:`~repro.cwl.schema.Workflow`
against a job order.  Execution is dataflow-driven — a step runs as soon as
all of its sources are available (CWL semantics, and the property the paper
leans on when comparing with Parsl's implicit DAG) — and since PR 3 the
dataflow is *explicit*: the workflow is compiled once into a
:class:`~repro.cwl.graph.WorkflowGraph` (one node per step, nested
subworkflows flattened into the parent graph, precomputed edges/indegrees/
critical-path priorities) and executed by the event-driven
:class:`~repro.cwl.scheduler.GraphScheduler`.  Completion events wake exactly
the steps they unblock; there is no ready-poll loop.  Scatter steps expand at
runtime into per-shard nodes plus a gather node that all share the scheduler's
single bounded worker pool, so scatter inside parallel steps (or inside
subworkflows) never multiplies threads: with ``parallel=True`` the total
number of live worker threads never exceeds ``max_workers``.

The engine is runner-agnostic: the actual execution of a step's process is
delegated to a ``process_runner`` callable supplied by the runner
(cwltool-like, Toil-like, or the Parsl bridge), which receives the resolved
process, the step's job order and the runtime context and returns the output
object.  The engine handles:

* gathering step inputs from workflow inputs and upstream step outputs
  (including ``MultipleInputFeatureRequirement`` merging and defaults),
* ``valueFrom`` on step inputs (``StepInputExpressionRequirement``),
* conditional execution via ``when``,
* ``scatter`` with all three scatter methods,
* subworkflows (flattened into the parent graph; scattered subworkflows
  expand per-shard subgraphs),
* optional parallel execution on one shared bounded worker pool.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.cwl.errors import ValidationException, WorkflowException
from repro.cwl.expressions.evaluator import ExpressionEvaluator
from repro.cwl.graph import (
    EGRESS,
    GATHER,
    INGRESS,
    SCATTER,
    SHARD,
    STEP,
    GraphBuilder,
    GraphNode,
    WorkflowGraph,
    build_graph,
    merge_link_values,
    resolve_run_reference,
    seed_workflow_inputs,
)
from repro.cwl.loader import load_document_cached
from repro.cwl.runtime import RuntimeContext
from repro.cwl.scatter import build_scatter_jobs, nest_outputs
from repro.cwl.scheduler import Expansion, GraphScheduler, PipelineScheduler
from repro.cwl.schema import ExpressionTool, Process, Workflow, WorkflowStep
from repro.cwl.types import coerce_file_inputs
from repro.utils.logging_config import get_logger

logger = get_logger("cwl.workflow")

#: Signature of the callable that actually runs one process invocation.
ProcessRunner = Callable[[Process, Dict[str, Any], RuntimeContext], Dict[str, Any]]


@dataclass
class StepExecutionRecord:
    """Bookkeeping for one step execution (exposed for tests and monitoring)."""

    step_id: str
    scattered: bool = False
    job_count: int = 1
    skipped: bool = False
    outputs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class _StagedStep:
    """What :meth:`WorkflowEngine._stage_step` prepares for one step node."""

    record: StepExecutionRecord
    process: Optional[Process] = None
    inputs: Optional[Dict[str, Any]] = None
    skipped: bool = False


class _PipelinedNodeExecutor:
    """Three-stage view of the engine's node executor for the pipelined core.

    Heavy step/shard nodes split into stage (resolve process, gather inputs,
    evaluate ``when``) / exec (the runner's process invocation — retries,
    hooks, cache and journal all live inside it, untouched) / collect (store
    outputs, declared-output check), so the scheduler can overlap the steps
    of different jobs.  Plumbing nodes (scatter/gather/ingress/egress),
    ExpressionTool steps and skipped-scope nodes are *tiny*: they run inline
    on the event loop through the exact same ``_execute_node`` dispatch the
    thread-pool core uses, in coalesced batches.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: "WorkflowEngine") -> None:
        self._engine = engine

    def is_tiny(self, node: GraphNode) -> bool:
        if node.kind in (SCATTER, GATHER, INGRESS, EGRESS):
            return True
        engine = self._engine
        if engine._is_skipped(node.scope):
            return True
        if node.kind == SHARD:
            return isinstance(node.payload[0], ExpressionTool)
        if node.kind == STEP:
            return isinstance(engine._resolve_process(node.step, node.workflow),
                              ExpressionTool)
        return False

    def stage(self, node: GraphNode) -> Optional[_StagedStep]:
        if node.kind == STEP and not self._engine._is_skipped(node.scope):
            return self._engine._stage_step(node)
        return None

    def execute(self, node: GraphNode, staged: Optional[_StagedStep]) -> Any:
        engine = self._engine
        if staged is not None:  # heavy STEP
            if staged.skipped:
                return None
            return engine.process_runner(staged.process, staged.inputs,
                                         engine.runtime_context)
        if node.kind == SHARD and not engine._is_skipped(node.scope):
            process, job = node.payload
            return engine.process_runner(process, job, engine.runtime_context)
        # Tiny kinds (and skipped scopes) take the thread-pool core's exact
        # dispatch path, so the two cores cannot diverge on plumbing.
        return engine._execute_node(node)

    def collect(self, node: GraphNode, staged: Optional[_StagedStep],
                result: Any) -> Optional[Expansion]:
        engine = self._engine
        if staged is not None:
            return engine._collect_step(node, staged, result)
        if node.kind == SHARD and not engine._is_skipped(node.scope):
            for out_id in node.step.out:
                engine._store(f"{node.id}/{out_id}", result.get(out_id))
            return None
        return result  # _execute_node already stored; pass any Expansion on


class WorkflowEngine:
    """Graph-backed dataflow scheduler for one workflow instance."""

    def __init__(
        self,
        workflow: Workflow,
        process_runner: ProcessRunner,
        runtime_context: Optional[RuntimeContext] = None,
        parallel: bool = False,
        max_workers: int = 8,
        pipeline: bool = False,
        max_inflight: Optional[int] = None,
    ) -> None:
        self.workflow = workflow
        self.process_runner = process_runner
        self.runtime_context = runtime_context or RuntimeContext()
        self.parallel = parallel
        self.max_workers = max_workers
        #: Use the asyncio pipelined core (stage/exec/collect overlap) instead
        #: of the thread-pool core.  ``max_inflight`` bounds the in-flight
        #: window; None picks a default that keeps the exec lane saturated.
        self.pipeline = pipeline
        self.max_inflight = max_inflight
        #: Per-stage wall time from the pipelined core (None otherwise).
        self.stage_timings: Optional[Dict[str, Any]] = None
        self.records: Dict[str, StepExecutionRecord] = {}
        self._values: Dict[str, Any] = {}
        self._values_lock = threading.Lock()
        self._step_evaluator_cache: Optional[Any] = None
        #: Lazily resolved ``run:`` processes, pinned per engine instance so a
        #: single workflow run sees one snapshot of each tool even if the file
        #: changes mid-run (see :meth:`_resolve_process`).
        self._resolved_processes: Dict[int, Process] = {}
        #: The workflow's dataflow IR, compiled once per engine instance.
        self._graph: Optional[WorkflowGraph] = None
        #: Scopes whose subgraph was skipped by a false ``when`` guard.
        self._skipped_scopes: List[str] = []
        #: Egress nodes created by scatter expansion: missing declared outputs
        #: gather as ``None`` (matching the historical per-shard ``.get``)
        #: instead of raising like a plain subworkflow step does.
        self._lenient_egress: Set[str] = set()
        #: Scheduler node states after :meth:`run` (``pending``/``running``/
        #: ``done``/``failed``/``skipped``).
        self.node_states: Dict[str, str] = {}
        #: node id -> exception, for nodes that failed under
        #: ``on_error="continue"``.
        self.failures: Dict[str, BaseException] = {}

    def _step_evaluator(self):
        """Evaluator for step-level ``when`` / ``valueFrom`` expressions.

        With the compiled pipeline on, one parse-once evaluator is shared by
        every step (thread-safe); otherwise a fresh cwltool-style evaluator is
        built per use, as before.  Both are constructed *without* the
        workflow's ``expressionLib`` — step-level expressions have never had
        access to it here, and the compiled mode must not silently change
        evaluation semantics, only cost.
        """
        if self.runtime_context.compile_expressions:
            if self._step_evaluator_cache is None:
                from repro.cwl.expressions.compiler import CompiledEvaluator

                self._step_evaluator_cache = CompiledEvaluator(js_enabled=True)
            return self._step_evaluator_cache
        return ExpressionEvaluator(js_enabled=True,
                                   cache_engine=self.runtime_context.cache_js_engine)

    # ------------------------------------------------------------------ public

    @property
    def graph(self) -> WorkflowGraph:
        """The workflow's :class:`WorkflowGraph` IR (built on first access)."""
        if self._graph is None:
            self._graph = build_graph(self.workflow, resolve=self._resolve_process)
        return self._graph

    def run(self, job_order: Dict[str, Any]) -> Dict[str, Any]:
        """Execute the workflow and return its output object.

        With ``runtime_context.on_error == "continue"`` a failed step no
        longer aborts the run: its transitive successors are skipped
        (cwltool-style permanentFail propagation), independent branches
        finish, and the returned output object is *partial* — outputs whose
        source failed or was skipped are ``None``.  The per-node outcome is
        left on :attr:`node_states` / :attr:`failures`.
        """
        job_order = {k: coerce_file_inputs(v) for k, v in job_order.items()}
        self._skipped_scopes = []
        self._lenient_egress = set()
        self._seed_inputs(job_order)
        if self.pipeline:
            scheduler: GraphScheduler = PipelineScheduler(
                self.graph, executor=_PipelinedNodeExecutor(self),
                max_inflight=self.max_inflight or 64,
                max_workers=self.max_workers,
                on_error=self.runtime_context.on_error,
                journal=self.runtime_context.journal)
        else:
            scheduler = GraphScheduler(self.graph, self._execute_node,
                                       parallel=self.parallel,
                                       max_workers=self.max_workers,
                                       on_error=self.runtime_context.on_error,
                                       journal=self.runtime_context.journal)
        try:
            scheduler.run()
        finally:
            self.node_states = dict(scheduler.states)
            self.failures = dict(scheduler.failures)
            self.stage_timings = getattr(scheduler, "stage_timings", None)
        return self._collect_outputs(self.workflow, scope="",
                                     lenient=bool(self.failures))

    # --------------------------------------------------------------- data store

    def _seed_inputs(self, job_order: Dict[str, Any]) -> None:
        values = seed_workflow_inputs(self.workflow, job_order)
        with self._values_lock:
            self._values.update(values)

    def _store(self, key: str, value: Any) -> None:
        with self._values_lock:
            self._values[key] = value

    def _get(self, key: str) -> Any:
        with self._values_lock:
            return self._values[key]

    def _get_or_none(self, key: str) -> Any:
        with self._values_lock:
            return self._values.get(key)

    def _available(self, key: str) -> bool:
        with self._values_lock:
            return key in self._values

    # ------------------------------------------------------------ node executor

    def _is_skipped(self, scope: str) -> bool:
        return any(scope.startswith(skipped) for skipped in self._skipped_scopes)

    def _execute_node(self, node: GraphNode) -> Optional[Expansion]:
        if node.kind == EGRESS:
            return self._execute_egress(node)
        if self._is_skipped(node.scope):
            return None
        if node.kind == STEP:
            return self._execute_step_node(node)
        if node.kind == SCATTER:
            return self._execute_scatter_node(node)
        if node.kind == SHARD:
            return self._execute_shard_node(node)
        if node.kind == GATHER:
            return self._execute_gather_node(node)
        if node.kind == INGRESS:
            return self._execute_ingress(node)
        raise WorkflowException(f"unknown graph node kind {node.kind!r}")

    # ------------------------------------------------------------- plain steps

    def _execute_step_node(self, node: GraphNode) -> None:
        staged = self._stage_step(node)
        outputs = None if staged.skipped else self.process_runner(
            staged.process, staged.inputs, self.runtime_context)
        self._collect_step(node, staged, outputs)

    def _stage_step(self, node: GraphNode) -> _StagedStep:
        """Stage one step: resolve the process, gather inputs, evaluate ``when``."""
        step = node.step
        logger.debug("executing step %s", node.id)
        record = StepExecutionRecord(step_id=node.id)
        self.records[node.id] = record

        process = self._resolve_process(step, node.workflow)
        step_inputs = self._gather_step_inputs(step, node.scope)
        staged = _StagedStep(record=record, process=process, inputs=step_inputs)
        if step.when is not None and not self._evaluate_when(step, step_inputs):
            record.skipped = True
            staged.skipped = True
        return staged

    def _collect_step(self, node: GraphNode, staged: _StagedStep,
                      outputs: Optional[Dict[str, Any]]) -> None:
        """Store a staged step's outputs (``None`` per output when skipped)."""
        step = node.step
        if staged.skipped:
            for out_id in step.out:
                self._store(f"{node.scope}{step.id}/{out_id}", None)
            return
        for out_id in step.out:
            if out_id not in outputs:
                raise WorkflowException(
                    f"step {step.id!r} did not produce declared output {out_id!r} "
                    f"(produced {sorted(outputs)})"
                )
            self._store(f"{node.scope}{step.id}/{out_id}", outputs[out_id])
        staged.record.outputs = {out_id: outputs[out_id] for out_id in step.out}

    def _evaluate_when(self, step: WorkflowStep, step_inputs: Dict[str, Any]) -> bool:
        evaluator = self._step_evaluator()
        return bool(evaluator.evaluate(step.when, {"inputs": step_inputs, "self": None,
                                                   "runtime": {}}))

    # ----------------------------------------------------------------- scatter

    def _execute_scatter_node(self, node: GraphNode) -> Optional[Expansion]:
        step = node.step
        record = StepExecutionRecord(step_id=node.id, scattered=True)
        self.records[node.id] = record

        process = self._resolve_process(step, node.workflow)
        step_inputs = self._gather_step_inputs(step, node.scope)

        if step.when is not None and not self._evaluate_when(step, step_inputs):
            record.skipped = True
            record.scattered = False
            record.job_count = 1
            for out_id in step.out:
                self._store(f"{node.scope}{step.id}/{out_id}", None)
            return None

        plan = build_scatter_jobs(step_inputs, step.scatter, step.scatter_method)
        record.job_count = len(plan.jobs)
        return self._expand_scatter(node, process, plan)

    def _expand_scatter(self, node: GraphNode, process: Process, plan) -> Expansion:
        """Turn a scattered step into shard nodes plus a gather node.

        Tool shards become ``shard`` nodes carrying their job order; workflow
        shards become flattened per-shard subgraphs terminated by an egress
        node.  Every shard joins the scheduler's single bounded pool — there
        is no per-step scatter pool — and downstream consumers are retargeted
        onto the gather node, which re-assembles the array outputs.
        """
        builder = GraphBuilder(resolve=self._resolve_process)
        terminals: List[str] = []
        for index, job in enumerate(plan.jobs):
            shard_id = f"{node.id}[{index}]"
            if isinstance(process, Workflow):
                shard_scope = f"{shard_id}/"
                seeded = seed_workflow_inputs(
                    process, {k: coerce_file_inputs(v) for k, v in job.items()})
                for key, value in seeded.items():
                    self._store(shard_scope + key, value)
                egress_id = builder.add_subworkflow_instance(
                    node.step, process, shard_scope, entry=None)
                self._lenient_egress.add(egress_id)
                terminals.append(egress_id)
            else:
                builder.add_node(
                    GraphNode(id=shard_id, kind=SHARD, step=node.step,
                              workflow=node.workflow, scope=node.scope,
                              payload=(process, job)),
                    preds=[])
                terminals.append(shard_id)
        gather_id = f"{node.id}@gather"
        builder.add_node(
            GraphNode(id=gather_id, kind=GATHER, step=node.step, workflow=node.workflow,
                      scope=node.scope, payload=plan),
            preds=terminals)
        return Expansion(nodes=list(builder.nodes.values()), preds=builder.preds,
                         retarget=gather_id)

    def _execute_shard_node(self, node: GraphNode) -> None:
        process, job = node.payload
        outputs = self.process_runner(process, job, self.runtime_context)
        for out_id in node.step.out:
            self._store(f"{node.id}/{out_id}", outputs.get(out_id))

    def _execute_gather_node(self, node: GraphNode) -> None:
        step = node.step
        plan = node.payload
        base_id = node.record_id
        record = self.records[base_id]
        for out_id in step.out:
            flat = [self._get_or_none(f"{base_id}[{index}]/{out_id}")
                    for index in range(len(plan.jobs))]
            if step.scatter_method == "nested_crossproduct":
                value = nest_outputs(flat, plan.shape)
            else:
                value = flat
            self._store(f"{node.scope}{step.id}/{out_id}", value)
        record.outputs = {out_id: self._get(f"{node.scope}{step.id}/{out_id}")
                          for out_id in step.out}

    # ------------------------------------------------------------ subworkflows

    def _execute_ingress(self, node: GraphNode) -> None:
        """Enter a flattened subworkflow: evaluate ``when``, seed child inputs."""
        step = node.step
        logger.debug("entering subworkflow %s", node.id)
        step_inputs = self._gather_step_inputs(step, node.scope)

        if step.when is not None and not self._evaluate_when(step, step_inputs):
            self._skipped_scopes.append(node.child_scope)
            return

        seeded = seed_workflow_inputs(
            node.child, {k: coerce_file_inputs(v) for k, v in step_inputs.items()})
        for key, value in seeded.items():
            self._store(node.child_scope + key, value)

    def _execute_egress(self, node: GraphNode) -> None:
        """Leave a subworkflow instance: map child outputs into the parent scope."""
        step = node.step
        record_id = node.record_id
        if self._is_skipped(node.child_scope):
            record = StepExecutionRecord(step_id=record_id, skipped=True)
            self.records[record_id] = record
            for out_id in step.out:
                self._store(node.child_scope + out_id, None)
            return

        child_outputs = self._collect_outputs(node.child, node.child_scope)
        strict = node.id not in self._lenient_egress
        record = StepExecutionRecord(step_id=record_id)
        self.records[record_id] = record
        for out_id in step.out:
            if out_id not in child_outputs:
                if strict:
                    raise WorkflowException(
                        f"step {step.id!r} did not produce declared output {out_id!r} "
                        f"(produced {sorted(child_outputs)})"
                    )
                child_outputs[out_id] = None
        for out_id, value in child_outputs.items():
            self._store(node.child_scope + out_id, value)
        record.outputs = {out_id: child_outputs.get(out_id) for out_id in step.out}

    # ---------------------------------------------------------------- resolve

    def _resolve_process(self, step: WorkflowStep,
                         workflow: Optional[Workflow] = None) -> Process:
        if step.embedded_process is not None:
            return step.embedded_process
        if isinstance(step.run, str):
            resolved = self._resolved_processes.get(id(step))
            if resolved is not None:
                return resolved
            source_path = (workflow or self.workflow).source_path
            # Pinned on this engine instance (snapshot per run), NOT on the
            # step object: the enclosing workflow may live in the loader's
            # document cache, whose dependency stamps were computed at parse
            # time — pinning there would outlive the child's own mtime check.
            process = load_document_cached(resolve_run_reference(step.run, source_path))
            self._resolved_processes[id(step)] = process
            return process
        if isinstance(step.run, Process):
            return step.run
        raise WorkflowException(f"step {step.id!r} has an unresolvable run reference {step.run!r}")

    # ------------------------------------------------------------- step inputs

    def _gather_step_inputs(self, step: WorkflowStep, scope: str = "") -> Dict[str, Any]:
        gathered: Dict[str, Any] = {}
        for step_input in step.in_:
            if step_input.source:
                value = merge_link_values(
                    [self._get(scope + source) for source in step_input.source],
                    step_input.link_merge)
            else:
                value = None
            if value is None and step_input.has_default:
                value = step_input.default
            gathered[step_input.id] = value

        # valueFrom runs after all sources/defaults are resolved, with `self` bound
        # to the pre-valueFrom value of that input (CWL v1.2 semantics).
        needs_expression = any(si.value_from is not None for si in step.in_)
        if needs_expression:
            evaluator = self._step_evaluator()
            base_context = dict(gathered)
            for step_input in step.in_:
                if step_input.value_from is None:
                    continue
                context = {"inputs": base_context, "self": base_context.get(step_input.id),
                           "runtime": {}}
                gathered[step_input.id] = evaluator.evaluate(step_input.value_from, context)
        return gathered

    # --------------------------------------------------------- workflow outputs

    def _collect_outputs(self, workflow: Workflow, scope: str,
                         lenient: bool = False) -> Dict[str, Any]:
        """Collect a (sub)workflow's outputs from the value store.

        ``lenient=True`` (a run with failed nodes under
        ``on_error="continue"``) maps never-produced sources to ``None``
        instead of raising, yielding the partial output object.
        """
        outputs: Dict[str, Any] = {}
        for output in workflow.workflow_outputs:
            if not output.output_source:
                outputs[output.id] = None
                continue
            values = []
            for source in output.output_source:
                if not self._available(scope + source):
                    if lenient:
                        values.append(None)
                        continue
                    raise WorkflowException(
                        f"workflow output {output.id!r} source {source!r} was never produced"
                    )
                values.append(self._get(scope + source))
            outputs[output.id] = merge_link_values(values, output.link_merge)
        return outputs
