"""The CWL type system.

CWL types appear in documents in several syntactic forms:

* primitive names: ``null``, ``boolean``, ``int``, ``long``, ``float``,
  ``double``, ``string``, ``File``, ``Directory``,
* shorthand modifiers: ``string?`` (optional = union with null) and
  ``string[]`` (array of string),
* structured forms: ``{type: array, items: ...}``, ``{type: enum, symbols: [...]}``,
  ``{type: record, fields: [...]}``,
* unions: a YAML list of any of the above,
* the special tool-output pseudo-types ``stdout`` and ``stderr``.

:func:`normalize_type` converts any of these into a canonical
:class:`CWLType` tree; :func:`matches` checks a Python value against a
canonical type (used for job-order validation); :func:`build_file_value` and
friends construct the ``class: File`` dictionaries CWL uses as file values.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.cwl.errors import ValidationException
from repro.utils.hashing import hash_file

PRIMITIVE_TYPES = {
    "null", "boolean", "int", "long", "float", "double", "string", "File", "Directory",
    "Any", "stdout", "stderr",
}


@dataclass(frozen=True)
class CWLType:
    """Canonical representation of a CWL type.

    ``kind`` is one of the primitive names, ``array``, ``enum``, ``record`` or
    ``union``.  For arrays ``items`` holds the element type; for enums
    ``symbols`` holds the permitted strings; for records ``fields`` maps field
    names to types; for unions ``members`` holds the alternatives.
    """

    kind: str
    items: Optional["CWLType"] = None
    symbols: Sequence[str] = ()
    fields: Optional[Dict[str, "CWLType"]] = None
    members: Sequence["CWLType"] = ()
    name: Optional[str] = None

    @property
    def is_optional(self) -> bool:
        """True when the type is a union that admits ``null``."""
        if self.kind == "null":
            return True
        if self.kind == "union":
            return any(m.kind == "null" for m in self.members)
        return False

    @property
    def is_file(self) -> bool:
        if self.kind == "File":
            return True
        if self.kind == "union":
            return any(m.kind == "File" for m in self.members)
        return False

    @property
    def is_array(self) -> bool:
        if self.kind == "array":
            return True
        if self.kind == "union":
            return any(m.kind == "array" for m in self.members)
        return False

    def __str__(self) -> str:
        if self.kind == "array":
            return f"{self.items}[]"
        if self.kind == "union":
            inner = [str(m) for m in self.members]
            if len(inner) == 2 and "null" in inner:
                other = next(i for i in inner if i != "null")
                return f"{other}?"
            return " | ".join(inner)
        if self.kind == "enum":
            return f"enum({', '.join(self.symbols)})"
        if self.kind == "record":
            return f"record({', '.join(self.fields or {})})"
        return self.kind


NULL = CWLType("null")


def normalize_type(spec: Any) -> CWLType:
    """Convert any CWL type syntax into a canonical :class:`CWLType`."""
    if isinstance(spec, CWLType):
        return spec
    if spec is None:
        return NULL
    if isinstance(spec, str):
        return _normalize_string_type(spec)
    if isinstance(spec, list):
        members = tuple(normalize_type(member) for member in spec)
        if len(members) == 1:
            return members[0]
        return CWLType("union", members=members)
    if isinstance(spec, dict):
        return _normalize_dict_type(spec)
    raise ValidationException(f"unrecognised CWL type specification: {spec!r}")


def _normalize_string_type(spec: str) -> CWLType:
    spec = spec.strip()
    if spec.endswith("?"):
        inner = normalize_type(spec[:-1])
        return CWLType("union", members=(inner, NULL))
    if spec.endswith("[]"):
        return CWLType("array", items=normalize_type(spec[:-2]))
    if spec in PRIMITIVE_TYPES:
        return CWLType(spec)
    raise ValidationException(f"unknown CWL type name {spec!r}")


def _normalize_dict_type(spec: Dict[str, Any]) -> CWLType:
    kind = spec.get("type")
    if kind == "array":
        if "items" not in spec:
            raise ValidationException("array type requires an 'items' field")
        return CWLType("array", items=normalize_type(spec["items"]))
    if kind == "enum":
        symbols = tuple(str(s).split("/")[-1] for s in spec.get("symbols", ()))
        if not symbols:
            raise ValidationException("enum type requires non-empty 'symbols'")
        return CWLType("enum", symbols=symbols, name=spec.get("name"))
    if kind == "record":
        fields: Dict[str, CWLType] = {}
        raw_fields = spec.get("fields", [])
        if isinstance(raw_fields, dict):
            raw_fields = [{"name": k, **(v if isinstance(v, dict) else {"type": v})}
                          for k, v in raw_fields.items()]
        for f in raw_fields:
            fields[str(f["name"]).split("/")[-1]] = normalize_type(f["type"])
        return CWLType("record", fields=fields, name=spec.get("name"))
    if isinstance(kind, (str, list, dict)):
        # e.g. {"type": "string?", "doc": ...} or nested structured type
        return normalize_type(kind)
    raise ValidationException(f"unrecognised structured type: {spec!r}")


# --------------------------------------------------------------------------- values


def is_file_value(value: Any) -> bool:
    """Whether ``value`` is a CWL File object (``{"class": "File", ...}``)."""
    return isinstance(value, dict) and value.get("class") == "File"


def is_directory_value(value: Any) -> bool:
    return isinstance(value, dict) and value.get("class") == "Directory"


def matches(value: Any, cwl_type: Union[CWLType, Any]) -> bool:
    """Check whether a Python/JSON value conforms to ``cwl_type``."""
    ctype = normalize_type(cwl_type)
    kind = ctype.kind
    if kind == "Any":
        return value is not None
    if kind == "null":
        return value is None
    if kind == "boolean":
        return isinstance(value, bool)
    if kind in ("int", "long"):
        return isinstance(value, int) and not isinstance(value, bool)
    if kind in ("float", "double"):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if kind == "string":
        return isinstance(value, str)
    if kind in ("stdout", "stderr"):
        # Tool output pseudo-types: the collected value is a File.
        return is_file_value(value)
    if kind == "File":
        return is_file_value(value) or isinstance(value, str)
    if kind == "Directory":
        return is_directory_value(value) or isinstance(value, str)
    if kind == "enum":
        return isinstance(value, str) and value in ctype.symbols
    if kind == "array":
        return isinstance(value, list) and all(matches(v, ctype.items) for v in value)
    if kind == "record":
        if not isinstance(value, dict):
            return False
        return all(matches(value.get(name), ftype) or ftype.is_optional
                   for name, ftype in (ctype.fields or {}).items())
    if kind == "union":
        return any(matches(value, member) for member in ctype.members)
    raise ValidationException(f"cannot check value against unknown type kind {kind!r}")


def build_file_value(path: str, compute_checksum: bool = False,
                     load_contents: bool = False) -> Dict[str, Any]:
    """Construct a CWL File value dictionary for a local path."""
    path = os.path.abspath(os.fspath(path))
    basename = os.path.basename(path)
    nameroot, nameext = os.path.splitext(basename)
    value: Dict[str, Any] = {
        "class": "File",
        "path": path,
        "location": f"file://{path}",
        "basename": basename,
        "nameroot": nameroot,
        "nameext": nameext,
        "dirname": os.path.dirname(path),
    }
    if os.path.exists(path):
        value["size"] = os.stat(path).st_size
        if compute_checksum:
            value["checksum"] = hash_file(path)
        if load_contents:
            with open(path, "rb") as handle:
                value["contents"] = handle.read(64 * 1024).decode("utf-8", errors="replace")
    return value


def build_directory_value(path: str, listing: bool = False) -> Dict[str, Any]:
    """Construct a CWL Directory value dictionary for a local path."""
    path = os.path.abspath(os.fspath(path))
    value: Dict[str, Any] = {
        "class": "Directory",
        "path": path,
        "location": f"file://{path}",
        "basename": os.path.basename(path),
    }
    if listing and os.path.isdir(path):
        entries: List[Dict[str, Any]] = []
        for name in sorted(os.listdir(path)):
            full = os.path.join(path, name)
            if os.path.isdir(full):
                entries.append(build_directory_value(full, listing=False))
            else:
                entries.append(build_file_value(full))
        value["listing"] = entries
    return value


def coerce_file_inputs(value: Any) -> Any:
    """Recursively convert plain path strings in File positions into File values.

    Used when a job order supplies ``input_image: /path/to.png`` rather than a
    full ``{"class": "File", "path": ...}`` object (both are accepted by CWL
    runners in practice).
    """
    if isinstance(value, dict) and value.get("class") in ("File", "Directory"):
        if "path" in value and "basename" not in value:
            rebuilt = build_file_value(value["path"]) if value["class"] == "File" \
                else build_directory_value(value["path"])
            rebuilt.update({k: v for k, v in value.items() if k not in rebuilt})
            return rebuilt
        return value
    if isinstance(value, list):
        return [coerce_file_inputs(v) for v in value]
    return value


def value_to_path(value: Any) -> str:
    """Extract a filesystem path from a File value or a plain string."""
    if is_file_value(value) or is_directory_value(value):
        if "path" in value:
            return value["path"]
        location = value.get("location", "")
        if location.startswith("file://"):
            return location[len("file://"):]
        raise ValidationException(f"File value has no usable path: {value!r}")
    if isinstance(value, (str, os.PathLike)):
        return os.fspath(value)
    raise ValidationException(f"expected a File value or path, got {type(value).__name__}")
