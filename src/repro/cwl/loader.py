"""Document loading and normalisation.

CWL's YAML syntax allows several shorthand forms (schema-salad "map" forms).
The loader normalises all of them into the document model in
:mod:`repro.cwl.schema`:

* ``inputs`` / ``outputs`` / ``steps`` given as mappings are converted to lists
  with explicit ``id`` fields,
* ``requirements`` / ``hints`` given as mappings keyed by class name are
  converted to lists of ``{"class": ...}`` dictionaries,
* ``baseCommand`` given as a string becomes a one-element list,
* ``run:`` references to other files are resolved relative to the referencing
  document and loaded recursively (embedded processes are loaded in place),
* identifiers are stripped of ``#`` prefixes so that ``steps`` can refer to
  inputs by bare name.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Union

from repro.cwl.errors import ValidationException
from repro.cwl.schema import (
    CommandInputParameter,
    CommandLineBinding,
    CommandLineTool,
    CommandOutputParameter,
    ExpressionTool,
    Process,
    Workflow,
    WorkflowOutputParameter,
    WorkflowStep,
    WorkflowStepInput,
)
from repro.utils.yamlio import load_yaml_file

PathLike = Union[str, os.PathLike]

#: Loaded ``run:`` sub-documents keyed by resolved path (bounded LRU).
#: Scatter-heavy workflows and repeated benchmark runs reload the same tool
#: files over and over; the loaded model is immutable during execution, so
#: one shared instance per (path, mtime, size) is safe and skips the YAML
#: parse and model build entirely.
_RUN_DOCUMENT_CACHE: "OrderedDict[str, tuple]" = OrderedDict()
_RUN_DOCUMENT_CACHE_MAX = 128
_RUN_DOCUMENT_LOCK = threading.Lock()


def _stamp_of(path: str):
    stat = os.stat(path)
    return (stat.st_mtime_ns, stat.st_size)


def _dependency_stamps(path: str, process: Process) -> Dict[str, tuple]:
    """Stamps for ``path`` and every file-backed sub-process embedded in it.

    A cached workflow bakes its ``run:`` sub-documents in at parse time, so
    editing a *child* file must invalidate the parent's entry too.
    """
    stamps = {path: _stamp_of(path)}

    def visit(proc: Process) -> None:
        if isinstance(proc, Workflow):
            for step in proc.steps:
                embedded = step.embedded_process
                if embedded is None or not embedded.source_path:
                    continue
                child = os.path.abspath(embedded.source_path)
                if child not in stamps:
                    stamps[child] = _stamp_of(child)
                    visit(embedded)

    visit(process)
    return stamps


def _stamps_current(stamps: Dict[str, tuple]) -> bool:
    try:
        return all(_stamp_of(path) == stamp for path, stamp in stamps.items())
    except OSError:
        return False


def load_document_cached(source_path: PathLike) -> Process:
    """Load a CWL document from a path through the sub-document cache.

    The cache entry is invalidated when the file — or any ``run:`` sub-file
    embedded in it — changes mtime or size.  Returns a *shared*
    :class:`Process` instance; callers must not mutate it.
    """
    path = os.path.abspath(os.fspath(source_path))
    with _RUN_DOCUMENT_LOCK:
        entry = _RUN_DOCUMENT_CACHE.get(path)
    if entry is not None and _stamps_current(entry[0]):
        with _RUN_DOCUMENT_LOCK:
            if path in _RUN_DOCUMENT_CACHE:
                _RUN_DOCUMENT_CACHE.move_to_end(path)
        return entry[1]
    process = load_document(path)
    try:
        stamps = _dependency_stamps(path, process)
    except OSError:
        return process
    with _RUN_DOCUMENT_LOCK:
        _RUN_DOCUMENT_CACHE[path] = (stamps, process)
        _RUN_DOCUMENT_CACHE.move_to_end(path)
        while len(_RUN_DOCUMENT_CACHE) > _RUN_DOCUMENT_CACHE_MAX:
            _RUN_DOCUMENT_CACHE.popitem(last=False)
    return process


def clear_document_cache() -> None:
    """Drop every cached ``run:`` sub-document (tests)."""
    with _RUN_DOCUMENT_LOCK:
        _RUN_DOCUMENT_CACHE.clear()


def _strip_hash(identifier: str) -> str:
    """Normalise ``#step/name`` and ``file.cwl#name`` identifiers to bare names."""
    if "#" in identifier:
        identifier = identifier.split("#", 1)[1]
    return identifier


def _as_listing(section: Any, id_key: str = "id") -> List[Dict[str, Any]]:
    """Normalise a map-or-list CWL section into a list of dicts with ``id`` keys."""
    if section is None:
        return []
    if isinstance(section, dict):
        out = []
        for key, value in section.items():
            if isinstance(value, dict):
                entry = dict(value)
            else:
                entry = {"_shorthand": value}
            entry[id_key] = _strip_hash(str(key))
            out.append(entry)
        return out
    if isinstance(section, list):
        out = []
        for item in section:
            if not isinstance(item, dict):
                raise ValidationException(f"expected mapping entries in list section, got {item!r}")
            entry = dict(item)
            if id_key in entry:
                entry[id_key] = _strip_hash(str(entry[id_key]))
            out.append(entry)
        return out
    raise ValidationException(f"cannot normalise section of type {type(section).__name__}")


def _normalise_requirements(section: Any) -> List[Dict[str, Any]]:
    """Requirements may be a list of class-dicts or a map keyed by class name."""
    if section is None:
        return []
    if isinstance(section, list):
        out = []
        for item in section:
            if not isinstance(item, dict) or "class" not in item:
                raise ValidationException(f"requirement entries need a 'class' field: {item!r}")
            out.append(dict(item))
        return out
    if isinstance(section, dict):
        out = []
        for class_name, body in section.items():
            entry = dict(body) if isinstance(body, dict) else {}
            entry["class"] = class_name
            out.append(entry)
        return out
    raise ValidationException("requirements must be a list or a mapping")


def _parse_parameter_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    """Undo the ``_shorthand`` marker inserted by :func:`_as_listing`."""
    if "_shorthand" in entry:
        shorthand = entry.pop("_shorthand")
        entry.setdefault("type", shorthand)
    return entry


def load_document(source: Union[PathLike, Dict[str, Any]],
                  base_dir: Optional[str] = None) -> Process:
    """Load a CWL document from a path or an already-parsed dictionary.

    Returns a :class:`CommandLineTool`, :class:`Workflow` or
    :class:`ExpressionTool` according to the document's ``class`` field.
    """
    source_path: Optional[str] = None
    if isinstance(source, (str, os.PathLike)):
        source_path = os.path.abspath(os.fspath(source))
        document = load_yaml_file(source_path)
        base_dir = os.path.dirname(source_path)
    else:
        document = source
    if not isinstance(document, dict):
        raise ValidationException("a CWL document must be a YAML mapping at the top level")

    if "$graph" in document:
        return _load_graph(document, base_dir, source_path)

    cwl_class = document.get("class")
    if cwl_class == "CommandLineTool":
        return _load_command_line_tool(document, base_dir, source_path)
    if cwl_class == "Workflow":
        return _load_workflow(document, base_dir, source_path)
    if cwl_class == "ExpressionTool":
        return _load_expression_tool(document, base_dir, source_path)
    raise ValidationException(f"unsupported or missing document class: {cwl_class!r}")


def load_tool(source: Union[PathLike, Dict[str, Any]],
              base_dir: Optional[str] = None) -> CommandLineTool:
    """Load a document and require it to be a CommandLineTool."""
    process = load_document(source, base_dir=base_dir)
    if not isinstance(process, CommandLineTool):
        raise ValidationException(
            f"expected a CommandLineTool, got class {type(process).__name__}"
        )
    return process


def _load_graph(document: Dict[str, Any], base_dir: Optional[str],
                source_path: Optional[str]) -> Process:
    """Load a ``$graph`` packed document; returns the process with id ``main``."""
    processes: Dict[str, Process] = {}
    for entry in document.get("$graph", []):
        proc = load_document(dict(entry), base_dir=base_dir)
        proc.source_path = source_path
        processes[_strip_hash(str(entry.get("id", "")))] = proc
    main = processes.get("main")
    if main is None:
        raise ValidationException("$graph documents must contain a process with id 'main'")
    # Resolve step.run references that point at graph members.
    for proc in processes.values():
        if isinstance(proc, Workflow):
            for step in proc.steps:
                if isinstance(step.run, str):
                    ref = _strip_hash(step.run)
                    if ref in processes:
                        step.embedded_process = processes[ref]
    return main


def _common_fields(document: Dict[str, Any], source_path: Optional[str]) -> Dict[str, Any]:
    return {
        "id": _strip_hash(str(document.get("id", ""))) or (os.path.basename(source_path) if source_path else ""),
        "cwl_version": document.get("cwlVersion", "v1.2"),
        "label": document.get("label"),
        "doc": document.get("doc"),
        "requirements": _normalise_requirements(document.get("requirements")),
        "hints": _normalise_requirements(document.get("hints")),
        "source_path": source_path,
        "raw": document,
    }


def _load_inputs(document: Dict[str, Any]) -> List[CommandInputParameter]:
    entries = [_parse_parameter_entry(e) for e in _as_listing(document.get("inputs"))]
    return [CommandInputParameter.from_dict(e["id"], e) for e in entries]


def _load_outputs(document: Dict[str, Any]) -> List[CommandOutputParameter]:
    entries = [_parse_parameter_entry(e) for e in _as_listing(document.get("outputs"))]
    return [CommandOutputParameter.from_dict(e["id"], e) for e in entries]


def _load_command_line_tool(document: Dict[str, Any], base_dir: Optional[str],
                            source_path: Optional[str]) -> CommandLineTool:
    base_command = document.get("baseCommand", [])
    if isinstance(base_command, str):
        base_command = [base_command]
    arguments: List[Any] = []
    for arg in document.get("arguments", []) or []:
        if isinstance(arg, dict):
            arguments.append(CommandLineBinding.from_dict(arg))
        else:
            arguments.append(str(arg))
    tool = CommandLineTool(
        base_command=[str(part) for part in base_command],
        arguments=arguments,
        stdin=document.get("stdin"),
        stdout=document.get("stdout"),
        stderr=document.get("stderr"),
        success_codes=tuple(document.get("successCodes", (0,))),
        temporary_fail_codes=tuple(document.get("temporaryFailCodes", ())),
        permanent_fail_codes=tuple(document.get("permanentFailCodes", ())),
        inputs=_load_inputs(document),
        outputs=_load_outputs(document),
        **_common_fields(document, source_path),
    )
    return tool


def _load_expression_tool(document: Dict[str, Any], base_dir: Optional[str],
                          source_path: Optional[str]) -> ExpressionTool:
    return ExpressionTool(
        expression=document.get("expression", "$({})"),
        inputs=_load_inputs(document),
        outputs=_load_outputs(document),
        **_common_fields(document, source_path),
    )


def _load_workflow(document: Dict[str, Any], base_dir: Optional[str],
                   source_path: Optional[str]) -> Workflow:
    outputs_entries = [_parse_parameter_entry(e) for e in _as_listing(document.get("outputs"))]
    workflow_outputs = [WorkflowOutputParameter.from_dict(e["id"], e) for e in outputs_entries]
    for output in workflow_outputs:
        output.output_source = [_strip_hash(source) for source in output.output_source]
    workflow = Workflow(
        inputs=_load_inputs(document),
        outputs=_load_outputs(document),
        workflow_outputs=workflow_outputs,
        steps=_load_steps(document, base_dir),
        **_common_fields(document, source_path),
    )
    return workflow


def _load_steps(document: Dict[str, Any], base_dir: Optional[str]) -> List[WorkflowStep]:
    steps: List[WorkflowStep] = []
    for entry in _as_listing(document.get("steps")):
        run = entry.get("run")
        if run is None:
            raise ValidationException(f"step {entry.get('id')!r} is missing its 'run' field")

        embedded: Optional[Process] = None
        if isinstance(run, dict):
            embedded = load_document(dict(run), base_dir=base_dir)
        elif isinstance(run, str) and not run.startswith("#"):
            resolved = run
            if base_dir is not None and not os.path.isabs(run):
                resolved = os.path.join(base_dir, run)
            if os.path.exists(resolved):
                embedded = load_document_cached(resolved)

        raw_in = entry.get("in", {})
        if isinstance(raw_in, dict):
            step_inputs = [WorkflowStepInput.from_dict(_strip_hash(str(k)), v)
                           for k, v in raw_in.items()]
        else:
            step_inputs = [WorkflowStepInput.from_dict(_strip_hash(str(item.get("id"))), item)
                           for item in raw_in]
        # Sources may carry '#' prefixes.
        for step_input in step_inputs:
            step_input.source = [_strip_hash(s) for s in step_input.source]

        out = entry.get("out", [])
        out_ids = []
        for item in out:
            if isinstance(item, dict):
                out_ids.append(_strip_hash(str(item.get("id"))))
            else:
                out_ids.append(_strip_hash(str(item)))

        scatter = entry.get("scatter", [])
        if isinstance(scatter, str):
            scatter = [scatter]

        steps.append(
            WorkflowStep(
                id=entry["id"],
                run=run,
                in_=step_inputs,
                out=out_ids,
                scatter=[_strip_hash(str(s)) for s in scatter],
                scatter_method=entry.get("scatterMethod", "dotproduct"),
                when=entry.get("when"),
                requirements=_normalise_requirements(entry.get("requirements")),
                hints=_normalise_requirements(entry.get("hints")),
                doc=entry.get("doc"),
                embedded_process=embedded,
            )
        )
    return steps
