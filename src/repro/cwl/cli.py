"""Command-line interfaces for the CWL runners.

* ``repro-cwltool [--parallel] [--outdir DIR] document.cwl [job.yml] [--input value ...]``
  mirrors ``cwltool``'s basic invocation.
* ``repro-toil-cwl-runner [--batchSystem single_machine|slurm] [--jobStore DIR] document.cwl [job.yml] ...``
  mirrors ``toil-cwl-runner``.

Both print the CWL output object as JSON on stdout (the behaviour scripts and
tests rely on) and return a non-zero exit code on failure.  Execution routes
through the :mod:`repro.api` engine registry (``"reference"`` and ``"toil"``
respectively), so these CLIs observe exactly what a
:class:`repro.api.Session` would.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cwl.loader import load_document
from repro.cwl.runtime import RuntimeContext
from repro.utils.yamlio import dump_json, load_yaml_file


def parse_job_order(job_file: Optional[str], overrides: Sequence[str]) -> Dict[str, Any]:
    """Combine a YAML job file with ``--key value`` / ``--key=value`` overrides."""
    job_order: Dict[str, Any] = {}
    if job_file:
        loaded = load_yaml_file(job_file)
        if loaded is not None:
            if not isinstance(loaded, dict):
                raise ValueError(f"job order file {job_file} must contain a mapping")
            job_order.update(loaded)
    job_order.update(parse_cli_inputs(overrides))
    return job_order


def parse_cli_inputs(tokens: Sequence[str]) -> Dict[str, Any]:
    """Parse trailing ``--name value`` or ``--name=value`` input overrides."""
    overrides: Dict[str, Any] = {}
    i = 0
    tokens = list(tokens)
    while i < len(tokens):
        token = tokens[i]
        if not token.startswith("--"):
            raise ValueError(f"unexpected input argument {token!r} (expected --name value)")
        name = token[2:]
        if "=" in name:
            name, raw = name.split("=", 1)
            i += 1
        else:
            if i + 1 >= len(tokens):
                raw = "true"  # bare flag
                i += 1
            else:
                raw = tokens[i + 1]
                i += 2
        overrides[name] = _coerce_scalar(raw)
    return overrides


def _coerce_scalar(raw: str) -> Any:
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def _split_known_args(argv: Sequence[str]) -> Tuple[List[str], List[str]]:
    """Split argv into (known option/positional tokens, trailing input overrides).

    Everything after the first positional CWL document and optional job file
    that starts with ``--`` is treated as an input override.
    """
    known: List[str] = []
    overrides: List[str] = []
    positionals = 0
    i = 0
    argv = list(argv)
    option_with_value = {"--outdir", "--max-workers", "--jobStore", "--batchSystem", "--nodes",
                         "--cores-per-node", "--cachedir"}
    while i < len(argv):
        token = argv[i]
        if token.startswith("--") and positionals >= 1:
            overrides.extend(argv[i:])
            break
        known.append(token)
        if token in option_with_value and i + 1 < len(argv):
            known.append(argv[i + 1])
            i += 2
            continue
        if not token.startswith("-"):
            positionals += 1
        i += 1
    return known, overrides


def _finalise_outputs(outputs: Dict[str, Any], outdir: Optional[str]) -> Dict[str, Any]:
    """Collect final output files into ``--outdir`` (zero-copy staging).

    Mirrors ``cwltool``: with an ``--outdir``, every output File/Directory is
    staged into it — hardlinked where the filesystem allows, copied otherwise
    — and the printed output object points at the staged copies.
    """
    if not outdir:
        return outputs
    from repro.cwl.outputs import stage_outputs

    return stage_outputs(outputs, outdir)


def cwltool_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-cwltool``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    known, overrides = _split_known_args(argv)

    parser = argparse.ArgumentParser(prog="repro-cwltool",
                                     description="cwltool-like CWL runner (repro reimplementation)")
    parser.add_argument("document", help="CWL document (CommandLineTool or Workflow)")
    parser.add_argument("job_order", nargs="?", help="YAML/JSON job order file")
    parser.add_argument("--parallel", action="store_true", help="run independent jobs concurrently")
    parser.add_argument("--outdir", default=None, help="directory for final outputs")
    parser.add_argument("--max-workers", type=int, default=8)
    parser.add_argument("--cachedir", dest="cache_dir", default=None,
                        help="reuse tool results through the job cache at this directory")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(known)

    try:
        from repro.api import Session

        process = load_document(args.document)
        job_order = parse_job_order(args.job_order, overrides)
        runtime_context = RuntimeContext(outdir=args.outdir, basedir=args.outdir,
                                         cache_dir=args.cache_dir)
        with Session(engine="reference", runtime_context=runtime_context,
                     parallel=args.parallel, max_workers=args.max_workers) as session:
            result = session.run(process, job_order)
        outputs = _finalise_outputs(result.outputs, args.outdir)
    except Exception as exc:  # CLI boundary: report and return failure
        print(f"repro-cwltool: error: {exc}", file=sys.stderr)
        return 1
    print(dump_json(outputs))
    if not args.quiet:
        print(f"Final process status is {result.status}", file=sys.stderr)
    return 0


def toil_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-toil-cwl-runner``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    known, overrides = _split_known_args(argv)

    parser = argparse.ArgumentParser(prog="repro-toil-cwl-runner",
                                     description="Toil-like CWL runner (repro reimplementation)")
    parser.add_argument("document", help="CWL document (CommandLineTool or Workflow)")
    parser.add_argument("job_order", nargs="?", help="YAML/JSON job order file")
    parser.add_argument("--batchSystem", default="single_machine",
                        choices=("single_machine", "slurm"))
    parser.add_argument("--jobStore", default=None, help="job store directory")
    parser.add_argument("--outdir", default=None)
    parser.add_argument("--max-workers", type=int, default=8)
    parser.add_argument("--nodes", type=int, default=3, help="simulated cluster size for slurm")
    parser.add_argument("--cores-per-node", type=int, default=48)
    parser.add_argument("--cachedir", dest="cache_dir", default=None,
                        help="reuse tool results through the job cache at this directory")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(known)

    cluster = None
    try:
        from repro.api import Session
        from repro.cwl.runners.toil.batch import SingleMachineBatchSystem, SlurmBatchSystem

        process = load_document(args.document)
        job_order = parse_job_order(args.job_order, overrides)
        runtime_context = RuntimeContext(outdir=args.outdir, basedir=args.outdir,
                                         cache_dir=args.cache_dir)
        if args.batchSystem == "slurm":
            from repro.cluster.nodes import NodeInventory
            from repro.cluster.scheduler import SimulatedSlurmCluster

            cluster = SimulatedSlurmCluster(
                NodeInventory.homogeneous(args.nodes, cores=args.cores_per_node))
            batch = SlurmBatchSystem(cluster=cluster)
        else:
            batch = SingleMachineBatchSystem(max_cores=args.max_workers)
        with Session(engine="toil", job_store_dir=args.jobStore, batch_system=batch,
                     runtime_context=runtime_context, max_workers=args.max_workers) as session:
            result = session.run(process, job_order)
        outputs = _finalise_outputs(result.outputs, args.outdir)
    except Exception as exc:
        print(f"repro-toil-cwl-runner: error: {exc}", file=sys.stderr)
        return 1
    finally:
        if cluster is not None:
            cluster.shutdown()
    print(dump_json(outputs))
    if not args.quiet:
        print(f"Final process status is {result.status}", file=sys.stderr)
    return 0
