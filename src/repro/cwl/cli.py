"""Command-line interfaces for the CWL runners.

* ``repro-cwltool [--parallel] [--outdir DIR] document.cwl [job.yml] [--input value ...]``
  mirrors ``cwltool``'s basic invocation.
* ``repro-toil-cwl-runner [--batchSystem single_machine|slurm] [--jobStore DIR] document.cwl [job.yml] ...``
  mirrors ``toil-cwl-runner``.

Both print the CWL output object as JSON on stdout (the behaviour scripts and
tests rely on) and return a non-zero exit code on failure.  Execution routes
through the :mod:`repro.api` engine registry (``"reference"`` and ``"toil"``
respectively), so these CLIs observe exactly what a
:class:`repro.api.Session` would.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cwl.loader import load_document
from repro.cwl.runtime import RuntimeContext
from repro.utils.yamlio import dump_json, load_yaml_file


def parse_job_order(job_file: Optional[str], overrides: Sequence[str]) -> Dict[str, Any]:
    """Combine a YAML job file with ``--key value`` / ``--key=value`` overrides."""
    job_order: Dict[str, Any] = {}
    if job_file:
        loaded = load_yaml_file(job_file)
        if loaded is not None:
            if not isinstance(loaded, dict):
                raise ValueError(f"job order file {job_file} must contain a mapping")
            job_order.update(loaded)
    job_order.update(parse_cli_inputs(overrides))
    return job_order


def parse_cli_inputs(tokens: Sequence[str]) -> Dict[str, Any]:
    """Parse trailing ``--name value`` or ``--name=value`` input overrides."""
    overrides: Dict[str, Any] = {}
    i = 0
    tokens = list(tokens)
    while i < len(tokens):
        token = tokens[i]
        if not token.startswith("--"):
            raise ValueError(f"unexpected input argument {token!r} (expected --name value)")
        name = token[2:]
        if "=" in name:
            name, raw = name.split("=", 1)
            i += 1
        else:
            if i + 1 >= len(tokens):
                raw = "true"  # bare flag
                i += 1
            else:
                raw = tokens[i + 1]
                i += 2
        overrides[name] = _coerce_scalar(raw)
    return overrides


def _coerce_scalar(raw: str) -> Any:
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def _split_known_args(argv: Sequence[str]) -> Tuple[List[str], List[str]]:
    """Split argv into (known option/positional tokens, trailing input overrides).

    Everything after the first positional CWL document and optional job file
    that starts with ``--`` is treated as an input override.
    """
    known: List[str] = []
    overrides: List[str] = []
    positionals = 0
    i = 0
    argv = list(argv)
    option_with_value = {"--outdir", "--max-workers", "--jobStore", "--batchSystem", "--nodes",
                         "--cores-per-node", "--cachedir", "--retries", "--retry-backoff",
                         "--retry-exit-codes", "--timeout", "--on-error", "--rundir",
                         "--max-inflight"}
    while i < len(argv):
        token = argv[i]
        if token.startswith("--") and positionals >= 1:
            overrides.extend(argv[i:])
            break
        known.append(token)
        if token in option_with_value and i + 1 < len(argv):
            known.append(argv[i + 1])
            i += 2
            continue
        if not token.startswith("-"):
            positionals += 1
        i += 1
    return known, overrides


def _finalise_outputs(outputs: Dict[str, Any], outdir: Optional[str]) -> Dict[str, Any]:
    """Collect final output files into ``--outdir`` (zero-copy staging).

    Mirrors ``cwltool``: with an ``--outdir``, every output File/Directory is
    staged into it — hardlinked where the filesystem allows, copied otherwise
    — and the printed output object points at the staged copies.
    """
    if not outdir:
        return outputs
    from repro.cwl.outputs import stage_outputs

    return stage_outputs(outputs, outdir)


def _add_pipeline_args(parser: argparse.ArgumentParser) -> None:
    """The pipelined-scheduler flags shared by both runner CLIs."""
    parser.add_argument("--pipeline", action="store_true",
                        help="run on the asyncio pipelined scheduler core: "
                             "staging, execution and collection of different "
                             "jobs overlap (outputs are identical to the "
                             "default thread-pool core)")
    parser.add_argument("--max-inflight", dest="max_inflight", type=int,
                        default=None,
                        help="bound on jobs concurrently in the pipelined "
                             "core's stage/exec/collect window (default 64; "
                             "implies nothing without --pipeline)")


def _add_fault_tolerance_args(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance flags shared by both runner CLIs."""
    parser.add_argument("--retries", type=int, default=0,
                        help="retry transient job failures up to N times (default 0)")
    parser.add_argument("--retry-backoff", type=float, default=0.05,
                        help="base backoff in seconds between retries")
    parser.add_argument("--retry-exit-codes", default=None,
                        help="comma-separated tool exit codes considered transient")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job wall-clock timeout in seconds")
    parser.add_argument("--on-error", dest="on_error", default="stop",
                        choices=("stop", "continue"),
                        help="stop on the first failed step, or continue and "
                             "report partial outputs (failed subtrees skipped)")
    parser.add_argument("--rundir", default=None,
                        help="journalled run directory (crash-safe; enables --resume)")
    parser.add_argument("--resume", action="store_true",
                        help="resume the interrupted run recorded in --rundir "
                             "(completed jobs replay from its cache)")


def _retry_policy_from_args(args: argparse.Namespace):
    """Build the RetryPolicy the CLI flags describe, or None."""
    if args.retries <= 0:
        return None
    from repro.cwl.retry import RetryPolicy

    codes: Tuple[int, ...] = ()
    if args.retry_exit_codes:
        codes = tuple(int(code) for code in str(args.retry_exit_codes).split(","))
    return RetryPolicy(max_attempts=args.retries + 1,
                       backoff_s=args.retry_backoff,
                       retryable_exit_codes=codes)


def _install_sigterm_handler() -> None:
    """Make SIGTERM interrupt the run like Ctrl-C, so cleanup still executes.

    Only possible from the main thread; embedded callers (tests importing the
    main functions from a worker thread) keep their process-wide handler.
    """
    if threading.current_thread() is not threading.main_thread():
        return

    def raise_interrupt(_signum: int, _frame: Any) -> None:
        raise KeyboardInterrupt()

    try:
        signal.signal(signal.SIGTERM, raise_interrupt)
    except (ValueError, OSError):  # non-main interpreter contexts
        pass


def _handle_interrupt(prog: str, runtime_context: RuntimeContext,
                      rundir: Optional[str]) -> int:
    """Common Ctrl-C/SIGTERM epilogue: reap jobs, clean scratch, hint resume."""
    reaped = runtime_context.terminate_processes()
    runtime_context.close()
    message = f"{prog}: interrupted; terminated {reaped} live job(s)"
    if rundir:
        message += f"; resume with: {prog} --rundir {rundir} --resume <document>"
    print(message, file=sys.stderr)
    return 130


def cwltool_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-cwltool``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    known, overrides = _split_known_args(argv)

    parser = argparse.ArgumentParser(prog="repro-cwltool",
                                     description="cwltool-like CWL runner (repro reimplementation)")
    parser.add_argument("document", help="CWL document (CommandLineTool or Workflow)")
    parser.add_argument("job_order", nargs="?", help="YAML/JSON job order file")
    parser.add_argument("--parallel", action="store_true", help="run independent jobs concurrently")
    parser.add_argument("--outdir", default=None, help="directory for final outputs")
    parser.add_argument("--max-workers", type=int, default=8)
    parser.add_argument("--cachedir", dest="cache_dir", default=None,
                        help="reuse tool results through the job cache at this directory")
    _add_pipeline_args(parser)
    _add_fault_tolerance_args(parser)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(known)

    _install_sigterm_handler()
    runtime_context = RuntimeContext(outdir=args.outdir, basedir=args.outdir,
                                     cache_dir=args.cache_dir,
                                     retry_policy=_retry_policy_from_args(args),
                                     timeout_s=args.timeout,
                                     on_error=args.on_error)
    try:
        from repro import api

        job_order = parse_job_order(args.job_order, overrides)
        engine_options = dict(runtime_context=runtime_context,
                              parallel=args.parallel,
                              max_workers=args.max_workers,
                              pipeline=args.pipeline,
                              max_inflight=args.max_inflight)
        if args.resume:
            if not args.rundir:
                raise ValueError("--resume requires --rundir")
            result = api.resume(args.rundir, engine="reference",
                                **engine_options)
        elif args.rundir:
            result = api.run_with_journal(
                args.document, job_order, run_dir=args.rundir,
                engine="reference", **engine_options)
        else:
            process = load_document(args.document)
            with api.Session(engine="reference", **engine_options) as session:
                result = session.run(process, job_order)
        outputs = _finalise_outputs(result.outputs, args.outdir)
    except KeyboardInterrupt:
        return _handle_interrupt("repro-cwltool", runtime_context, args.rundir)
    except Exception as exc:  # CLI boundary: report and return failure
        print(f"repro-cwltool: error: {exc}", file=sys.stderr)
        return 1
    print(dump_json(outputs))
    if not args.quiet:
        print(f"Final process status is {result.status}", file=sys.stderr)
    return 0 if result.status == "success" else 1


def toil_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-toil-cwl-runner``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    known, overrides = _split_known_args(argv)

    parser = argparse.ArgumentParser(prog="repro-toil-cwl-runner",
                                     description="Toil-like CWL runner (repro reimplementation)")
    parser.add_argument("document", help="CWL document (CommandLineTool or Workflow)")
    parser.add_argument("job_order", nargs="?", help="YAML/JSON job order file")
    parser.add_argument("--batchSystem", default="single_machine",
                        choices=("single_machine", "slurm"))
    parser.add_argument("--jobStore", default=None, help="job store directory")
    parser.add_argument("--outdir", default=None)
    parser.add_argument("--max-workers", type=int, default=8)
    parser.add_argument("--nodes", type=int, default=3, help="simulated cluster size for slurm")
    parser.add_argument("--cores-per-node", type=int, default=48)
    parser.add_argument("--cachedir", dest="cache_dir", default=None,
                        help="reuse tool results through the job cache at this directory")
    _add_pipeline_args(parser)
    _add_fault_tolerance_args(parser)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(known)

    _install_sigterm_handler()
    runtime_context = RuntimeContext(outdir=args.outdir, basedir=args.outdir,
                                     cache_dir=args.cache_dir,
                                     retry_policy=_retry_policy_from_args(args),
                                     timeout_s=args.timeout,
                                     on_error=args.on_error)
    cluster = None
    try:
        from repro import api
        from repro.cwl.runners.toil.batch import SingleMachineBatchSystem, SlurmBatchSystem

        job_order = parse_job_order(args.job_order, overrides)
        if args.batchSystem == "slurm":
            from repro.cluster.nodes import NodeInventory
            from repro.cluster.scheduler import SimulatedSlurmCluster

            cluster = SimulatedSlurmCluster(
                NodeInventory.homogeneous(args.nodes, cores=args.cores_per_node))
            batch = SlurmBatchSystem(cluster=cluster)
        else:
            batch = SingleMachineBatchSystem(max_cores=args.max_workers)
        engine_options = dict(job_store_dir=args.jobStore, batch_system=batch,
                              runtime_context=runtime_context,
                              max_workers=args.max_workers,
                              pipeline=args.pipeline,
                              max_inflight=args.max_inflight)
        if args.resume:
            if not args.rundir:
                raise ValueError("--resume requires --rundir")
            result = api.resume(args.rundir, engine="toil", **engine_options)
        elif args.rundir:
            result = api.run_with_journal(
                args.document, job_order, run_dir=args.rundir, engine="toil",
                **engine_options)
        else:
            process = load_document(args.document)
            with api.Session(engine="toil", **engine_options) as session:
                result = session.run(process, job_order)
        outputs = _finalise_outputs(result.outputs, args.outdir)
    except KeyboardInterrupt:
        return _handle_interrupt("repro-toil-cwl-runner", runtime_context,
                                 args.rundir)
    except Exception as exc:
        print(f"repro-toil-cwl-runner: error: {exc}", file=sys.stderr)
        return 1
    finally:
        if cluster is not None:
            cluster.shutdown()
    print(dump_json(outputs))
    if not args.quiet:
        print(f"Final process status is {result.status}", file=sys.stderr)
    return 0 if result.status == "success" else 1
