"""Runtime context for job execution.

The CWL ``runtime`` object exposed to expressions describes where a job runs
(output and temporary directories) and what resources it was granted (cores,
RAM).  :class:`RuntimeContext` carries the same information plus runner-level
policy (whether to compute checksums, whether to relocate outputs, base
directories for new working directories, whether to reuse results through the
content-addressed job cache).
"""

from __future__ import annotations

import os
import shutil
import signal as _signal_module
import tempfile
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Set


def signal_job_process(proc: Any, sig: int) -> None:
    """Deliver ``sig`` to a job subprocess — its whole group when it leads one.

    Jobs are spawned with ``start_new_session=True`` so shell wrappers
    (``sh -c '...; sleep N'``) cannot orphan grandchildren when reaped: the
    signal goes to the process group.  The group path is guarded by a
    leader check so a process that (unexpectedly) shares our group is never
    group-signalled — that would hit the caller itself.
    """
    try:
        if os.getpgid(proc.pid) == proc.pid:
            os.killpg(proc.pid, sig)
            return
    except (OSError, AttributeError):
        pass
    try:
        proc.send_signal(sig)
    except OSError:
        pass


@dataclass
class RuntimeContext:
    """Execution-time settings shared by all runners."""

    #: Directory into which final outputs are collected.
    outdir: Optional[str] = None
    #: Base directory for per-job working directories.
    basedir: Optional[str] = None
    #: Temporary directory prefix.
    tmpdir_prefix: Optional[str] = None
    #: Cores granted to each job (exposed as ``runtime.cores``).
    cores: int = 1
    #: RAM granted to each job in MiB (exposed as ``runtime.ram``).
    ram_mb: int = 1024
    #: Compute sha1 checksums for collected output Files.
    compute_checksum: bool = False
    #: Move outputs from the working directory into ``outdir`` after the run.
    move_outputs: bool = True
    #: Extra environment variables for every job.
    env: Dict[str, str] = field(default_factory=dict)
    #: Evaluate JavaScript with a cached engine (Parsl/InlinePython-style) or
    #: rebuild the engine per evaluation (cwltool-style).
    cache_js_engine: bool = False
    #: Use the compiled-expression pipeline (parse-once AST cache, shared
    #: library scopes, precompiled processes — see
    #: :mod:`repro.cwl.expressions.compiler`).  Tri-state: ``None`` lets the
    #: runner pick its default — the ``toil``, ``parsl`` and
    #: ``parsl-workflow`` engines turn it on, the cwltool-fidelity reference
    #: runner leaves it off (its per-evaluation cost model is what Figure 2
    #: measures).  Set ``True``/``False`` to force either mode on any engine.
    compile_expressions: Optional[bool] = None
    #: Reuse CommandLineTool results through the content-addressed job cache
    #: (:mod:`repro.cwl.jobcache`).  Tri-state like ``compile_expressions``:
    #: ``None`` enables the cache exactly when a store was named — via
    #: :attr:`cache_dir` or the ``REPRO_JOBCACHE_DIR`` environment variable —
    #: ``True`` forces it on (using the default store when none was named)
    #: and ``False`` forces it off regardless of :attr:`cache_dir`.
    job_cache: Optional[bool] = None
    #: Directory of the job-cache store (shared freely between engines,
    #: sessions and processes).  ``None`` falls back to ``REPRO_JOBCACHE_DIR``
    #: or a per-user directory under the system temp dir.
    cache_dir: Optional[str] = None
    #: Bounded-retry policy (:class:`~repro.cwl.retry.RetryPolicy`) applied to
    #: every job; ``None`` disables retries (fail on first error).
    retry_policy: Optional[Any] = None
    #: Per-job wall-clock deadline in seconds.  On expiry the subprocess is
    #: reaped (SIGTERM, grace period, SIGKILL), its scratch dirs cleaned up,
    #: and a retryable :class:`~repro.cwl.errors.JobTimeout` raised.
    timeout_s: Optional[float] = None
    #: Workflow failure semantics: ``"stop"`` aborts the DAG on the first
    #: failed node (historic behaviour); ``"continue"`` lets independent
    #: branches finish — the failed node poisons only its transitive
    #: successors (marked ``skipped``) and partial outputs are returned.
    on_error: str = "stop"
    #: Deterministic fault-injection plan (:class:`~repro.cwl.faults.FaultPlan`)
    #: consulted before every job attempt; ``None`` injects nothing.
    fault_plan: Optional[Any] = None
    #: Append-only run journal (:class:`~repro.cwl.journal.RunJournal`) that
    #: node transitions and job cache keys are recorded to; ``None`` disables
    #: journaling.
    journal: Optional[Any] = None
    #: Scratch directories this context created, removed by :meth:`close`.
    _scratch_dirs: Set[str] = field(default_factory=set, repr=False, compare=False)
    #: Live subprocesses started under this context (shared with children),
    #: so an interrupted run can reap them via :meth:`terminate_processes`.
    _live_procs: Set[Any] = field(default_factory=set, repr=False, compare=False)
    #: Parent directories this context itself had to create for staging;
    #: pruned (when empty) by :meth:`cleanup_dir` / :meth:`close`.
    _created_parents: Set[str] = field(default_factory=set, repr=False, compare=False)
    _teardown_lock: threading.Lock = field(default_factory=threading.Lock,
                                           repr=False, compare=False)

    def ensure_outdir(self) -> str:
        """Create (if needed) and return the output directory."""
        if self.outdir is None:
            self.outdir = tempfile.mkdtemp(prefix="cwl-out-", dir=self.basedir)
        os.makedirs(self.outdir, exist_ok=True)
        return self.outdir

    def make_job_dir(self, name: str = "job") -> str:
        """Create a fresh working directory for one job."""
        base = self.basedir or tempfile.gettempdir()
        if not os.path.isdir(base):
            os.makedirs(base, exist_ok=True)
            with self._teardown_lock:
                self._created_parents.add(os.path.abspath(base))
        return tempfile.mkdtemp(prefix=f"cwl-{name}-", dir=base)

    def make_tmpdir(self) -> str:
        """Create a fresh scratch directory for one job (tracked for teardown)."""
        prefix = self.tmpdir_prefix or "cwl-tmp-"
        parent = os.path.dirname(prefix)
        if parent and not os.path.isdir(parent):
            os.makedirs(parent, exist_ok=True)
            with self._teardown_lock:
                self._created_parents.add(os.path.abspath(parent))
        path = tempfile.mkdtemp(prefix=prefix)
        with self._teardown_lock:
            self._scratch_dirs.add(path)
        return path

    def runtime_object(self, outdir: str, tmpdir: str) -> Dict[str, Any]:
        """The ``runtime`` dictionary exposed to expressions for one job."""
        return {
            "outdir": outdir,
            "tmpdir": tmpdir,
            "cores": self.cores,
            "ram": self.ram_mb,
            "outdirSize": 1024,
            "tmpdirSize": 1024,
        }

    def child(self, **overrides: Any) -> "RuntimeContext":
        """A copy of this context with selected fields replaced.

        Children share the parent's scratch-dir tracking (and its lock), so a
        single :meth:`close` on any of them tears the whole family down —
        exactly once, however many threads race to do it.
        """
        return replace(self, **overrides)

    def with_resources(self, process: Any) -> "RuntimeContext":
        """A context whose cores/RAM honour the process's ``ResourceRequirement``.

        ``coresMin`` / ``ramMin`` (falling back to ``coresMax`` / ``ramMax``)
        override this context's defaults, so ``$(runtime.cores)`` and
        ``$(runtime.ram)`` expressions see what the tool asked for.  Values
        that are not plain numbers (e.g. expressions) are left to the
        defaults.  Returns ``self`` unchanged when the process declares no
        resource requirement.
        """
        getter = getattr(process, "get_requirement", None)
        requirement = getter("ResourceRequirement") if getter else None
        if not requirement:
            return self
        cores = _as_positive_int(requirement.get("coresMin"),
                                 _as_positive_int(requirement.get("coresMax"), self.cores))
        ram = _as_positive_int(requirement.get("ramMin"),
                               _as_positive_int(requirement.get("ramMax"), self.ram_mb))
        if cores == self.cores and ram == self.ram_mb:
            return self
        return self.child(cores=cores, ram_mb=ram)

    # ------------------------------------------------------------- job cache

    def job_cache_dir(self) -> Optional[str]:
        """The resolved store directory, or ``None`` when caching is off.

        Tri-state resolution: ``job_cache=False`` always disables;
        ``job_cache=True`` always enables (default store when no
        :attr:`cache_dir`); ``job_cache=None`` enables exactly when a store
        was named via :attr:`cache_dir` or ``REPRO_JOBCACHE_DIR``.
        """
        from repro.cwl.jobcache import CACHE_DIR_ENV, default_cache_dir

        if self.job_cache is False:
            return None
        if self.cache_dir:
            return self.cache_dir
        if self.job_cache:
            return default_cache_dir()
        return os.environ.get(CACHE_DIR_ENV) or None

    def get_job_cache(self):
        """The shared :class:`~repro.cwl.jobcache.JobCache`, or ``None``."""
        directory = self.job_cache_dir()
        if directory is None:
            return None
        from repro.cwl.jobcache import get_job_cache

        return get_job_cache(directory)

    # ------------------------------------------------------------ subprocesses

    def register_process(self, proc: Any) -> None:
        """Track a live job subprocess for interrupt-time reaping."""
        with self._teardown_lock:
            self._live_procs.add(proc)

    def unregister_process(self, proc: Any) -> None:
        with self._teardown_lock:
            self._live_procs.discard(proc)

    def terminate_processes(self, grace_s: float = 2.0) -> int:
        """SIGTERM every live job subprocess, escalating to SIGKILL.

        Called on :exc:`KeyboardInterrupt`/SIGTERM so workers blocked in
        ``proc.wait()`` unblock promptly and teardown can run.  Returns the
        number of processes signalled.
        """
        with self._teardown_lock:
            procs = [p for p in self._live_procs if p.poll() is None]
        for proc in procs:
            signal_job_process(proc, _signal_module.SIGTERM)
        deadline = _now() + grace_s
        for proc in procs:
            remaining = deadline - _now()
            try:
                proc.wait(timeout=max(remaining, 0.05))
            except Exception:
                try:
                    signal_job_process(proc, _signal_module.SIGKILL)
                    proc.wait(timeout=grace_s)
                except Exception:
                    pass
        return len(procs)

    # --------------------------------------------------------------- teardown

    def cleanup_dir(self, path: str) -> None:
        """Best-effort removal of a scratch directory.

        Unlike a bare ``shutil.rmtree(..., ignore_errors=True)``, this also
        prunes the now-empty staging *parents* this context created for the
        directory (e.g. a ``tmpdir_prefix`` or ``basedir`` parent), so a
        closed context leaves no empty directory skeletons behind.
        """
        shutil.rmtree(path, ignore_errors=True)
        with self._teardown_lock:
            self._scratch_dirs.discard(path)
        self._prune_empty_parents(os.path.dirname(os.path.abspath(path)))

    def _prune_empty_parents(self, directory: str) -> None:
        """Remove ``directory`` and its ancestors while they are empty dirs
        that this context itself created."""
        while directory:
            with self._teardown_lock:
                if directory not in self._created_parents:
                    return
            try:
                os.rmdir(directory)
            except OSError:
                return  # not empty (or already gone from another closer)
            with self._teardown_lock:
                self._created_parents.discard(directory)
            directory = os.path.dirname(directory)

    def close(self) -> None:
        """Remove every scratch directory this context created.

        Idempotent and safe under concurrent close: each directory is claimed
        under the lock before removal, so two racing closers never tear down
        (or double-report) the same path, and a second :meth:`close` finds
        nothing left to do.
        """
        while True:
            with self._teardown_lock:
                if not self._scratch_dirs:
                    break
                path = self._scratch_dirs.pop()
            shutil.rmtree(path, ignore_errors=True)
            self._prune_empty_parents(os.path.dirname(os.path.abspath(path)))
        # Claimed-parent cleanup for contexts that made parents but no scratch
        # dirs survived to prune them.
        with self._teardown_lock:
            parents = sorted(self._created_parents, key=len, reverse=True)
            self._created_parents.clear()
        for parent in parents:
            try:
                os.rmdir(parent)
            except OSError:
                pass


def _now() -> float:
    import time

    return time.monotonic()


def _as_positive_int(value: Any, default: int) -> int:
    """Coerce a ResourceRequirement entry to a positive int, else ``default``."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return default
    coerced = int(value)
    return coerced if coerced >= 1 else default
