"""Runtime context for job execution.

The CWL ``runtime`` object exposed to expressions describes where a job runs
(output and temporary directories) and what resources it was granted (cores,
RAM).  :class:`RuntimeContext` carries the same information plus runner-level
policy (whether to compute checksums, whether to relocate outputs, base
directories for new working directories).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional


@dataclass
class RuntimeContext:
    """Execution-time settings shared by all runners."""

    #: Directory into which final outputs are collected.
    outdir: Optional[str] = None
    #: Base directory for per-job working directories.
    basedir: Optional[str] = None
    #: Temporary directory prefix.
    tmpdir_prefix: Optional[str] = None
    #: Cores granted to each job (exposed as ``runtime.cores``).
    cores: int = 1
    #: RAM granted to each job in MiB (exposed as ``runtime.ram``).
    ram_mb: int = 1024
    #: Compute sha1 checksums for collected output Files.
    compute_checksum: bool = False
    #: Move outputs from the working directory into ``outdir`` after the run.
    move_outputs: bool = True
    #: Extra environment variables for every job.
    env: Dict[str, str] = field(default_factory=dict)
    #: Evaluate JavaScript with a cached engine (Parsl/InlinePython-style) or
    #: rebuild the engine per evaluation (cwltool-style).
    cache_js_engine: bool = False
    #: Use the compiled-expression pipeline (parse-once AST cache, shared
    #: library scopes, precompiled processes — see
    #: :mod:`repro.cwl.expressions.compiler`).  Tri-state: ``None`` lets the
    #: runner pick its default — the ``toil``, ``parsl`` and
    #: ``parsl-workflow`` engines turn it on, the cwltool-fidelity reference
    #: runner leaves it off (its per-evaluation cost model is what Figure 2
    #: measures).  Set ``True``/``False`` to force either mode on any engine.
    compile_expressions: Optional[bool] = None

    def ensure_outdir(self) -> str:
        """Create (if needed) and return the output directory."""
        if self.outdir is None:
            self.outdir = tempfile.mkdtemp(prefix="cwl-out-", dir=self.basedir)
        os.makedirs(self.outdir, exist_ok=True)
        return self.outdir

    def make_job_dir(self, name: str = "job") -> str:
        """Create a fresh working directory for one job."""
        base = self.basedir or tempfile.gettempdir()
        os.makedirs(base, exist_ok=True)
        return tempfile.mkdtemp(prefix=f"cwl-{name}-", dir=base)

    def make_tmpdir(self) -> str:
        """Create a fresh scratch directory for one job."""
        return tempfile.mkdtemp(prefix=self.tmpdir_prefix or "cwl-tmp-")

    def runtime_object(self, outdir: str, tmpdir: str) -> Dict[str, Any]:
        """The ``runtime`` dictionary exposed to expressions for one job."""
        return {
            "outdir": outdir,
            "tmpdir": tmpdir,
            "cores": self.cores,
            "ram": self.ram_mb,
            "outdirSize": 1024,
            "tmpdirSize": 1024,
        }

    def child(self, **overrides: Any) -> "RuntimeContext":
        """A copy of this context with selected fields replaced."""
        return replace(self, **overrides)

    def with_resources(self, process: Any) -> "RuntimeContext":
        """A context whose cores/RAM honour the process's ``ResourceRequirement``.

        ``coresMin`` / ``ramMin`` (falling back to ``coresMax`` / ``ramMax``)
        override this context's defaults, so ``$(runtime.cores)`` and
        ``$(runtime.ram)`` expressions see what the tool asked for.  Values
        that are not plain numbers (e.g. expressions) are left to the
        defaults.  Returns ``self`` unchanged when the process declares no
        resource requirement.
        """
        getter = getattr(process, "get_requirement", None)
        requirement = getter("ResourceRequirement") if getter else None
        if not requirement:
            return self
        cores = _as_positive_int(requirement.get("coresMin"),
                                 _as_positive_int(requirement.get("coresMax"), self.cores))
        ram = _as_positive_int(requirement.get("ramMin"),
                               _as_positive_int(requirement.get("ramMax"), self.ram_mb))
        if cores == self.cores and ram == self.ram_mb:
            return self
        return self.child(cores=cores, ram_mb=ram)

    def cleanup_dir(self, path: str) -> None:
        """Best-effort removal of a scratch directory."""
        shutil.rmtree(path, ignore_errors=True)


def _as_positive_int(value: Any, default: int) -> int:
    """Coerce a ResourceRequirement entry to a positive int, else ``default``."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return default
    coerced = int(value)
    return coerced if coerced >= 1 else default
