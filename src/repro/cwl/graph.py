"""The explicit workflow dataflow IR: :class:`WorkflowGraph`.

The paper contrasts CWL runners' step orchestration with Parsl's implicit
dataflow DAG.  This module makes that DAG *explicit*: a loaded
:class:`~repro.cwl.schema.Workflow` is compiled once — at validate/load time —
into a :class:`WorkflowGraph` whose nodes carry precomputed dependency edges,
indegree counts and critical-path priorities.  Every execution path shares the
IR: the :class:`~repro.cwl.workflow.WorkflowEngine` (reference and Toil-like
runners) feeds it to the event-driven
:class:`~repro.cwl.scheduler.GraphScheduler`, the Parsl
:class:`~repro.core.workflow_bridge.CWLWorkflowBridge` walks it in topological
order to emit app submissions, and :func:`repro.api.plan` surfaces it for
introspection.

Node kinds
----------

``step``
    One plain (non-scattered) step whose process is a tool; executed by a
    process runner.
``scatter``
    A scattered step.  Static in the IR; at runtime the scheduler *expands* it
    into per-shard nodes plus a ``gather`` node once the scatter width is
    known (see ``WorkflowEngine._expand_scatter``).
``shard`` / ``gather``
    Runtime-only: one scatter shard, and the node that re-assembles shard
    outputs into the step's array outputs.  Downstream consumers are
    retargeted from the ``scatter`` node onto its ``gather`` node, so shards
    share the *same* bounded worker pool as every other node instead of a
    nested per-step pool.
``ingress`` / ``egress``
    A nested subworkflow step is *flattened* into the parent graph: the
    ingress node evaluates the step's ``when`` / ``valueFrom`` and seeds the
    child workflow's inputs, the child's steps become first-class nodes in
    the parent graph (namespaced by scope), and the egress node maps the
    child's workflow outputs back into the parent namespace.

Scopes and value keys
---------------------

Dataflow values live in one flat store keyed by ``scope + source``: the root
workflow has scope ``""`` (keys are the familiar ``step/out`` references), a
flattened subworkflow step ``sub`` has scope ``"sub/"``, and shard *j* of a
scattered subworkflow has scope ``"sub[j]/"``.  A subworkflow instance's
outputs are stored at ``child_scope + output_id``, which is exactly the key
its parent consumers (or its gather node) read.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cwl.errors import ValidationException, WorkflowException
from repro.cwl.loader import load_document_cached
from repro.cwl.schema import Process, Workflow, WorkflowStep

#: Node kinds (plain strings so ``describe()`` output is JSON-ready).
STEP = "step"
SCATTER = "scatter"
SHARD = "shard"
GATHER = "gather"
INGRESS = "ingress"
EGRESS = "egress"

#: Signature of the callable that resolves a step's ``run:`` reference.
StepResolver = Callable[[WorkflowStep, Workflow], Process]


def resolve_run_reference(run: str, source_path: Optional[str]) -> str:
    """Resolve a relative ``run:`` file reference against the referring document.

    Uses ``os.path.join`` + ``normpath`` so ``./tool.cwl``, ``tool.cwl`` and
    parent-relative ``../tools/tool.cwl`` references all resolve correctly
    (the previous f-string join produced paths like ``dir/./tool.cwl``).
    """
    if os.path.isabs(run):
        return os.path.normpath(run)
    base_dir = os.path.dirname(source_path) if source_path else ""
    return os.path.normpath(os.path.join(base_dir, run)) if base_dir else os.path.normpath(run)


def default_resolver(step: WorkflowStep, workflow: Workflow) -> Process:
    """Resolve a step's process: embedded, or loaded from its ``run:`` path."""
    if step.embedded_process is not None:
        return step.embedded_process
    if isinstance(step.run, str):
        return load_document_cached(resolve_run_reference(step.run, workflow.source_path))
    if isinstance(step.run, Process):
        return step.run
    raise WorkflowException(
        f"step {step.id!r} has an unresolvable run reference {step.run!r}")


def seed_workflow_inputs(workflow: Workflow, job_order: Dict[str, Any],
                         error: type = ValidationException) -> Dict[str, Any]:
    """Resolve a workflow's input values from ``job_order`` (defaults, optionals).

    Shared by the engine, the Parsl bridge and subworkflow ingress nodes so
    input seeding has exactly one implementation.  ``error`` selects the
    exception type raised for a missing required input (the bridge historically
    raises :class:`WorkflowException`, the engine :class:`ValidationException`).
    """
    values: Dict[str, Any] = {}
    for param in workflow.inputs:
        if param.id in job_order:
            values[param.id] = job_order[param.id]
        elif param.has_default:
            values[param.id] = param.default
        elif param.type.is_optional:
            values[param.id] = None
        else:
            raise error(f"workflow input {param.id!r} is required but was not provided")
    return values


def merge_link_values(values: List[Any], link_merge: str) -> Any:
    """CWL ``linkMerge`` semantics for multi-source values (the single site).

    A lone source passes through unchanged; ``merge_flattened`` flattens
    list-valued items while non-list items — including the unresolved futures
    the Parsl bridge carries at submission time — stay atomic;
    ``merge_nested`` (the default) keeps one item per source.  Shared by the
    workflow engine (step inputs *and* workflow outputs) and the bridge so the
    merge rules cannot diverge between engines.
    """
    if len(values) == 1:
        return values[0]
    if link_merge == "merge_flattened":
        return [item for sub in values
                for item in (sub if isinstance(sub, list) else [sub])]
    return values


def find_step_cycle(workflow: Workflow) -> List[str]:
    """Return the step ids of one dependency cycle (in order), or ``[]``.

    Step-level only — no ``run:`` resolution, no subworkflow flattening — so
    validation can name cyclic steps cheaply without touching the filesystem.
    Unknown sources are ignored here; they are reported separately.
    """
    step_ids = {step.id for step in workflow.steps}
    depends_on: Dict[str, List[str]] = {}
    for step in workflow.steps:
        deps: List[str] = []
        for step_input in step.in_:
            for source in step_input.source:
                if "/" in source:
                    producer = source.split("/", 1)[0]
                    if producer in step_ids and producer not in deps:
                        deps.append(producer)
        depends_on[step.id] = deps

    WHITE, GREY, BLACK = 0, 1, 2
    colour = {step_id: WHITE for step_id in depends_on}

    # Iterative colouring DFS: an explicit (node, dep-iterator) stack instead
    # of recursion, so a 10k-step linear chain cannot hit the interpreter's
    # recursion limit during validation.
    for root in depends_on:
        if colour[root] != WHITE:
            continue
        colour[root] = GREY
        path = [root]
        frames = [(root, iter(depends_on[root]))]
        while frames:
            node, deps = frames[-1]
            advanced = False
            for dep in deps:
                if colour[dep] == GREY:
                    return path[path.index(dep):] + [dep]
                if colour[dep] == WHITE:
                    colour[dep] = GREY
                    path.append(dep)
                    frames.append((dep, iter(depends_on[dep])))
                    advanced = True
                    break
            if not advanced:
                frames.pop()
                path.pop()
                colour[node] = BLACK
    return []


@dataclass
class GraphNode:
    """One unit of schedulable work in a :class:`WorkflowGraph`."""

    id: str
    kind: str
    #: The workflow step this node derives from (None only for synthetic nodes).
    step: Optional[WorkflowStep]
    #: The (sub)workflow the step belongs to.
    workflow: Optional[Workflow]
    #: Namespace prefix used to resolve this node's sources in the value store.
    #: For ``egress`` nodes this is the *child* scope (it reads child values
    #: and stores outputs at ``scope + output_id``).
    scope: str = ""
    #: Critical-path priority: length of the longest dependent chain hanging
    #: off this node (higher runs first among ready nodes).
    priority: int = 1
    #: Runtime payload: ``(process, job_order)`` for shard nodes, the
    #: :class:`~repro.cwl.scatter.ScatterPlan` for gather nodes.
    payload: Any = field(default=None, repr=False, compare=False)
    #: For ingress/egress nodes: the child Workflow and its value-store scope.
    child: Optional[Workflow] = field(default=None, repr=False, compare=False)
    child_scope: str = ""

    @property
    def record_id(self) -> str:
        """The step-record key for this node (node id minus @in/@out/@gather)."""
        for marker in ("@in", "@out", "@gather"):
            if self.id.endswith(marker):
                return self.id[: -len(marker)]
        return self.id


class WorkflowGraph:
    """The immutable-after-build dataflow graph of one workflow."""

    def __init__(self) -> None:
        self.nodes: Dict[str, GraphNode] = {}
        #: node id -> ordered, de-duplicated predecessor node ids.
        self.predecessors: Dict[str, List[str]] = {}
        #: node id -> successor node ids (derived from predecessors).
        self.successors: Dict[str, List[str]] = {}
        #: node id -> number of predecessors (the scheduler's starting counts).
        self.indegree: Dict[str, int] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------- inspection

    def topological_order(self) -> List[str]:
        """Node ids in a stable topological order (computed at build time)."""
        return list(self._order)

    def roots(self) -> List[str]:
        return [nid for nid in self.nodes if self.indegree[nid] == 0]

    def edges(self) -> List[Tuple[str, str]]:
        return [(pred, nid) for nid, preds in self.predecessors.items() for pred in preds]

    def critical_path(self) -> List[str]:
        """One longest dependency chain, source to sink, as node ids."""
        if not self.nodes:
            return []
        start = max(self.roots() or list(self.nodes),
                    key=lambda nid: self.nodes[nid].priority)
        path = [start]
        while self.successors.get(path[-1]):
            path.append(max(self.successors[path[-1]],
                            key=lambda nid: self.nodes[nid].priority))
        return path

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary: nodes, edges, critical path (``api.plan()``)."""
        return {
            "nodes": [
                {
                    "id": node.id,
                    "kind": node.kind,
                    "scope": node.scope,
                    "step": node.step.id if node.step is not None else None,
                    "priority": node.priority,
                    "scatter": node.kind == SCATTER,
                    "deps": list(self.predecessors[node.id]),
                }
                for node in (self.nodes[nid] for nid in self._order)
            ],
            "edges": [list(edge) for edge in self.edges()],
            "critical_path": self.critical_path(),
            "critical_path_length": max((n.priority for n in self.nodes.values()), default=0),
            "node_count": len(self.nodes),
            "edge_count": sum(len(p) for p in self.predecessors.values()),
        }

    # ------------------------------------------------------------ finalisation

    def _finalise(self) -> None:
        """Derive successors, a stable topological order and priorities."""
        self.successors = {nid: [] for nid in self.nodes}
        self.indegree = {nid: len(preds) for nid, preds in self.predecessors.items()}
        for nid, preds in self.predecessors.items():
            for pred in preds:
                self.successors[pred].append(nid)

        # Kahn's algorithm over insertion order (stable for equal readiness).
        remaining = dict(self.indegree)
        ready = [nid for nid in self.nodes if remaining[nid] == 0]
        order: List[str] = []
        index = 0
        while index < len(ready):
            nid = ready[index]
            index += 1
            order.append(nid)
            for succ in self.successors[nid]:
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.nodes):
            stuck = sorted(nid for nid in self.nodes if nid not in set(order))
            raise ValidationException(
                "workflow graph contains a dependency cycle",
                issues=[f"cyclic nodes: {', '.join(stuck)}"])
        self._order = order

        # Critical-path priorities: longest chain from each node to a sink.
        for nid in reversed(order):
            succs = self.successors[nid]
            self.nodes[nid].priority = 1 + max(
                (self.nodes[s].priority for s in succs), default=0)


class GraphBuilder:
    """Builds :class:`WorkflowGraph` s (and runtime scatter-expansion subgraphs)."""

    def __init__(self, resolve: Optional[StepResolver] = None,
                 flatten_subworkflows: bool = True) -> None:
        self.resolve = resolve or default_resolver
        self.flatten = flatten_subworkflows
        self.nodes: Dict[str, GraphNode] = {}
        self.preds: Dict[str, List[str]] = {}

    # ----------------------------------------------------------------- helpers

    def add_node(self, node: GraphNode, preds: Sequence[str]) -> None:
        if node.id in self.nodes:
            raise WorkflowException(f"duplicate graph node id {node.id!r}")
        self.nodes[node.id] = node
        self.preds[node.id] = list(dict.fromkeys(preds))

    # -------------------------------------------------------------- workflows

    def add_workflow(self, workflow: Workflow, scope: str = "",
                     entry: Optional[str] = None) -> Dict[str, str]:
        """Add one node per step of ``workflow`` under namespace ``scope``.

        ``entry`` is the node id that seeds this (sub)workflow's inputs — the
        ingress node of a flattened subworkflow step.  ``None`` means inputs
        are seeded before scheduling starts (the root workflow, or a scatter
        shard whose inputs are concrete at expansion time).

        Returns the producer map: ``"step/out"`` source string -> the node id
        whose completion makes that value available.
        """
        cycle = find_step_cycle(workflow)
        if cycle:
            raise ValidationException(
                f"workflow {workflow.id or '<anonymous>'} has a dependency cycle",
                issues=["dependency cycle between steps: " + " -> ".join(cycle)])

        input_ids = {param.id for param in workflow.inputs}
        resolved: Dict[str, Process] = {}
        flattened: Set[str] = set()
        for step in workflow.steps:
            process = self.resolve(step, workflow)
            resolved[step.id] = process
            if self.flatten and not step.scatter and isinstance(process, Workflow):
                flattened.add(step.id)

        producer: Dict[str, str] = {}
        for step in workflow.steps:
            node_id = (f"{scope}{step.id}@out" if step.id in flattened
                       else f"{scope}{step.id}")
            for out_id in step.out:
                producer[f"{step.id}/{out_id}"] = node_id

        for step in workflow.steps:
            deps: List[str] = []
            for step_input in step.in_:
                for source in step_input.source:
                    if "/" in source:
                        if source not in producer:
                            raise WorkflowException(
                                f"step {step.id!r} references unknown step output {source!r}")
                        deps.append(producer[source])
                    else:
                        if source not in input_ids:
                            raise WorkflowException(
                                f"step {step.id!r} references unknown workflow input {source!r}")
                        if entry is not None:
                            deps.append(entry)
            if entry is not None and not deps:
                # Every root of a flattened child subgraph must observe the
                # ingress — even a step with no sources at all — so a false
                # `when` guard on the subworkflow step reliably skips it.
                deps.append(entry)
            if step.id in flattened:
                self._add_flattened_subworkflow(step, resolved[step.id], workflow, scope, deps)
            else:
                kind = SCATTER if step.scatter else STEP
                self.add_node(GraphNode(id=f"{scope}{step.id}", kind=kind, step=step,
                                        workflow=workflow, scope=scope), preds=deps)
        return producer

    def _add_flattened_subworkflow(self, step: WorkflowStep, child: Workflow,
                                   parent: Workflow, scope: str,
                                   deps: Sequence[str]) -> None:
        ingress_id = f"{scope}{step.id}@in"
        child_scope = f"{scope}{step.id}/"
        self.add_node(GraphNode(id=ingress_id, kind=INGRESS, step=step, workflow=parent,
                                scope=scope, child=child, child_scope=child_scope),
                      preds=deps)
        self.add_subworkflow_instance(step, child, child_scope, entry=ingress_id)

    def add_subworkflow_instance(self, step: WorkflowStep, child: Workflow,
                                 child_scope: str, entry: Optional[str]) -> str:
        """Add ``child``'s steps under ``child_scope`` plus an egress node.

        Returns the egress node id.  Used both for static flattening (with
        ``entry`` = the ingress node) and for scatter-shard expansion of
        subworkflow steps (``entry=None``, inputs seeded at expansion time).
        """
        producer = self.add_workflow(child, child_scope, entry=entry)
        child_inputs = {param.id for param in child.inputs}
        deps: List[str] = []
        for output in child.workflow_outputs:
            for source in output.output_source:
                if "/" in source:
                    if source not in producer:
                        raise WorkflowException(
                            f"workflow output {output.id!r} references unknown "
                            f"step output {source!r}")
                    deps.append(producer[source])
                elif source in child_inputs and entry is not None:
                    deps.append(entry)
        if entry is not None:
            # The egress must observe the ingress even with no wired outputs,
            # so `when: false` skips propagate and records always materialise.
            deps.append(entry)
        egress_id = child_scope.rstrip("/") + "@out"
        self.add_node(GraphNode(id=egress_id, kind=EGRESS, step=step, workflow=child,
                                scope=child_scope, child=child, child_scope=child_scope),
                      preds=deps)
        return egress_id

    # ------------------------------------------------------------------ output

    def finish(self) -> WorkflowGraph:
        graph = WorkflowGraph()
        graph.nodes = self.nodes
        graph.predecessors = self.preds
        graph._finalise()
        return graph


def build_graph(workflow: Workflow, resolve: Optional[StepResolver] = None,
                flatten_subworkflows: bool = True) -> WorkflowGraph:
    """Compile ``workflow`` into its dataflow :class:`WorkflowGraph`."""
    builder = GraphBuilder(resolve=resolve, flatten_subworkflows=flatten_subworkflows)
    builder.add_workflow(workflow, scope="", entry=None)
    return builder.finish()
