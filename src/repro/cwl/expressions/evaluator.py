"""The expression evaluator used by command-line building and output collection.

``ExpressionEvaluator.evaluate`` takes a string that may contain parameter
references and/or JavaScript expressions, together with the CWL evaluation
context (``inputs``, ``self``, ``runtime``), and returns the evaluated value:

* when the whole string is exactly one expression, the expression's native
  value is returned (so ``$(inputs.size)`` stays an int),
* otherwise each embedded expression is evaluated and string-interpolated.

This is the **uncached pipeline**: every call re-parses any JavaScript and
(with ``cache_engine=False``, the default) rebuilds the engine — including
re-running the whole ``expressionLib`` — mirroring cwltool, which launches a
node.js process per evaluation batch.  ``cache_engine=True`` re-uses one
engine per context but still re-parses each string.  The expression benchmark
(Fig. 2) exercises exactly these costs.  (One shared shortcut: the
*scanning* helpers in :mod:`repro.cwl.expressions.paramrefs` are memoized
process-wide, so locating ``$(...)``/``${...}`` occurrences is cached even
here; the dominant Fig. 2 costs — JS parsing, engine construction and
evaluation — remain strictly per-call in this class.)

Long-lived runners should use the **compiled pipeline** instead
(:class:`repro.cwl.expressions.compiler.CompiledEvaluator`): identical
semantics, but each distinct string is parsed once, library scopes are shared
by content hash, and repeats are served from a bounded LRU.  The ``toil``,
``parsl`` and ``parsl-workflow`` engines default to it via
``RuntimeContext.compile_expressions``; this class remains the default for the
cwltool-fidelity reference runner.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.cwl.errors import ExpressionError
from repro.cwl.expressions.jsengine.interpreter import JSEngine
from repro.cwl.expressions.paramrefs import (
    FoundExpression,
    find_expressions,
    is_simple_parameter_reference,
    resolve_parameter_reference,
)


def needs_expression_evaluation(value: Any) -> bool:
    """Whether ``value`` is a string containing at least one expression."""
    if not isinstance(value, str):
        return False
    return bool(find_expressions(value))


def _stringify(value: Any) -> str:
    """Interpolate an evaluated value back into a string, CWL-style."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (dict, list)):
        return json.dumps(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class ExpressionEvaluator:
    """Evaluate CWL parameter references and JavaScript expressions."""

    def __init__(
        self,
        expression_lib: Optional[Sequence[str]] = None,
        js_enabled: bool = True,
        cache_engine: bool = False,
    ) -> None:
        self.expression_lib = list(expression_lib or [])
        self.js_enabled = js_enabled
        self.cache_engine = cache_engine
        self._cached_engine: Optional[JSEngine] = None
        self._cached_context_id: Optional[int] = None
        #: Number of JavaScript engine constructions (exposed for the benchmarks).
        self.engine_builds = 0

    # ------------------------------------------------------------------ public

    def evaluate(self, value: Any, context: Dict[str, Any]) -> Any:
        """Evaluate ``value`` against ``context``.

        Non-string values are returned unchanged; strings are scanned for
        expressions.  ``context`` should provide ``inputs`` and usually
        ``runtime`` and ``self``.
        """
        if not isinstance(value, str):
            return value
        expressions = find_expressions(value)
        if not expressions:
            return value.replace("\\$", "$")

        # Whole-string single expression: preserve the native value type.
        only = expressions[0]
        if len(expressions) == 1 and only.start == 0 and only.end == len(value.strip()) \
                and value.strip() == value:
            return self._evaluate_one(only, context)

        # Otherwise: string interpolation.
        pieces: List[str] = []
        cursor = 0
        for expression in expressions:
            pieces.append(value[cursor:expression.start].replace("\\$", "$"))
            pieces.append(_stringify(self._evaluate_one(expression, context)))
            cursor = expression.end
        pieces.append(value[cursor:].replace("\\$", "$"))
        return "".join(pieces)

    def evaluate_structure(self, value: Any, context: Dict[str, Any]) -> Any:
        """Recursively evaluate expressions inside lists and dictionaries."""
        if isinstance(value, str):
            return self.evaluate(value, context)
        if isinstance(value, list):
            return [self.evaluate_structure(item, context) for item in value]
        if isinstance(value, dict):
            return {key: self.evaluate_structure(item, context) for key, item in value.items()}
        return value

    # ----------------------------------------------------------------- helpers

    def _evaluate_one(self, expression: FoundExpression, context: Dict[str, Any]) -> Any:
        if expression.kind == "paren":
            if is_simple_parameter_reference(expression.body):
                return resolve_parameter_reference(expression.body, context)
            if not self.js_enabled:
                raise ExpressionError(
                    f"expression $({expression.body}) requires InlineJavascriptRequirement, "
                    "which this document does not declare"
                )
            return self._engine_for(context).evaluate(expression.body)
        # ${ ... } — a JavaScript function body.
        if not self.js_enabled:
            raise ExpressionError(
                "${...} expressions require InlineJavascriptRequirement, "
                "which this document does not declare"
            )
        return self._engine_for(context).run_function_body(expression.body)

    def _engine_for(self, context: Dict[str, Any]) -> JSEngine:
        if self.cache_engine:
            # Re-use the engine when the context object is literally the same dict;
            # rebuild when the caller switched to a different context.
            if self._cached_engine is None or self._cached_context_id != id(context):
                self._cached_engine = self._build_engine(context)
                self._cached_context_id = id(context)
            return self._cached_engine
        return self._build_engine(context)

    def _build_engine(self, context: Dict[str, Any]) -> JSEngine:
        self.engine_builds += 1
        return JSEngine(context=context, expression_lib=self.expression_lib)
