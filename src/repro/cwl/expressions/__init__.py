"""CWL expression support.

CWL documents embed two kinds of dynamic content:

* **parameter references** — ``$(inputs.name)``, ``$(runtime.outdir)``,
  ``$(self.basename)`` — simple attribute/index paths into the evaluation
  context, and
* **expressions** — arbitrary JavaScript, either inline ``$( ... )`` expressions
  or ``${ ... }`` function bodies, enabled by ``InlineJavascriptRequirement``.

Because no JavaScript runtime is available offline, :mod:`repro.cwl.expressions.jsengine`
implements a small ECMAScript-expression interpreter in pure Python covering the
subset CWL documents actually use.  :class:`~repro.cwl.expressions.evaluator.ExpressionEvaluator`
ties it together: it finds references/expressions in strings, evaluates them
against the CWL context (``inputs``, ``self``, ``runtime``) and performs string
interpolation, mirroring the behaviour of cwltool's expression handling.

Two evaluation pipelines are provided:

* the **uncached** :class:`ExpressionEvaluator` re-scans and re-parses per
  evaluation (cwltool fidelity — the Figure 2 cost model), and
* the **compiled** :class:`~repro.cwl.expressions.compiler.CompiledEvaluator`
  parses each distinct string once into closures, shares library scopes by
  content hash and serves repeats from a bounded LRU (the default for the
  long-lived ``toil`` / ``parsl`` / ``parsl-workflow`` engines).
"""

from repro.cwl.expressions.compiler import (
    CompiledEvaluator,
    clear_compile_cache,
    compile_cache_stats,
    precompile_process,
)
from repro.cwl.expressions.evaluator import ExpressionEvaluator, needs_expression_evaluation
from repro.cwl.expressions.paramrefs import (
    find_expressions,
    resolve_parameter_reference,
)

__all__ = [
    "CompiledEvaluator",
    "ExpressionEvaluator",
    "clear_compile_cache",
    "compile_cache_stats",
    "find_expressions",
    "needs_expression_evaluation",
    "precompile_process",
    "resolve_parameter_reference",
]
