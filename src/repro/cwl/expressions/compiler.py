"""The compiled-expression pipeline: parse once, evaluate many times.

:class:`~repro.cwl.expressions.evaluator.ExpressionEvaluator` re-scans,
re-tokenizes, re-parses and rebuilds a JavaScript engine for every evaluation —
the cwltool-fidelity cost model the paper's Figure 2 measures.  This module is
the amortized alternative used by the long-lived engines (``toil``, ``parsl``,
``parsl-workflow``):

* :class:`CompiledExpression` — one ``$(...)``/``${...}`` occurrence, scanned
  and classified **once** into a literal-free fast path: a *simple parameter
  reference* (pre-tokenized path walk, no JS at all) or a closure-compiled JS
  AST (see :mod:`repro.cwl.expressions.jsengine.closures`).
* :class:`CompiledTemplate` — a whole CWL string: plain literal, whole-string
  single expression (native value preserved) or an interpolation with
  precompiled segments and pre-unescaped literal pieces.
* a process-wide bounded LRU cache keyed by ``(source, js_enabled,
  library fingerprint)`` — templates compile once per distinct string and are
  automatically invalidated when the ``expressionLib`` content changes.
* :class:`CompiledEvaluator` — drop-in replacement for ``ExpressionEvaluator``
  (same ``evaluate`` / ``evaluate_structure`` contract and error messages)
  backed by a shared :class:`~repro.cwl.expressions.jsengine.closures.LibraryScope`.
* :func:`precompile_process` — the validate-time pass that walks a loaded
  document (arguments, input/output bindings, redirections, step ``when`` /
  ``valueFrom``, embedded sub-processes) and pins every expression's compiled
  template, so the first job of a scatter pays no parse cost either.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.cwl.errors import ExpressionError, JavaScriptError
from repro.cwl.expressions.evaluator import _stringify
from repro.cwl.expressions.jsengine.closures import (
    CompiledNode,
    LibraryScope,
    compile_expression_ast,
    compile_program_ast,
    shared_library_scope,
)
from repro.cwl.expressions.jsengine.parser import parse_expression, parse_program
from repro.cwl.expressions.paramrefs import (
    FoundExpression,
    is_simple_parameter_reference,
    resolve_path_tokens,
    scan_expressions,
    tokenize_path,
)

__all__ = [
    "CompiledExpression",
    "CompiledTemplate",
    "CompiledEvaluator",
    "ProcessCompilation",
    "compile_template",
    "precompile_process",
    "compile_cache_stats",
    "clear_compile_cache",
]


class CompiledExpression:
    """One expression occurrence, classified and compiled at construction.

    ``kind`` is one of:

    * ``"param"`` — a simple parameter reference; evaluation walks a
      pre-tokenized path, never touching the JavaScript engine,
    * ``"js"`` — a ``$(...)`` JavaScript expression, closure-compiled,
    * ``"body"`` — a ``${...}`` function body, closure-compiled.
    """

    __slots__ = ("kind", "body", "_tokens", "_compiled")

    def __init__(self, found: FoundExpression, js_enabled: bool = True) -> None:
        self.body = found.body
        self._tokens: Optional[Tuple[Any, ...]] = None
        self._compiled: Optional[CompiledNode] = None
        if found.kind == "paren":
            if is_simple_parameter_reference(found.body):
                self.kind = "param"
                self._tokens = tokenize_path(found.body)
                return
            if not js_enabled:
                raise ExpressionError(
                    f"expression $({found.body}) requires InlineJavascriptRequirement, "
                    "which this document does not declare"
                )
            self.kind = "js"
            self._compiled = compile_expression_ast(parse_expression(found.body))
            return
        if not js_enabled:
            raise ExpressionError(
                "${...} expressions require InlineJavascriptRequirement, "
                "which this document does not declare"
            )
        self.kind = "body"
        self._compiled = compile_program_ast(parse_program(found.body))

    def evaluate(self, context: Dict[str, Any], scope: LibraryScope) -> Any:
        if self.kind == "param":
            return resolve_path_tokens(self._tokens, context, source=self.body)
        if self.kind == "js":
            return scope.evaluate(self._compiled, context)
        return scope.run_body(self._compiled, context)


class CompiledTemplate:
    """A whole CWL string compiled once.

    ``kind`` is ``"plain"`` (no expressions; the unescaped literal is
    precomputed), ``"single"`` (the string is exactly one expression, whose
    native value is returned) or ``"interpolate"`` (alternating pre-unescaped
    literal pieces and :class:`CompiledExpression` segments).
    """

    __slots__ = ("source", "kind", "literal", "single", "segments")

    def __init__(self, source: str, js_enabled: bool = True) -> None:
        self.source = source
        self.literal: Optional[str] = None
        self.single: Optional[CompiledExpression] = None
        self.segments: List[Union[str, CompiledExpression]] = []
        expressions = scan_expressions(source)
        if not expressions:
            self.kind = "plain"
            self.literal = source.replace("\\$", "$")
            return
        only = expressions[0]
        if len(expressions) == 1 and only.start == 0 and only.end == len(source.strip()) \
                and source.strip() == source:
            self.kind = "single"
            self.single = CompiledExpression(only, js_enabled)
            return
        self.kind = "interpolate"
        cursor = 0
        for expression in expressions:
            self.segments.append(source[cursor:expression.start].replace("\\$", "$"))
            self.segments.append(CompiledExpression(expression, js_enabled))
            cursor = expression.end
        self.segments.append(source[cursor:].replace("\\$", "$"))

    def evaluate(self, context: Dict[str, Any], scope: LibraryScope) -> Any:
        if self.kind == "plain":
            return self.literal
        if self.kind == "single":
            return self.single.evaluate(context, scope)
        pieces: List[str] = []
        for segment in self.segments:
            if isinstance(segment, str):
                pieces.append(segment)
            else:
                pieces.append(_stringify(segment.evaluate(context, scope)))
        return "".join(pieces)


# ------------------------------------------------------------------ LRU cache


class _CompileCache:
    """Thread-safe bounded LRU of compiled templates, with hit/miss counters."""

    def __init__(self, maxsize: int = 2048) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[str, bool, str], CompiledTemplate]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get_or_compile(self, source: str, js_enabled: bool, fingerprint: str) -> CompiledTemplate:
        key = (source, js_enabled, fingerprint)
        with self._lock:
            template = self._entries.get(key)
            if template is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return template
            self.misses += 1
        # Compile outside the lock; duplicate compilations are harmless.
        template = CompiledTemplate(source, js_enabled)
        with self._lock:
            self._entries[key] = template
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return template

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "size": len(self._entries), "maxsize": self.maxsize}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


_TEMPLATE_CACHE = _CompileCache()


def compile_template(source: str, js_enabled: bool = True,
                     fingerprint: str = "") -> CompiledTemplate:
    """Compile ``source`` through the process-wide cache.

    ``fingerprint`` is the library content hash; a changed ``expressionLib``
    therefore misses the cache and recompiles against the new library.
    """
    return _TEMPLATE_CACHE.get_or_compile(source, js_enabled, fingerprint)


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the global template cache."""
    return _TEMPLATE_CACHE.stats()


def clear_compile_cache() -> None:
    """Empty the global template cache (tests and benchmarks)."""
    _TEMPLATE_CACHE.clear()


# ------------------------------------------------------------------ evaluator


class CompiledEvaluator:
    """Drop-in :class:`ExpressionEvaluator` replacement backed by the compiler.

    Same public contract — ``evaluate`` / ``evaluate_structure`` with identical
    value semantics and error messages — but every string is compiled once
    (through the global LRU) and evaluated via the shared
    :class:`LibraryScope`, so neither the standard library nor the
    ``expressionLib`` is ever re-parsed.  Instances are cheap: evaluators with
    byte-identical libraries share one scope.

    Thread-safe: the scope binds each evaluation's context in a per-thread
    activation frame, so parallel scatter jobs can share one evaluator.
    """

    def __init__(self, expression_lib: Optional[Sequence[str]] = None,
                 js_enabled: bool = True,
                 scope: Optional[LibraryScope] = None) -> None:
        self.expression_lib = list(expression_lib or [])
        self.js_enabled = js_enabled
        self.scope = scope if scope is not None else shared_library_scope(self.expression_lib)
        #: Interface parity with ``ExpressionEvaluator``: the library scope is
        #: built (at most) once per library content, not per evaluation.
        self.engine_builds = 1
        #: Templates pinned by :meth:`compile` — immune to LRU eviction.
        self._pinned: Dict[str, CompiledTemplate] = {}

    # ------------------------------------------------------------------ public

    def compile(self, source: str) -> CompiledTemplate:
        """Compile ``source`` and pin the template for this evaluator's lifetime."""
        template = self._pinned.get(source)
        if template is None:
            template = compile_template(source, self.js_enabled, self.scope.fingerprint)
            self._pinned[source] = template
        return template

    def evaluate(self, value: Any, context: Dict[str, Any]) -> Any:
        """Evaluate ``value`` against ``context`` (non-strings pass through)."""
        if not isinstance(value, str):
            return value
        template = self._pinned.get(value)
        if template is None:
            template = compile_template(value, self.js_enabled, self.scope.fingerprint)
        return template.evaluate(context, self.scope)

    def evaluate_structure(self, value: Any, context: Dict[str, Any]) -> Any:
        """Recursively evaluate expressions inside lists and dictionaries."""
        if isinstance(value, str):
            return self.evaluate(value, context)
        if isinstance(value, list):
            return [self.evaluate_structure(item, context) for item in value]
        if isinstance(value, dict):
            return {key: self.evaluate_structure(item, context) for key, item in value.items()}
        return value


# --------------------------------------------------------- precompiled process


class ProcessCompilation:
    """The result of :func:`precompile_process`, attached to the process."""

    __slots__ = ("evaluator", "fingerprint", "expression_count", "skipped")

    def __init__(self, evaluator: CompiledEvaluator) -> None:
        self.evaluator = evaluator
        self.fingerprint = evaluator.scope.fingerprint
        #: Number of expression-bearing strings successfully precompiled.
        self.expression_count = 0
        #: Strings that failed to compile (left for evaluation-time handling —
        #: e.g. InlinePython f-string arguments that are not JavaScript).
        self.skipped = 0


def _expression_lib_of(process: Any) -> List[str]:
    js_req = process.get_requirement("InlineJavascriptRequirement")
    return list(js_req.get("expressionLib", [])) if js_req else []


def iter_expression_sources(process: Any) -> Iterator[str]:
    """Yield every string in ``process`` that may contain expressions."""
    from repro.cwl.schema import CommandLineTool, ExpressionTool, Workflow

    if isinstance(process, CommandLineTool):
        for argument in process.arguments:
            if isinstance(argument, str):
                yield argument
            elif argument.value_from is not None:
                yield argument.value_from
        for param in process.inputs:
            binding = param.input_binding
            if binding is None:
                continue
            if isinstance(binding.position, str):
                yield binding.position
            if binding.value_from is not None:
                yield binding.value_from
        for redirection in (process.stdin, process.stdout, process.stderr):
            if redirection:
                yield redirection
        for param in process.outputs:
            binding = param.output_binding
            if binding is None:
                continue
            if binding.glob is not None:
                patterns = binding.glob if isinstance(binding.glob, list) else [binding.glob]
                for pattern in patterns:
                    if isinstance(pattern, str):
                        yield pattern
            if binding.output_eval is not None:
                yield binding.output_eval
        env_req = process.get_requirement("EnvVarRequirement")
        if env_req:
            env_def = env_req.get("envDef", {})
            if isinstance(env_def, list):
                for entry in env_def:
                    if isinstance(entry.get("envValue"), str):
                        yield entry["envValue"]
            elif isinstance(env_def, dict):
                for value in env_def.values():
                    if isinstance(value, str):
                        yield value
    elif isinstance(process, ExpressionTool):
        yield process.expression
    elif isinstance(process, Workflow):
        for step in process.steps:
            if step.when is not None:
                yield step.when
            for step_input in step.in_:
                if step_input.value_from is not None:
                    yield step_input.value_from


def precompile_process(process: Any, recurse: bool = True) -> ProcessCompilation:
    """Walk a loaded document and compile every expression it contains.

    Runs at validate time; the compilation is memoized on the process object
    (``process.compiled``), so repeated runs — and every job of a scatter —
    reuse the same pinned templates and shared library scope.  Workflow steps
    recurse into their embedded sub-processes, each compiled against its own
    ``expressionLib``.
    """
    from repro.cwl.schema import Workflow

    existing = getattr(process, "compiled", None)
    if isinstance(existing, ProcessCompilation):
        return existing

    compilation = ProcessCompilation(CompiledEvaluator(
        expression_lib=_expression_lib_of(process), js_enabled=True))
    for source in iter_expression_sources(process):
        try:
            compilation.evaluator.compile(source)
            compilation.expression_count += 1
        except (ExpressionError, JavaScriptError):
            compilation.skipped += 1
    process.compiled = compilation

    if recurse and isinstance(process, Workflow):
        from repro.cwl.schema import Process

        for step in process.steps:
            embedded = step.embedded_process
            if embedded is None and isinstance(step.run, Process):
                embedded = step.run
            if embedded is not None:
                precompile_process(embedded, recurse=recurse)
    return compilation
