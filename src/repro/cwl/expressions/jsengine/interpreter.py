"""Tree-walking interpreter for the mini-JavaScript engine.

Values map onto Python values: JS strings/numbers/booleans become ``str`` /
``int`` / ``float`` / ``bool``; ``null`` and ``undefined`` both become ``None``;
arrays become ``list``; objects become ``dict``.  A small standard library is
provided (``Math``, ``JSON``, ``parseInt``, string and array methods) covering
what CWL expressions typically use.

This tree-walker is one of two execution backends:

* **Fidelity mode** (this class, used by the cwltool-like reference runner by
  default): a fresh engine is built per evaluation, re-parsing the expression
  library every time — exactly the per-expression overhead the paper's
  Figure 2 attributes to JavaScript expression handling in existing runners.
* **Compiled mode** (:mod:`repro.cwl.expressions.jsengine.closures`, the
  default for the toil/parsl engines): ASTs are closure-compiled once and the
  expression library lives in an immutable shared
  :class:`~repro.cwl.expressions.jsengine.closures.LibraryScope`; only a cheap
  activation frame is created per evaluation.

Both backends share the coercion/truthiness helpers defined here, so their
results are identical — only the cost model differs.
"""

from __future__ import annotations

import json
import math
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.cwl.errors import JavaScriptError
from repro.cwl.expressions.jsengine import ast_nodes as ast
from repro.cwl.expressions.jsengine.parser import parse_expression, parse_program


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class JSThrownError(JavaScriptError):
    """A ``throw`` statement executed inside evaluated JavaScript."""


class Environment:
    """A lexical scope chain."""

    def __init__(self, parent: Optional["Environment"] = None,
                 variables: Optional[Dict[str, Any]] = None) -> None:
        self.parent = parent
        self.variables: Dict[str, Any] = dict(variables or {})

    def lookup(self, name: str) -> Any:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.variables:
                return env.variables[name]
            env = env.parent
        raise JavaScriptError(f"reference to undefined variable {name!r}")

    def has(self, name: str) -> bool:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.variables:
                return True
            env = env.parent
        return False

    def declare(self, name: str, value: Any) -> None:
        self.variables[name] = value

    def assign(self, name: str, value: Any) -> None:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.variables:
                env.variables[name] = value
                return
            env = env.parent
        # Implicit global declaration (sloppy-mode JS).
        self.variables[name] = value


class JSFunction:
    """A user-defined function closing over its defining environment."""

    def __init__(self, node: ast.FunctionExpression, closure: Environment,
                 engine: "JSEngine") -> None:
        self.node = node
        self.closure = closure
        self.engine = engine

    def __call__(self, *args: Any) -> Any:
        local = Environment(parent=self.closure)
        for index, param in enumerate(self.node.params):
            local.declare(param, args[index] if index < len(args) else None)
        local.declare("arguments", list(args))
        if self.node.expression_body is not None:
            return self.engine.evaluate_node(self.node.expression_body, local)
        try:
            self.engine.execute_block(self.node.body, local)
        except _ReturnSignal as signal:
            return signal.value
        return None


def _js_truthy(value: Any) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0 and not (isinstance(value, float) and math.isnan(value))
    if isinstance(value, str):
        return len(value) > 0
    return True


def _js_typeof(value: Any) -> str:
    if value is None:
        return "undefined"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if callable(value):
        return "function"
    return "object"


def _to_number(value: Any) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if value is None:
        return 0.0
    if isinstance(value, str):
        try:
            return float(value.strip() or 0)
        except ValueError:
            return float("nan")
    return float("nan")


def _js_string(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if isinstance(value, (dict, list)):
        return json.dumps(value)
    return str(value)


def _maybe_int(value: float) -> Any:
    """Collapse floats with no fractional part back to int (JS has one number type)."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return int(value)
    return value


# ----------------------------------------------------------- builtin methods
#
# Single source of truth for string/array/object builtin methods, shared by
# both execution backends.  Entries are *value-first* functions
# (``STRING_METHODS["charAt"](value, index)``): the closure backend dispatches
# them directly with no per-access allocation, while this tree-walker binds
# them into a fresh dictionary per member access — faithfully keeping the
# per-evaluation allocation cost model Figure 2 measures.


def _array_push(value: list, *items: Any) -> int:
    value.extend(items)
    return len(value)


def _array_reverse(value: list) -> list:
    value.reverse()
    return value


def _array_sort(value: list) -> list:
    value.sort(key=_js_string)
    return value


def _array_for_each(value: list, fn: Callable) -> None:
    for item in value:
        fn(item)
    return None


def _array_join(value: list, sep: str = ",") -> str:
    try:
        return sep.join(value)  # all-string arrays: no per-item coercion
    except TypeError:
        return sep.join(_js_string(item) for item in value)


def _number_to_fixed(value: Any, digits: Any = 0) -> str:
    return f"{float(value):.{int(digits)}f}"


STRING_METHODS: Dict[str, Callable[..., Any]] = {
    "toUpperCase": lambda v: v.upper(),
    "toLowerCase": lambda v: v.lower(),
    "trim": lambda v: v.strip(),
    "split": lambda v, sep=None, limit=None: (
        list(v) if sep == "" else (v.split() if sep is None else v.split(sep))
    )[: int(limit) if limit is not None else None],
    "replace": lambda v, old, new: v.replace(old, new, 1),
    "replaceAll": lambda v, old, new: v.replace(old, new),
    "substring": lambda v, start, end=None: v[int(max(0, start)): int(end) if end is not None else None],
    "slice": lambda v, start=0, end=None: v[int(start): int(end) if end is not None else None],
    "charAt": lambda v, index=0: v[int(index)] if 0 <= int(index) < len(v) else "",
    "charCodeAt": lambda v, index=0: ord(v[int(index)]) if 0 <= int(index) < len(v) else float("nan"),
    "indexOf": lambda v, needle, start=0: v.find(needle, int(start)),
    "lastIndexOf": lambda v, needle: v.rfind(needle),
    "includes": lambda v, needle: needle in v,
    "startsWith": lambda v, needle: v.startswith(needle),
    "endsWith": lambda v, needle: v.endswith(needle),
    "concat": lambda v, *others: v + "".join(_js_string(o) for o in others),
    "repeat": lambda v, count: v * int(count),
    "padStart": lambda v, width, fill=" ": v.rjust(int(width), str(fill)[:1] or " "),
    "padEnd": lambda v, width, fill=" ": v.ljust(int(width), str(fill)[:1] or " "),
    "toString": lambda v: v,
}

ARRAY_METHODS: Dict[str, Callable[..., Any]] = {
    "join": _array_join,
    "indexOf": lambda v, needle: v.index(needle) if needle in v else -1,
    "includes": lambda v, needle: needle in v,
    "slice": lambda v, start=0, end=None: v[int(start): int(end) if end is not None else None],
    "concat": lambda v, *others: v + [item for other in others
                                      for item in (other if isinstance(other, list) else [other])],
    "push": _array_push,
    "pop": lambda v: v.pop() if v else None,
    "reverse": _array_reverse,
    "sort": _array_sort,
    "map": lambda v, fn: [fn(item) for item in v],
    "filter": lambda v, fn: [item for item in v if _js_truthy(fn(item))],
    "forEach": _array_for_each,
    "reduce": lambda v, fn, initial=None: JSEngine._reduce(v, fn, initial),
    "some": lambda v, fn: any(_js_truthy(fn(item)) for item in v),
    "every": lambda v, fn: all(_js_truthy(fn(item)) for item in v),
    "flat": lambda v: [item for sub in v
                       for item in (sub if isinstance(sub, list) else [sub])],
    "toString": lambda v: ",".join(_js_string(item) for item in v),
}

OBJECT_METHODS: Dict[str, Callable[..., Any]] = {
    "hasOwnProperty": lambda v, key: key in v,
    "toString": lambda v: json.dumps(v),
}


class JSEngine:
    """Evaluate expressions and statement bodies against a global context."""

    def __init__(self, context: Optional[Dict[str, Any]] = None,
                 expression_lib: Optional[Sequence[str]] = None) -> None:
        self.globals = Environment(variables=self._standard_library())
        for name, value in (context or {}).items():
            self.globals.declare(name, value)
        # The expressionLib entries run once, populating the global scope with
        # the helper functions they define.
        for source in expression_lib or []:
            self.run_statements(source, self.globals)

    # -------------------------------------------------------------- public API

    def evaluate(self, source: str) -> Any:
        """Evaluate a single expression and return its value."""
        node = parse_expression(source)
        return self.evaluate_node(node, self.globals)

    def run_function_body(self, source: str) -> Any:
        """Run a ``${ ... }`` body: statements with an expected ``return``."""
        program = parse_program(source)
        local = Environment(parent=self.globals)
        try:
            self.execute_block(list(program.body), local)
        except _ReturnSignal as signal:
            return signal.value
        return None

    def run_statements(self, source: str, env: Optional[Environment] = None) -> None:
        program = parse_program(source)
        self.execute_block(list(program.body), env or self.globals)

    # --------------------------------------------------------------- execution

    def execute_block(self, statements: List[ast.Node], env: Environment) -> None:
        for statement in statements:
            self.execute_statement(statement, env)

    def execute_statement(self, node: ast.Node, env: Environment) -> None:
        if isinstance(node, ast.ExpressionStatement):
            self.evaluate_node(node.expression, env)
        elif isinstance(node, ast.VariableDeclaration):
            for name, init in node.declarations:
                value = self.evaluate_node(init, env) if init is not None else None
                env.declare(name, value)
        elif isinstance(node, ast.ReturnStatement):
            value = self.evaluate_node(node.argument, env) if node.argument is not None else None
            raise _ReturnSignal(value)
        elif isinstance(node, ast.IfStatement):
            if _js_truthy(self.evaluate_node(node.test, env)):
                self.execute_block(node.consequent, Environment(parent=env))
            elif node.alternate is not None:
                self.execute_block(node.alternate, Environment(parent=env))
        elif isinstance(node, ast.ForStatement):
            loop_env = Environment(parent=env)
            if node.init is not None:
                self.execute_statement(node.init, loop_env)
            iterations = 0
            while node.test is None or _js_truthy(self.evaluate_node(node.test, loop_env)):
                try:
                    self.execute_block(node.body, Environment(parent=loop_env))
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if node.update is not None:
                    self.evaluate_node(node.update, loop_env)
                iterations += 1
                if iterations > 1_000_000:
                    raise JavaScriptError("for-loop exceeded 1,000,000 iterations")
        elif isinstance(node, ast.ForOfStatement):
            iterable = self.evaluate_node(node.iterable, env)
            if isinstance(iterable, dict):
                values = list(iterable.values()) if node.of else list(iterable.keys())
            elif isinstance(iterable, str):
                values = list(iterable) if node.of else [str(i) for i in range(len(iterable))]
            elif isinstance(iterable, list):
                values = list(iterable) if node.of else [str(i) for i in range(len(iterable))]
            else:
                raise JavaScriptError(f"value of type {type(iterable).__name__} is not iterable")
            for value in values:
                loop_env = Environment(parent=env)
                loop_env.declare(node.variable, value)
                try:
                    self.execute_block(node.body, loop_env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(node, ast.WhileStatement):
            iterations = 0
            while _js_truthy(self.evaluate_node(node.test, env)):
                try:
                    self.execute_block(node.body, Environment(parent=env))
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                iterations += 1
                if iterations > 1_000_000:
                    raise JavaScriptError("while-loop exceeded 1,000,000 iterations")
        elif isinstance(node, ast.ThrowStatement):
            value = self.evaluate_node(node.argument, env)
            raise JSThrownError(_js_string(value))
        elif isinstance(node, ast.BreakStatement):
            raise _BreakSignal()
        elif isinstance(node, ast.ContinueStatement):
            raise _ContinueSignal()
        elif isinstance(node, ast.Program):
            self.execute_block(list(node.body), Environment(parent=env))
        else:
            # Bare expressions used in statement position.
            self.evaluate_node(node, env)

    # -------------------------------------------------------------- evaluation

    def evaluate_node(self, node: ast.Node, env: Environment) -> Any:
        if isinstance(node, ast.Literal):
            return node.value
        if isinstance(node, ast.Identifier):
            return env.lookup(node.name)
        if isinstance(node, ast.ArrayLiteral):
            return [self.evaluate_node(el, env) for el in node.elements]
        if isinstance(node, ast.ObjectLiteral):
            return {key: self.evaluate_node(value, env) for key, value in node.entries}
        if isinstance(node, ast.UnaryOp):
            return self._unary(node, env)
        if isinstance(node, ast.BinaryOp):
            return self._binary(node, env)
        if isinstance(node, ast.Conditional):
            if _js_truthy(self.evaluate_node(node.test, env)):
                return self.evaluate_node(node.consequent, env)
            return self.evaluate_node(node.alternate, env)
        if isinstance(node, ast.Member):
            return self._member(self.evaluate_node(node.obj, env), node.prop)
        if isinstance(node, ast.Index):
            return self._index(self.evaluate_node(node.obj, env),
                               self.evaluate_node(node.index, env))
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.FunctionExpression):
            return JSFunction(node, env, self)
        if isinstance(node, ast.Assignment):
            return self._assignment(node, env)
        if isinstance(node, ast.UpdateExpression):
            return self._update(node, env)
        raise JavaScriptError(f"cannot evaluate AST node {type(node).__name__}")

    # ------------------------------------------------------------- operations

    def _unary(self, node: ast.UnaryOp, env: Environment) -> Any:
        if node.operator == "typeof":
            try:
                value = self.evaluate_node(node.operand, env)
            except JavaScriptError:
                return "undefined"
            return _js_typeof(value)
        value = self.evaluate_node(node.operand, env)
        if node.operator == "!":
            return not _js_truthy(value)
        if node.operator == "-":
            return _maybe_int(-_to_number(value))
        if node.operator == "+":
            return _maybe_int(_to_number(value))
        raise JavaScriptError(f"unsupported unary operator {node.operator!r}")

    def _binary(self, node: ast.BinaryOp, env: Environment) -> Any:
        operator = node.operator
        if operator == "&&":
            left = self.evaluate_node(node.left, env)
            return self.evaluate_node(node.right, env) if _js_truthy(left) else left
        if operator == "||":
            left = self.evaluate_node(node.left, env)
            return left if _js_truthy(left) else self.evaluate_node(node.right, env)

        left = self.evaluate_node(node.left, env)
        right = self.evaluate_node(node.right, env)

        if operator == "+":
            if isinstance(left, str) or isinstance(right, str):
                return _js_string(left) + _js_string(right)
            if isinstance(left, list) and isinstance(right, list):
                return left + right
            return _maybe_int(_to_number(left) + _to_number(right))
        if operator == "-":
            return _maybe_int(_to_number(left) - _to_number(right))
        if operator == "*":
            return _maybe_int(_to_number(left) * _to_number(right))
        if operator == "/":
            denominator = _to_number(right)
            if denominator == 0:
                return float("inf") if _to_number(left) > 0 else float("-inf") if _to_number(left) < 0 else float("nan")
            return _maybe_int(_to_number(left) / denominator)
        if operator == "%":
            denominator = _to_number(right)
            if denominator == 0:
                return float("nan")
            return _maybe_int(math.fmod(_to_number(left), denominator))
        if operator in ("==", "==="):
            return self._equals(left, right, strict=(operator == "==="))
        if operator in ("!=", "!=="):
            return not self._equals(left, right, strict=(operator == "!=="))
        if operator in ("<", ">", "<=", ">="):
            if isinstance(left, str) and isinstance(right, str):
                a, b = left, right
            else:
                a, b = _to_number(left), _to_number(right)
            return {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b}[operator]
        if operator == "in":
            if isinstance(right, dict):
                return left in right
            if isinstance(right, list):
                return isinstance(left, int) and 0 <= left < len(right)
            raise JavaScriptError("'in' requires an object or array on the right")
        raise JavaScriptError(f"unsupported binary operator {operator!r}")

    @staticmethod
    def _equals(left: Any, right: Any, strict: bool) -> bool:
        if strict:
            if type(left) is bool or type(right) is bool:
                return left is right if isinstance(left, bool) and isinstance(right, bool) else False
            if isinstance(left, (int, float)) and isinstance(right, (int, float)):
                return float(left) == float(right)
            return type(left) is type(right) and left == right
        # Loose equality: numeric coercion for mixed number/string, null == undefined.
        if left is None and right is None:
            return True
        if isinstance(left, (int, float)) and isinstance(right, str):
            return float(left) == _to_number(right)
        if isinstance(left, str) and isinstance(right, (int, float)):
            return _to_number(left) == float(right)
        return left == right

    def _member(self, obj: Any, prop: str) -> Any:
        # length works on strings, arrays and objects.
        if prop == "length":
            if isinstance(obj, (str, list)):
                return len(obj)
            if isinstance(obj, dict):
                return len(obj)
        if isinstance(obj, dict):
            if prop in obj:
                return obj[prop]
            method = self._object_method(obj, prop)
            if method is not None:
                return method
            return None
        if isinstance(obj, str):
            method = self._string_method(obj, prop)
            if method is not None:
                return method
            return None
        if isinstance(obj, list):
            method = self._array_method(obj, prop)
            if method is not None:
                return method
            return None
        if isinstance(obj, (int, float)):
            if prop == "toFixed":
                return lambda digits=0: f"{float(obj):.{int(digits)}f}"
            if prop == "toString":
                return lambda: _js_string(obj)
            return None
        if obj is None:
            raise JavaScriptError(f"cannot read property {prop!r} of null/undefined")
        # Fall back to Python attribute access for host objects.
        if hasattr(obj, prop):
            return getattr(obj, prop)
        return None

    def _index(self, obj: Any, index: Any) -> Any:
        if isinstance(obj, dict):
            return obj.get(index)
        if isinstance(obj, (list, str)):
            if not isinstance(index, (int, float)):
                raise JavaScriptError(f"array index must be a number, got {index!r}")
            i = int(index)
            if 0 <= i < len(obj):
                return obj[i]
            return None
        if obj is None:
            raise JavaScriptError("cannot index null/undefined")
        raise JavaScriptError(f"cannot index value of type {type(obj).__name__}")

    def _call(self, node: ast.Call, env: Environment) -> Any:
        args = [self.evaluate_node(arg, env) for arg in node.args]
        callee = self.evaluate_node(node.callee, env)
        if callee is None:
            raise JavaScriptError("attempted to call null/undefined")
        if not callable(callee):
            raise JavaScriptError(f"value of type {type(callee).__name__} is not callable")
        return callee(*args)

    def _assignment(self, node: ast.Assignment, env: Environment) -> Any:
        value = self.evaluate_node(node.value, env)
        if node.operator != "=":
            current = self.evaluate_node(node.target, env)
            operator = node.operator[0]
            value = self._binary(ast.BinaryOp(operator, ast.Literal(current), ast.Literal(value)), env)
        if isinstance(node.target, ast.Identifier):
            env.assign(node.target.name, value)
        elif isinstance(node.target, ast.Member):
            container = self.evaluate_node(node.target.obj, env)
            if not isinstance(container, dict):
                raise JavaScriptError("can only assign properties on objects")
            container[node.target.prop] = value
        elif isinstance(node.target, ast.Index):
            container = self.evaluate_node(node.target.obj, env)
            key = self.evaluate_node(node.target.index, env)
            if isinstance(container, list):
                index = int(key)
                while len(container) <= index:
                    container.append(None)
                container[index] = value
            elif isinstance(container, dict):
                container[key] = value
            else:
                raise JavaScriptError("invalid assignment target")
        return value

    def _update(self, node: ast.UpdateExpression, env: Environment) -> Any:
        current = _to_number(env.lookup(node.target.name))
        updated = current + 1 if node.operator == "++" else current - 1
        env.assign(node.target.name, _maybe_int(updated))
        return _maybe_int(updated if node.prefix else current)

    # ---------------------------------------------------------- standard library

    # The three lookups below rebuild a dictionary of bound methods on *every*
    # member access — deliberately (Figure 2's per-evaluation cost model).
    # The method implementations themselves live in the shared value-first
    # tables above, so both backends stay semantically identical by
    # construction.

    @staticmethod
    def _string_method(value: str, prop: str) -> Optional[Callable]:
        methods: Dict[str, Callable] = {name: partial(fn, value)
                                        for name, fn in STRING_METHODS.items()}
        return methods.get(prop)

    def _array_method(self, value: list, prop: str) -> Optional[Callable]:
        methods: Dict[str, Callable] = {name: partial(fn, value)
                                        for name, fn in ARRAY_METHODS.items()}
        return methods.get(prop)

    @staticmethod
    def _object_method(value: dict, prop: str) -> Optional[Callable]:
        methods: Dict[str, Callable] = {name: partial(fn, value)
                                        for name, fn in OBJECT_METHODS.items()}
        return methods.get(prop)

    @staticmethod
    def _reduce(items: list, fn: Callable, initial: Any = None) -> Any:
        iterator = iter(items)
        accumulator = initial
        if accumulator is None:
            try:
                accumulator = next(iterator)
            except StopIteration:
                raise JavaScriptError("reduce of empty array with no initial value") from None
        for item in iterator:
            accumulator = fn(accumulator, item)
        return accumulator

    @staticmethod
    def _standard_library() -> Dict[str, Any]:
        def _parse_int(text: Any, base: Any = 10) -> Any:
            try:
                return int(str(text).strip(), int(base))
            except ValueError:
                return float("nan")

        def _parse_float(text: Any) -> Any:
            try:
                return float(str(text).strip())
            except ValueError:
                return float("nan")

        return {
            "Math": {
                "floor": lambda x: int(math.floor(_to_number(x))),
                "ceil": lambda x: int(math.ceil(_to_number(x))),
                "round": lambda x: int(math.floor(_to_number(x) + 0.5)),
                "abs": lambda x: _maybe_int(abs(_to_number(x))),
                "min": lambda *xs: _maybe_int(min(_to_number(x) for x in xs)),
                "max": lambda *xs: _maybe_int(max(_to_number(x) for x in xs)),
                "pow": lambda a, b: _maybe_int(_to_number(a) ** _to_number(b)),
                "sqrt": lambda x: _maybe_int(math.sqrt(_to_number(x))),
                "log": lambda x: math.log(_to_number(x)),
                "PI": math.pi,
                "E": math.e,
            },
            "JSON": {
                "stringify": lambda value, *_: json.dumps(value),
                "parse": lambda text: json.loads(text),
            },
            "Object": {
                "keys": lambda obj: list(obj.keys()) if isinstance(obj, dict) else [],
                "values": lambda obj: list(obj.values()) if isinstance(obj, dict) else [],
                "entries": lambda obj: [[k, v] for k, v in obj.items()] if isinstance(obj, dict) else [],
                "assign": lambda target, *sources: (
                    [target.update(s) for s in sources if isinstance(s, dict)], target)[1],
            },
            "Array": {"isArray": lambda value: isinstance(value, list)},
            "String": lambda value=None: _js_string(value) if value is not None else "",
            "Number": lambda value=None: _maybe_int(_to_number(value)) if value is not None else 0,
            "Boolean": lambda value=None: _js_truthy(value),
            "parseInt": _parse_int,
            "parseFloat": _parse_float,
            "isNaN": lambda value: isinstance(_to_number(value), float) and math.isnan(_to_number(value)),
            "Error": lambda message="": {"name": "Error", "message": _js_string(message)},
            "NaN": float("nan"),
            "Infinity": float("inf"),
            "console": {"log": lambda *args: None},
        }


def evaluate_expression(source: str, context: Optional[Dict[str, Any]] = None,
                        expression_lib: Optional[Sequence[str]] = None) -> Any:
    """One-shot convenience wrapper: build an engine, evaluate, return the value."""
    return JSEngine(context=context, expression_lib=expression_lib).evaluate(source)
