"""Recursive-descent parser for the mini-JavaScript engine.

Grammar (roughly, highest precedence last):

    program        := statement*
    statement      := var-decl | return | if | for | while | throw | break |
                      continue | block | expression-statement
    expression     := assignment
    assignment     := conditional (('=' | '+=' | ...) assignment)?
    conditional    := logical-or ('?' assignment ':' assignment)?
    logical-or     := logical-and ('||' logical-and)*
    logical-and    := equality ('&&' equality)*
    equality       := relational (('==' | '!=' | '===' | '!==') relational)*
    relational     := additive (('<' | '>' | '<=' | '>=') additive)*
    additive       := multiplicative (('+' | '-') multiplicative)*
    multiplicative := unary (('*' | '/' | '%') unary)*
    unary          := ('!' | '-' | '+' | 'typeof' | '++' | '--') unary | postfix
    postfix        := primary (call | member | index | '++' | '--')*
    primary        := literal | identifier | '(' expression ')' | array | object |
                      function-expression | arrow-function
"""

from __future__ import annotations

from typing import List, Optional

from repro.cwl.errors import JavaScriptError
from repro.cwl.expressions.jsengine import ast_nodes as ast
from repro.cwl.expressions.jsengine.tokenizer import Token, tokenize

_ASSIGNMENT_OPS = {"=", "+=", "-=", "*=", "/=", "%="}


class Parser:
    """Parse a token stream into an AST."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens: List[Token] = tokenize(source)
        self.position = 0

    # ------------------------------------------------------------- utilities

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def match(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.check(kind, value):
            token = self.peek()
            raise JavaScriptError(
                f"expected {value or kind} but found {token.value!r} at position {token.position} "
                f"in {self.source!r}"
            )
        return self.advance()

    # --------------------------------------------------------------- programs

    def parse_program(self) -> ast.Program:
        body: List[ast.Node] = []
        while not self.check("eof"):
            body.append(self.parse_statement())
        return ast.Program(body=body)

    def parse_expression_only(self) -> ast.Node:
        expr = self.parse_expression()
        # Tolerate a trailing semicolon in single-expression mode.
        self.match("punct", ";")
        if not self.check("eof"):
            token = self.peek()
            raise JavaScriptError(
                f"unexpected trailing content {token.value!r} at position {token.position}"
            )
        return expr

    # -------------------------------------------------------------- statements

    def parse_statement(self) -> ast.Node:
        token = self.peek()
        if token.kind == "keyword":
            if token.value in ("var", "let", "const"):
                return self.parse_variable_declaration()
            if token.value == "return":
                return self.parse_return()
            if token.value == "if":
                return self.parse_if()
            if token.value == "for":
                return self.parse_for()
            if token.value == "while":
                return self.parse_while()
            if token.value == "throw":
                self.advance()
                argument = self.parse_expression()
                self.match("punct", ";")
                return ast.ThrowStatement(argument)
            if token.value == "break":
                self.advance()
                self.match("punct", ";")
                return ast.BreakStatement()
            if token.value == "continue":
                self.advance()
                self.match("punct", ";")
                return ast.ContinueStatement()
            if token.value == "function":
                # Function declaration: treated as "var name = function expr".
                func = self.parse_function_expression()
                return ast.VariableDeclaration("var", [(func.name or "<anonymous>", func)])
        if self.check("punct", "{"):
            return ast.Program(body=self.parse_block())
        expression = self.parse_expression()
        self.match("punct", ";")
        return ast.ExpressionStatement(expression)

    def parse_block(self) -> List[ast.Node]:
        self.expect("punct", "{")
        body: List[ast.Node] = []
        while not self.check("punct", "}"):
            if self.check("eof"):
                raise JavaScriptError("unterminated block")
            body.append(self.parse_statement())
        self.expect("punct", "}")
        return body

    def parse_statement_or_block(self) -> List[ast.Node]:
        if self.check("punct", "{"):
            return self.parse_block()
        return [self.parse_statement()]

    def parse_variable_declaration(self) -> ast.VariableDeclaration:
        kind = self.advance().value
        declarations = []
        while True:
            name = self.expect("identifier").value
            init: Optional[ast.Node] = None
            if self.match("punct", "="):
                init = self.parse_assignment()
            declarations.append((name, init))
            if not self.match("punct", ","):
                break
        self.match("punct", ";")
        return ast.VariableDeclaration(kind, declarations)

    def parse_return(self) -> ast.ReturnStatement:
        self.expect("keyword", "return")
        if self.check("punct", ";") or self.check("punct", "}") or self.check("eof"):
            self.match("punct", ";")
            return ast.ReturnStatement(None)
        argument = self.parse_expression()
        self.match("punct", ";")
        return ast.ReturnStatement(argument)

    def parse_if(self) -> ast.IfStatement:
        self.expect("keyword", "if")
        self.expect("punct", "(")
        test = self.parse_expression()
        self.expect("punct", ")")
        consequent = self.parse_statement_or_block()
        alternate: Optional[List[ast.Node]] = None
        if self.check("keyword", "else"):
            self.advance()
            if self.check("keyword", "if"):
                alternate = [self.parse_if()]
            else:
                alternate = self.parse_statement_or_block()
        return ast.IfStatement(test, consequent, alternate)

    def parse_for(self) -> ast.Node:
        self.expect("keyword", "for")
        self.expect("punct", "(")
        # for (var x of arr) / for (var x in obj)
        if self.peek().kind == "keyword" and self.peek().value in ("var", "let", "const") \
                and self.peek(2).kind == "keyword" and self.peek(2).value in ("of", "in"):
            self.advance()  # var/let/const
            variable = self.expect("identifier").value
            of_kind = self.advance().value  # of | in
            iterable = self.parse_expression()
            self.expect("punct", ")")
            body = self.parse_statement_or_block()
            return ast.ForOfStatement(variable, iterable, body, of=(of_kind == "of"))

        init: Optional[ast.Node] = None
        if not self.check("punct", ";"):
            if self.peek().kind == "keyword" and self.peek().value in ("var", "let", "const"):
                init = self.parse_variable_declaration()
            else:
                init = ast.ExpressionStatement(self.parse_expression())
                self.match("punct", ";")
        else:
            self.advance()
        test: Optional[ast.Node] = None
        if not self.check("punct", ";"):
            test = self.parse_expression()
        self.expect("punct", ";")
        update: Optional[ast.Node] = None
        if not self.check("punct", ")"):
            update = self.parse_expression()
        self.expect("punct", ")")
        body = self.parse_statement_or_block()
        return ast.ForStatement(init, test, update, body)

    def parse_while(self) -> ast.WhileStatement:
        self.expect("keyword", "while")
        self.expect("punct", "(")
        test = self.parse_expression()
        self.expect("punct", ")")
        body = self.parse_statement_or_block()
        return ast.WhileStatement(test, body)

    # ------------------------------------------------------------- expressions

    def parse_expression(self) -> ast.Node:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Node:
        left = self.parse_conditional()
        token = self.peek()
        if token.kind == "punct" and token.value in _ASSIGNMENT_OPS:
            if not isinstance(left, (ast.Identifier, ast.Member, ast.Index)):
                raise JavaScriptError(f"invalid assignment target at position {token.position}")
            operator = self.advance().value
            value = self.parse_assignment()
            return ast.Assignment(left, operator, value)
        return left

    def parse_conditional(self) -> ast.Node:
        test = self.parse_logical_or()
        if self.match("punct", "?"):
            consequent = self.parse_assignment()
            self.expect("punct", ":")
            alternate = self.parse_assignment()
            return ast.Conditional(test, consequent, alternate)
        return test

    def parse_logical_or(self) -> ast.Node:
        node = self.parse_logical_and()
        while self.check("punct", "||"):
            self.advance()
            node = ast.BinaryOp("||", node, self.parse_logical_and())
        return node

    def parse_logical_and(self) -> ast.Node:
        node = self.parse_equality()
        while self.check("punct", "&&"):
            self.advance()
            node = ast.BinaryOp("&&", node, self.parse_equality())
        return node

    def parse_equality(self) -> ast.Node:
        node = self.parse_relational()
        while self.peek().kind == "punct" and self.peek().value in ("==", "!=", "===", "!=="):
            operator = self.advance().value
            node = ast.BinaryOp(operator, node, self.parse_relational())
        return node

    def parse_relational(self) -> ast.Node:
        node = self.parse_additive()
        while (self.peek().kind == "punct" and self.peek().value in ("<", ">", "<=", ">=")) or \
                (self.peek().kind == "keyword" and self.peek().value == "in"):
            operator = self.advance().value
            node = ast.BinaryOp(operator, node, self.parse_additive())
        return node

    def parse_additive(self) -> ast.Node:
        node = self.parse_multiplicative()
        while self.peek().kind == "punct" and self.peek().value in ("+", "-"):
            operator = self.advance().value
            node = ast.BinaryOp(operator, node, self.parse_multiplicative())
        return node

    def parse_multiplicative(self) -> ast.Node:
        node = self.parse_unary()
        while self.peek().kind == "punct" and self.peek().value in ("*", "/", "%"):
            operator = self.advance().value
            node = ast.BinaryOp(operator, node, self.parse_unary())
        return node

    def parse_unary(self) -> ast.Node:
        token = self.peek()
        if token.kind == "punct" and token.value in ("!", "-", "+"):
            self.advance()
            return ast.UnaryOp(token.value, self.parse_unary())
        if token.kind == "punct" and token.value in ("++", "--"):
            self.advance()
            target = self.parse_unary()
            if not isinstance(target, ast.Identifier):
                raise JavaScriptError("++/-- target must be a variable")
            return ast.UpdateExpression(target, token.value, prefix=True)
        if token.kind == "keyword" and token.value == "typeof":
            self.advance()
            return ast.UnaryOp("typeof", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Node:
        node = self.parse_primary()
        while True:
            if self.check("punct", "("):
                self.advance()
                args: List[ast.Node] = []
                while not self.check("punct", ")"):
                    args.append(self.parse_assignment())
                    if not self.match("punct", ","):
                        break
                self.expect("punct", ")")
                node = ast.Call(node, args)
            elif self.check("punct", "."):
                self.advance()
                prop = self.advance()
                if prop.kind not in ("identifier", "keyword"):
                    raise JavaScriptError(f"invalid property name {prop.value!r}")
                node = ast.Member(node, prop.value)
            elif self.check("punct", "["):
                self.advance()
                index = self.parse_expression()
                self.expect("punct", "]")
                node = ast.Index(node, index)
            elif self.check("punct", "++") or self.check("punct", "--"):
                operator = self.advance().value
                if not isinstance(node, ast.Identifier):
                    raise JavaScriptError("++/-- target must be a variable")
                node = ast.UpdateExpression(node, operator, prefix=False)
            else:
                return node

    def parse_primary(self) -> ast.Node:
        token = self.peek()

        if token.kind == "number":
            self.advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            return ast.Literal(value)
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "keyword":
            if token.value in ("true", "false"):
                self.advance()
                return ast.Literal(token.value == "true")
            if token.value in ("null", "undefined"):
                self.advance()
                return ast.Literal(None)
            if token.value == "function":
                return self.parse_function_expression()
            if token.value == "new":
                # 'new X(...)' — treated as a plain call, sufficient for Error/Array.
                self.advance()
                return self.parse_postfix()
        if token.kind == "identifier":
            # Arrow function with a single bare parameter: ``x => expr``
            if self.peek(1).kind == "punct" and self.peek(1).value == "=>":
                name = self.advance().value
                self.advance()  # '=>'
                return self._parse_arrow_tail([name])
            self.advance()
            return ast.Identifier(token.value)
        if token.kind == "punct" and token.value == "(":
            # Could be a parenthesised expression or an arrow-function parameter list.
            arrow = self._try_parse_parenthesised_arrow()
            if arrow is not None:
                return arrow
            self.expect("punct", "(")
            expr = self.parse_expression()
            self.expect("punct", ")")
            return expr
        if token.kind == "punct" and token.value == "[":
            self.advance()
            elements: List[ast.Node] = []
            while not self.check("punct", "]"):
                elements.append(self.parse_assignment())
                if not self.match("punct", ","):
                    break
            self.expect("punct", "]")
            return ast.ArrayLiteral(elements)
        if token.kind == "punct" and token.value == "{":
            self.advance()
            entries: List[tuple] = []
            while not self.check("punct", "}"):
                key_token = self.advance()
                if key_token.kind not in ("identifier", "string", "keyword", "number"):
                    raise JavaScriptError(f"invalid object key {key_token.value!r}")
                self.expect("punct", ":")
                entries.append((key_token.value, self.parse_assignment()))
                if not self.match("punct", ","):
                    break
            self.expect("punct", "}")
            return ast.ObjectLiteral(entries)

        raise JavaScriptError(
            f"unexpected token {token.value!r} ({token.kind}) at position {token.position} in {self.source!r}"
        )

    # --------------------------------------------------------------- functions

    def parse_function_expression(self) -> ast.FunctionExpression:
        self.expect("keyword", "function")
        name: Optional[str] = None
        if self.peek().kind == "identifier":
            name = self.advance().value
        self.expect("punct", "(")
        params: List[str] = []
        while not self.check("punct", ")"):
            params.append(self.expect("identifier").value)
            if not self.match("punct", ","):
                break
        self.expect("punct", ")")
        body = self.parse_block()
        return ast.FunctionExpression(params=params, body=body, name=name)

    def _try_parse_parenthesised_arrow(self) -> Optional[ast.FunctionExpression]:
        """Look ahead for ``(a, b) =>``; returns the arrow function or None."""
        saved = self.position
        try:
            self.expect("punct", "(")
            params: List[str] = []
            if not self.check("punct", ")"):
                while True:
                    token = self.peek()
                    if token.kind != "identifier":
                        raise JavaScriptError("not an arrow parameter list")
                    params.append(self.advance().value)
                    if not self.match("punct", ","):
                        break
            self.expect("punct", ")")
            if not self.check("punct", "=>"):
                raise JavaScriptError("not an arrow function")
            self.advance()
            return self._parse_arrow_tail(params)
        except JavaScriptError:
            self.position = saved
            return None

    def _parse_arrow_tail(self, params: List[str]) -> ast.FunctionExpression:
        if self.check("punct", "{"):
            body = self.parse_block()
            return ast.FunctionExpression(params=params, body=body, is_arrow=True)
        expression = self.parse_assignment()
        return ast.FunctionExpression(params=params, body=[], is_arrow=True,
                                      expression_body=expression)


def parse_expression(source: str) -> ast.Node:
    """Parse a single JavaScript expression."""
    return Parser(source).parse_expression_only()


def parse_program(source: str) -> ast.Program:
    """Parse a sequence of statements (an ``expressionLib`` entry or ``${...}`` body)."""
    return Parser(source).parse_program()
