"""Closure-compiling backend for the mini-JavaScript engine.

The tree-walking :class:`~repro.cwl.expressions.jsengine.interpreter.JSEngine`
pays an ``isinstance`` dispatch per AST node per execution and rebuilds a
dictionary of bound method lambdas on *every* member access — faithful to the
per-evaluation cost model of cwltool-style runners, but wasteful for a
long-lived engine that evaluates the same expressions thousands of times.

This module is the other half of the split:

* :func:`compile_expression_ast` / :func:`compile_program_ast` translate an AST
  **once** into nested Python closures (one callable per node), eliminating the
  per-execution dispatch.  Builtin string/array/object methods are dispatched
  through module-level tables of value-first functions, so ``word.charAt(0)``
  inside a hot loop no longer allocates a dictionary of twenty lambdas per
  access; method *calls* are fused (``obj.method(args)`` resolves and invokes
  in one step with no intermediate bound callable).
* :class:`LibraryScope` is the immutable, content-hashed compiled form of an
  ``expressionLib``: the standard library is built once, every library source
  is parsed and executed once, and the resulting scope is shared by all
  evaluations (and, via :func:`shared_library_scope`, by all evaluators with
  an identical library).  Each evaluation gets a cheap *activation frame* — a
  child :class:`Environment` plus a per-thread context overlay at the scope
  root, so library functions can still see ``inputs``/``self``/``runtime``
  exactly as they would in a freshly built engine.

Semantics intentionally mirror the interpreter bit-for-bit (the engine-parity
tests assert identical outputs); the shared truthiness/coercion helpers are
imported from it rather than re-implemented.

Two knowing deviations from fresh-engine behaviour, both limited to shared
scopes: an expression that *assigns* to a name defined by the expressionLib
mutates the shared scope (a fresh engine would re-parse the library next
time), and library-level mutable globals keep their values across
evaluations.  CWL expression libraries define helper functions, not mutable
state, so neither arises in practice.
"""

from __future__ import annotations

import hashlib
import math
import threading
from collections import ChainMap, OrderedDict
from contextlib import contextmanager
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.cwl.errors import JavaScriptError
from repro.cwl.expressions.jsengine import ast_nodes as ast
from repro.cwl.expressions.jsengine.interpreter import (
    ARRAY_METHODS as _ARRAY_METHODS,
    OBJECT_METHODS as _OBJECT_METHODS,
    STRING_METHODS as _STRING_METHODS,
    Environment,
    JSEngine,
    JSThrownError,
    _js_string,
    _js_truthy,
    _js_typeof,
    _maybe_int,
    _number_to_fixed,
    _to_number,
)
from repro.cwl.expressions.jsengine.parser import parse_program

__all__ = [
    "LibraryScope",
    "compile_expression_ast",
    "compile_program_ast",
    "shared_library_scope",
    "clear_scope_cache",
]

#: A compiled expression: callable taking the activation environment.
CompiledNode = Callable[[Environment], Any]


# --------------------------------------------------------------------- builtins
#
# The value-first method tables (``_STRING_METHODS["charAt"](value, index)``)
# are defined once in :mod:`interpreter` and shared by both backends.  Here
# the fused call path invokes entries directly with no per-access allocation;
# the plain member path binds them with ``partial``.


def _member_access(obj: Any, prop: str) -> Any:
    """Property access mirroring ``JSEngine._member`` (same order, same fallbacks)."""
    if prop == "length" and isinstance(obj, (str, list, dict)):
        return len(obj)
    if isinstance(obj, dict):
        if prop in obj:
            return obj[prop]
        method = _OBJECT_METHODS.get(prop)
        return partial(method, obj) if method is not None else None
    if isinstance(obj, str):
        method = _STRING_METHODS.get(prop)
        return partial(method, obj) if method is not None else None
    if isinstance(obj, list):
        method = _ARRAY_METHODS.get(prop)
        return partial(method, obj) if method is not None else None
    if isinstance(obj, (int, float)):
        if prop == "toFixed":
            return partial(_number_to_fixed, obj)
        if prop == "toString":
            return partial(_js_string, obj)
        return None
    if obj is None:
        raise JavaScriptError(f"cannot read property {prop!r} of null/undefined")
    if hasattr(obj, prop):
        return getattr(obj, prop)
    return None


def _index_access(obj: Any, index: Any) -> Any:
    if isinstance(obj, dict):
        return obj.get(index)
    if isinstance(obj, (list, str)):
        if not isinstance(index, (int, float)):
            raise JavaScriptError(f"array index must be a number, got {index!r}")
        i = int(index)
        if 0 <= i < len(obj):
            return obj[i]
        return None
    if obj is None:
        raise JavaScriptError("cannot index null/undefined")
    raise JavaScriptError(f"cannot index value of type {type(obj).__name__}")


def _call_value(callee: Any, args: List[Any]) -> Any:
    if callee is None:
        raise JavaScriptError("attempted to call null/undefined")
    if not callable(callee):
        raise JavaScriptError(f"value of type {type(callee).__name__} is not callable")
    return callee(*args)


def _call_method(obj: Any, prop: str, args: List[Any]) -> Any:
    """Fused ``obj.prop(args)``: direct table dispatch, no bound-callable alloc."""
    if isinstance(obj, str):
        method = _STRING_METHODS.get(prop)
        if method is not None:
            return method(obj, *args)
    elif isinstance(obj, list):
        method = _ARRAY_METHODS.get(prop)
        if method is not None:
            return method(obj, *args)
    elif isinstance(obj, dict):
        if prop not in obj and prop != "length":
            method = _OBJECT_METHODS.get(prop)
            if method is not None:
                return method(obj, *args)
    return _call_value(_member_access(obj, prop), args)


# ----------------------------------------------------------------- binary ops
#
# Value-level operator functions (strict evaluation); `&&` / `||` get their own
# lazy closures in the compiler.  Semantics copied from ``JSEngine._binary``.


def _bin_add(left: Any, right: Any) -> Any:
    if type(left) is str and type(right) is str:
        return left + right
    if isinstance(left, str) or isinstance(right, str):
        return _js_string(left) + _js_string(right)
    if isinstance(left, list) and isinstance(right, list):
        return left + right
    return _maybe_int(_to_number(left) + _to_number(right))


def _bin_sub(left: Any, right: Any) -> Any:
    return _maybe_int(_to_number(left) - _to_number(right))


def _bin_mul(left: Any, right: Any) -> Any:
    return _maybe_int(_to_number(left) * _to_number(right))


def _bin_div(left: Any, right: Any) -> Any:
    denominator = _to_number(right)
    if denominator == 0:
        numerator = _to_number(left)
        return float("inf") if numerator > 0 else float("-inf") if numerator < 0 else float("nan")
    return _maybe_int(_to_number(left) / denominator)


def _bin_mod(left: Any, right: Any) -> Any:
    denominator = _to_number(right)
    if denominator == 0:
        return float("nan")
    return _maybe_int(math.fmod(_to_number(left), denominator))


def _bin_in(left: Any, right: Any) -> Any:
    if isinstance(right, dict):
        return left in right
    if isinstance(right, list):
        return isinstance(left, int) and 0 <= left < len(right)
    raise JavaScriptError("'in' requires an object or array on the right")


def _compare(operator: str) -> Callable[[Any, Any], bool]:
    def comparator(left: Any, right: Any) -> bool:
        if isinstance(left, str) and isinstance(right, str):
            a, b = left, right
        else:
            a, b = _to_number(left), _to_number(right)
        if operator == "<":
            return a < b
        if operator == ">":
            return a > b
        if operator == "<=":
            return a <= b
        return a >= b

    return comparator


_BINARY_FUNCS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": _bin_add,
    "-": _bin_sub,
    "*": _bin_mul,
    "/": _bin_div,
    "%": _bin_mod,
    "in": _bin_in,
    "==": lambda l, r: JSEngine._equals(l, r, strict=False),
    "===": lambda l, r: JSEngine._equals(l, r, strict=True),
    "!=": lambda l, r: not JSEngine._equals(l, r, strict=False),
    "!==": lambda l, r: not JSEngine._equals(l, r, strict=True),
    "<": _compare("<"),
    ">": _compare(">"),
    "<=": _compare("<="),
    ">=": _compare(">="),
}


# --------------------------------------------------------------- the compiler
#
# Compiled statements communicate control flow through sentinel return values
# instead of exceptions: ``None`` falls through, ``_BREAK`` / ``_CONTINUE``
# unwind to the innermost loop, and a 1-tuple ``(value,)`` carries a
# ``return`` — an order of magnitude cheaper than raising ``_ReturnSignal``
# on every function call in a hot ``map`` body.

_BREAK = object()
_CONTINUE = object()


class CompiledJSFunction:
    """A user-defined function whose body was closure-compiled once."""

    __slots__ = ("params", "body", "expression_body", "closure", "needs_arguments")

    def __init__(self, params: Sequence[str], body: Optional[CompiledNode],
                 expression_body: Optional[CompiledNode], closure: Environment,
                 needs_arguments: bool = True) -> None:
        self.params = params
        self.body = body
        self.expression_body = expression_body
        self.closure = closure
        self.needs_arguments = needs_arguments

    def __call__(self, *args: Any) -> Any:
        params = self.params
        if len(args) == len(params):
            variables = dict(zip(params, args))
        else:
            variables = {param: (args[index] if index < len(args) else None)
                         for index, param in enumerate(params)}
        if self.needs_arguments:
            variables["arguments"] = list(args)
        # Bypass Environment.__init__ (it would defensively copy the dict).
        local = Environment.__new__(Environment)
        local.parent = self.closure
        local.variables = variables
        if self.expression_body is not None:
            return self.expression_body(local)
        result = self.body(local)  # type: ignore[misc]
        if type(result) is tuple:
            return result[0]
        return None


def _references_arguments(node: Any) -> bool:
    """Whether an AST subtree mentions the ``arguments`` identifier anywhere."""
    if isinstance(node, ast.Identifier):
        return node.name == "arguments"
    if isinstance(node, ast.Node):
        for value in vars(node).values():
            if _references_arguments(value):
                return True
        return False
    if isinstance(node, (list, tuple)):
        return any(_references_arguments(item) for item in node)
    return False


def compile_expression_ast(node: ast.Node) -> CompiledNode:
    """Compile one expression AST into a closure taking the environment."""
    if isinstance(node, ast.Literal):
        value = node.value
        return lambda env: value
    if isinstance(node, ast.Identifier):
        name = node.name
        return lambda env: env.lookup(name)
    if isinstance(node, ast.ArrayLiteral):
        elements = [compile_expression_ast(el) for el in node.elements]
        return lambda env: [el(env) for el in elements]
    if isinstance(node, ast.ObjectLiteral):
        entries = [(key, compile_expression_ast(value)) for key, value in node.entries]
        return lambda env: {key: value(env) for key, value in entries}
    if isinstance(node, ast.UnaryOp):
        return _compile_unary(node)
    if isinstance(node, ast.BinaryOp):
        return _compile_binary(node)
    if isinstance(node, ast.Conditional):
        test = compile_expression_ast(node.test)
        consequent = compile_expression_ast(node.consequent)
        alternate = compile_expression_ast(node.alternate)
        return lambda env: consequent(env) if _js_truthy(test(env)) else alternate(env)
    if isinstance(node, ast.Member):
        obj = compile_expression_ast(node.obj)
        prop = node.prop
        return lambda env: _member_access(obj(env), prop)
    if isinstance(node, ast.Index):
        obj = compile_expression_ast(node.obj)
        index = compile_expression_ast(node.index)
        return lambda env: _index_access(obj(env), index(env))
    if isinstance(node, ast.Call):
        return _compile_call(node)
    if isinstance(node, ast.FunctionExpression):
        params = list(node.params)
        if node.expression_body is not None:
            expression_body = compile_expression_ast(node.expression_body)
            needs_args = _references_arguments(node.expression_body)
            return lambda env: CompiledJSFunction(params, None, expression_body, env,
                                                  needs_args)
        body = compile_statements(node.body)
        needs_args = _references_arguments(node.body)
        return lambda env: CompiledJSFunction(params, body, None, env, needs_args)
    if isinstance(node, ast.Assignment):
        return _compile_assignment(node)
    if isinstance(node, ast.UpdateExpression):
        name = node.target.name
        delta = 1 if node.operator == "++" else -1
        prefix = node.prefix

        def update(env: Environment) -> Any:
            current = _to_number(env.lookup(name))
            updated = current + delta
            env.assign(name, _maybe_int(updated))
            return _maybe_int(updated if prefix else current)

        return update
    raise JavaScriptError(f"cannot compile AST node {type(node).__name__}")


def _compile_unary(node: ast.UnaryOp) -> CompiledNode:
    operand = compile_expression_ast(node.operand)
    operator = node.operator
    if operator == "typeof":
        def type_of(env: Environment) -> str:
            try:
                value = operand(env)
            except JavaScriptError:
                return "undefined"
            return _js_typeof(value)

        return type_of
    if operator == "!":
        return lambda env: not _js_truthy(operand(env))
    if operator == "-":
        return lambda env: _maybe_int(-_to_number(operand(env)))
    if operator == "+":
        return lambda env: _maybe_int(_to_number(operand(env)))
    raise JavaScriptError(f"unsupported unary operator {operator!r}")


def _compile_binary(node: ast.BinaryOp) -> CompiledNode:
    operator = node.operator
    left = compile_expression_ast(node.left)
    right = compile_expression_ast(node.right)
    if operator == "&&":
        def logical_and(env: Environment) -> Any:
            value = left(env)
            return right(env) if _js_truthy(value) else value

        return logical_and
    if operator == "||":
        def logical_or(env: Environment) -> Any:
            value = left(env)
            return value if _js_truthy(value) else right(env)

        return logical_or
    func = _BINARY_FUNCS.get(operator)
    if func is None:
        raise JavaScriptError(f"unsupported binary operator {operator!r}")
    return lambda env: func(left(env), right(env))


def _compile_call(node: ast.Call) -> CompiledNode:
    args = [compile_expression_ast(arg) for arg in node.args]
    if isinstance(node.callee, ast.Member):
        obj = compile_expression_ast(node.callee.obj)
        prop = node.callee.prop

        def fused_method_call(env: Environment) -> Any:
            # Argument-before-callee evaluation order matches the interpreter.
            arg_values = [arg(env) for arg in args]
            return _call_method(obj(env), prop, arg_values)

        return fused_method_call
    callee = compile_expression_ast(node.callee)

    def call(env: Environment) -> Any:
        arg_values = [arg(env) for arg in args]
        return _call_value(callee(env), arg_values)

    return call


def _compile_assignment(node: ast.Assignment) -> CompiledNode:
    value = compile_expression_ast(node.value)
    compound = _BINARY_FUNCS[node.operator[0]] if node.operator != "=" else None
    target = node.target
    if isinstance(target, ast.Identifier):
        name = target.name

        def assign_name(env: Environment) -> Any:
            result = value(env)
            if compound is not None:
                result = compound(env.lookup(name), result)
            env.assign(name, result)
            return result

        return assign_name
    current = compile_expression_ast(target)
    if isinstance(target, ast.Member):
        obj = compile_expression_ast(target.obj)
        prop = target.prop

        def assign_member(env: Environment) -> Any:
            result = value(env)
            if compound is not None:
                result = compound(current(env), result)
            container = obj(env)
            if not isinstance(container, dict):
                raise JavaScriptError("can only assign properties on objects")
            container[prop] = result
            return result

        return assign_member
    if isinstance(target, ast.Index):
        obj = compile_expression_ast(target.obj)
        index = compile_expression_ast(target.index)

        def assign_index(env: Environment) -> Any:
            result = value(env)
            if compound is not None:
                result = compound(current(env), result)
            container = obj(env)
            key = index(env)
            if isinstance(container, list):
                position = int(key)
                while len(container) <= position:
                    container.append(None)
                container[position] = result
            elif isinstance(container, dict):
                container[key] = result
            else:
                raise JavaScriptError("invalid assignment target")
            return result

        return assign_index
    raise JavaScriptError(f"cannot compile assignment target {type(target).__name__}")


# --------------------------------------------------------------- statements


def compile_statements(statements: Sequence[ast.Node]) -> CompiledNode:
    """Compile a statement list into one runner.

    The runner returns ``None`` when execution falls through, ``_BREAK`` /
    ``_CONTINUE`` when a loop-control statement unwinds, or ``(value,)`` when
    a ``return`` executed.
    """
    compiled = [compile_statement(statement) for statement in statements]
    if len(compiled) == 1:
        return compiled[0]

    def run(env: Environment) -> Any:
        for statement in compiled:
            result = statement(env)
            if result is not None:
                return result
        return None

    return run


def compile_statement(node: ast.Node) -> CompiledNode:
    if isinstance(node, ast.ExpressionStatement):
        expression = compile_expression_ast(node.expression)
        return lambda env: (expression(env), None)[1]
    if isinstance(node, ast.VariableDeclaration):
        declarations = [(name, compile_expression_ast(init) if init is not None else None)
                        for name, init in node.declarations]

        def declare(env: Environment) -> None:
            for name, init in declarations:
                env.declare(name, init(env) if init is not None else None)

        return declare
    if isinstance(node, ast.ReturnStatement):
        argument = compile_expression_ast(node.argument) if node.argument is not None else None
        if argument is None:
            return lambda env: (None,)
        return lambda env: (argument(env),)
    if isinstance(node, ast.IfStatement):
        test = compile_expression_ast(node.test)
        consequent = compile_statements(node.consequent)
        alternate = compile_statements(node.alternate) if node.alternate is not None else None

        def if_(env: Environment) -> Any:
            if _js_truthy(test(env)):
                return consequent(Environment(parent=env))
            if alternate is not None:
                return alternate(Environment(parent=env))
            return None

        return if_
    if isinstance(node, ast.ForStatement):
        init = compile_statement(node.init) if node.init is not None else None
        test = compile_expression_ast(node.test) if node.test is not None else None
        update = compile_expression_ast(node.update) if node.update is not None else None
        body = compile_statements(node.body)

        def for_(env: Environment) -> Any:
            loop_env = Environment(parent=env)
            if init is not None:
                init(loop_env)
            iterations = 0
            while test is None or _js_truthy(test(loop_env)):
                result = body(Environment(parent=loop_env))
                if result is not None:
                    if result is _BREAK:
                        break
                    if result is not _CONTINUE:
                        return result
                if update is not None:
                    update(loop_env)
                iterations += 1
                if iterations > 1_000_000:
                    raise JavaScriptError("for-loop exceeded 1,000,000 iterations")
            return None

        return for_
    if isinstance(node, ast.ForOfStatement):
        iterable = compile_expression_ast(node.iterable)
        body = compile_statements(node.body)
        variable = node.variable
        of = node.of

        def for_of(env: Environment) -> Any:
            container = iterable(env)
            if isinstance(container, dict):
                values = list(container.values()) if of else list(container.keys())
            elif isinstance(container, (str, list)):
                values = list(container) if of else [str(i) for i in range(len(container))]
            else:
                raise JavaScriptError(f"value of type {type(container).__name__} is not iterable")
            for value in values:
                loop_env = Environment(parent=env)
                loop_env.declare(variable, value)
                result = body(loop_env)
                if result is not None:
                    if result is _BREAK:
                        break
                    if result is not _CONTINUE:
                        return result
            return None

        return for_of
    if isinstance(node, ast.WhileStatement):
        test = compile_expression_ast(node.test)
        body = compile_statements(node.body)

        def while_(env: Environment) -> Any:
            iterations = 0
            while _js_truthy(test(env)):
                result = body(Environment(parent=env))
                if result is not None:
                    if result is _BREAK:
                        break
                    if result is not _CONTINUE:
                        return result
                iterations += 1
                if iterations > 1_000_000:
                    raise JavaScriptError("while-loop exceeded 1,000,000 iterations")
            return None

        return while_
    if isinstance(node, ast.ThrowStatement):
        argument = compile_expression_ast(node.argument)

        def throw(env: Environment) -> None:
            raise JSThrownError(_js_string(argument(env)))

        return throw
    if isinstance(node, ast.BreakStatement):
        return lambda env: _BREAK
    if isinstance(node, ast.ContinueStatement):
        return lambda env: _CONTINUE
    if isinstance(node, ast.Program):
        body = compile_statements(list(node.body))
        return lambda env: body(Environment(parent=env))
    # Bare expressions used in statement position.
    expression = compile_expression_ast(node)
    return lambda env: (expression(env), None)[1]


def compile_program_ast(program: ast.Program) -> CompiledNode:
    """Compile a ``${ ... }`` body / statement program into one runner."""
    return compile_statements(list(program.body))


# ------------------------------------------------------------- library scopes


class _ContextRoot(Environment):
    """Root scope of a shared library: the standard library plus a per-thread
    overlay carrying the current activation's ``inputs``/``self``/``runtime``.

    The overlay lives *below* the library environment in the chain so library
    functions (whose closures capture the library environment) resolve context
    names exactly as they would in a freshly built engine, while each thread's
    concurrent evaluations stay isolated.
    """

    def __init__(self, stdlib_variables: Dict[str, Any]) -> None:
        self.parent = None
        self._stdlib = stdlib_variables
        self._tls = threading.local()

    @property
    def variables(self) -> Any:  # type: ignore[override]
        stack = getattr(self._tls, "stack", None)
        if stack:
            return ChainMap(stack[-1], self._stdlib)
        return self._stdlib

    def push_context(self, context: Dict[str, Any]) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append(context)

    def pop_context(self) -> None:
        self._tls.stack.pop()


def fingerprint_library(expression_lib: Sequence[str]) -> str:
    """Content hash identifying an ``expressionLib`` (order-sensitive)."""
    digest = hashlib.sha1()
    for source in expression_lib:
        digest.update(source.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class LibraryScope:
    """Immutable compiled form of an ``expressionLib``, shared across evaluations.

    Construction parses and executes every library source exactly once (with
    the closure backend, so library functions are :class:`CompiledJSFunction`).
    :meth:`activation` then yields a per-evaluation frame in O(1).
    """

    def __init__(self, expression_lib: Optional[Sequence[str]] = None) -> None:
        self.sources = tuple(expression_lib or ())
        self.fingerprint = fingerprint_library(self.sources)
        self._root = _ContextRoot(JSEngine._standard_library())
        self.lib_env = Environment(parent=self._root)
        for source in self.sources:
            compile_program_ast(parse_program(source))(self.lib_env)

    @contextmanager
    def activation(self, context: Optional[Dict[str, Any]]):
        """Bind ``context`` for the current thread and yield the frame."""
        self._root.push_context(dict(context or {}))
        try:
            yield Environment(parent=self.lib_env)
        finally:
            self._root.pop_context()

    def evaluate(self, compiled: CompiledNode, context: Optional[Dict[str, Any]]) -> Any:
        """Evaluate a compiled expression against ``context``."""
        with self.activation(context) as env:
            return compiled(env)

    def run_body(self, compiled: CompiledNode, context: Optional[Dict[str, Any]]) -> Any:
        """Run a compiled ``${ ... }`` body; its ``return`` value is the result."""
        with self.activation(context) as env:
            local = Environment(parent=env)
            result = compiled(local)
            if type(result) is tuple:
                return result[0]
            return None


#: Shared scopes keyed by library fingerprint (bounded LRU).
_SCOPE_CACHE: "OrderedDict[str, LibraryScope]" = OrderedDict()
_SCOPE_CACHE_MAX = 64
_SCOPE_LOCK = threading.Lock()


def shared_library_scope(expression_lib: Optional[Sequence[str]] = None) -> LibraryScope:
    """A process-wide :class:`LibraryScope` for this library content.

    Evaluators with byte-identical libraries share one scope, so the standard
    library and the expressionLib are built once per *content*, not once per
    evaluator (let alone once per evaluation).
    """
    key = fingerprint_library(tuple(expression_lib or ()))
    with _SCOPE_LOCK:
        scope = _SCOPE_CACHE.get(key)
        if scope is not None:
            _SCOPE_CACHE.move_to_end(key)
            return scope
    scope = LibraryScope(expression_lib)
    with _SCOPE_LOCK:
        existing = _SCOPE_CACHE.get(key)
        if existing is not None:
            return existing
        _SCOPE_CACHE[key] = scope
        while len(_SCOPE_CACHE) > _SCOPE_CACHE_MAX:
            _SCOPE_CACHE.popitem(last=False)
    return scope


def clear_scope_cache() -> None:
    """Drop all shared library scopes (tests and benchmarks)."""
    with _SCOPE_LOCK:
        _SCOPE_CACHE.clear()
