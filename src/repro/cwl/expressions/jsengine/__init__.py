"""A pure-Python interpreter for the JavaScript subset used by CWL expressions."""

from repro.cwl.expressions.jsengine.interpreter import JSEngine, evaluate_expression

__all__ = ["JSEngine", "evaluate_expression"]
