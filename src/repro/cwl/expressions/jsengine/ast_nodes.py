"""AST node definitions for the mini-JavaScript engine.

Nodes are plain dataclasses; the interpreter dispatches on their class.  Only
the constructs needed by CWL expressions are modelled — there is no support for
classes, generators, async, regular expressions or prototype manipulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence


class Node:
    """Base class for all AST nodes."""


# --------------------------------------------------------------------- expressions


@dataclass
class Literal(Node):
    value: Any


@dataclass
class Identifier(Node):
    name: str


@dataclass
class ArrayLiteral(Node):
    elements: List[Node]


@dataclass
class ObjectLiteral(Node):
    entries: List[tuple]          # list of (key: str, value: Node)


@dataclass
class UnaryOp(Node):
    operator: str                  # '!', '-', '+', 'typeof'
    operand: Node


@dataclass
class BinaryOp(Node):
    operator: str                  # arithmetic / comparison / logical
    left: Node
    right: Node


@dataclass
class Conditional(Node):
    test: Node
    consequent: Node
    alternate: Node


@dataclass
class Member(Node):
    obj: Node
    prop: str                      # static property access obj.prop


@dataclass
class Index(Node):
    obj: Node
    index: Node                    # computed access obj[expr]


@dataclass
class Call(Node):
    callee: Node
    args: List[Node]


@dataclass
class FunctionExpression(Node):
    params: List[str]
    body: List[Node]               # list of statements
    name: Optional[str] = None
    is_arrow: bool = False
    #: Arrow functions with expression bodies evaluate and return the expression.
    expression_body: Optional[Node] = None


@dataclass
class Assignment(Node):
    target: Node                   # Identifier | Member | Index
    operator: str                  # '=', '+=', '-=', '*=', '/=', '%='
    value: Node


@dataclass
class UpdateExpression(Node):
    target: Node                   # Identifier
    operator: str                  # '++' or '--'
    prefix: bool = False


# --------------------------------------------------------------------- statements


@dataclass
class ExpressionStatement(Node):
    expression: Node


@dataclass
class VariableDeclaration(Node):
    kind: str                      # var | let | const
    declarations: List[tuple]      # list of (name, initializer Node or None)


@dataclass
class ReturnStatement(Node):
    argument: Optional[Node]


@dataclass
class IfStatement(Node):
    test: Node
    consequent: List[Node]
    alternate: Optional[List[Node]] = None


@dataclass
class ForStatement(Node):
    init: Optional[Node]
    test: Optional[Node]
    update: Optional[Node]
    body: List[Node] = field(default_factory=list)


@dataclass
class ForOfStatement(Node):
    variable: str
    iterable: Node
    body: List[Node] = field(default_factory=list)
    of: bool = True                # True for 'of' (values), False for 'in' (keys)


@dataclass
class WhileStatement(Node):
    test: Node
    body: List[Node] = field(default_factory=list)


@dataclass
class ThrowStatement(Node):
    argument: Node


@dataclass
class BreakStatement(Node):
    pass


@dataclass
class ContinueStatement(Node):
    pass


@dataclass
class Program(Node):
    body: Sequence[Node] = ()
