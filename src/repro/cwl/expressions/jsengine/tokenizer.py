"""Tokenizer for the mini-JavaScript engine.

Produces a flat list of :class:`Token` objects.  The token set covers the
expression/statement subset CWL documents use: numeric and string literals,
template literals are *not* supported, identifiers and keywords, punctuation
and the usual operator set (including ``===``/``!==`` and the arrow ``=>`` used
by array callbacks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cwl.errors import JavaScriptError

KEYWORDS = {
    "var", "let", "const", "function", "return", "if", "else", "for", "while",
    "true", "false", "null", "undefined", "new", "typeof", "in", "of", "break",
    "continue", "throw",
}

# Longest first so that e.g. '===' is matched before '=='.
_PUNCTUATION = [
    "===", "!==", "=>", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=",
    "+", "-", "*", "/", "%", "<", ">", "!", "=", "?", ":", ";", ",", ".",
    "(", ")", "[", "]", "{", "}",
]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str       # number | string | identifier | keyword | punct | eof
    value: str
    position: int


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`JavaScriptError` on malformed input."""
    tokens: List[Token] = []
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]

        # Whitespace
        if ch.isspace():
            i += 1
            continue

        # Comments
        if ch == "/" and i + 1 < length and source[i + 1] == "/":
            while i < length and source[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < length and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end == -1:
                raise JavaScriptError(f"unterminated block comment at position {i}")
            i = end + 2
            continue

        # String literals
        if ch in ("'", '"'):
            value, consumed = _read_string(source, i)
            tokens.append(Token("string", value, i))
            i += consumed
            continue

        # Numbers
        if ch.isdigit() or (ch == "." and i + 1 < length and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < length:
                c = source[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < length and source[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token("number", source[i:j], i))
            i = j
            continue

        # Identifiers / keywords
        if ch.isalpha() or ch in "_$":
            j = i
            while j < length and (source[j].isalnum() or source[j] in "_$"):
                j += 1
            word = source[i:j]
            tokens.append(Token("keyword" if word in KEYWORDS else "identifier", word, i))
            i = j
            continue

        # Punctuation / operators
        matched = False
        for punct in _PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token("punct", punct, i))
                i += len(punct)
                matched = True
                break
        if matched:
            continue

        raise JavaScriptError(f"unexpected character {ch!r} at position {i}")

    tokens.append(Token("eof", "", length))
    return tokens


def _read_string(source: str, start: int) -> tuple[str, int]:
    """Read a quoted string starting at ``start``; returns (value, chars consumed)."""
    quote = source[start]
    i = start + 1
    out: List[str] = []
    while i < len(source):
        ch = source[i]
        if ch == "\\":
            if i + 1 >= len(source):
                raise JavaScriptError("unterminated escape sequence in string literal")
            escape = source[i + 1]
            mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", "'": "'", '"': '"', "0": "\0", "b": "\b", "f": "\f"}
            if escape == "u" and i + 5 < len(source):
                out.append(chr(int(source[i + 2:i + 6], 16)))
                i += 6
                continue
            out.append(mapping.get(escape, escape))
            i += 2
            continue
        if ch == quote:
            return "".join(out), (i - start + 1)
        out.append(ch)
        i += 1
    raise JavaScriptError(f"unterminated string literal starting at position {start}")
