"""Scanning and resolution of CWL parameter references.

Two syntaxes must be located inside strings:

* ``$( ... )`` — a parameter reference or JavaScript expression,
* ``${ ... }`` — a JavaScript function body.

Scanning must respect nested parentheses/braces and quoted strings, because
expressions like ``$(inputs.file.basename.split('.')[0])`` contain both.  A
*simple* parameter reference (a dotted/indexed path rooted at ``inputs``,
``self`` or ``runtime``) can be resolved without the JavaScript engine — the
CWL specification deliberately allows these even when
``InlineJavascriptRequirement`` is absent.

Scatter workloads evaluate the *same* binding strings for every job, so the
scanner, the simple-reference classifier and the path tokenizer are all
memoized with bounded ``lru_cache`` s — the scan/classify/tokenize work happens
once per distinct string per process.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

from repro.cwl.errors import ExpressionError

#: A simple parameter reference path: identifiers joined with '.', "[n]" or "['key']".
_SIMPLE_SEGMENT = r"[a-zA-Z_][a-zA-Z0-9_]*"
_SIMPLE_PATH_RE = re.compile(
    rf"^\s*{_SIMPLE_SEGMENT}(\s*(\.{_SIMPLE_SEGMENT}|\[\d+\]|\[\'[^\']*\'\]|\[\"[^\"]*\"\]))*\s*$"
)


@dataclass(frozen=True)
class FoundExpression:
    """One expression located inside a string."""

    start: int        # index of the '$'
    end: int          # index one past the closing ')' or '}'
    kind: str         # "paren" for $(...), "brace" for ${...}
    body: str         # text between the delimiters


def find_expressions(text: str) -> List[FoundExpression]:
    """Locate every ``$(...)`` and ``${...}`` in ``text`` (non-overlapping, in order).

    The scan itself is memoized (see :func:`scan_expressions`); this wrapper
    returns a fresh list for API compatibility.
    """
    return list(scan_expressions(text))


@lru_cache(maxsize=4096)
def scan_expressions(text: str) -> Tuple[FoundExpression, ...]:
    """Memoized expression scan returning an immutable tuple."""
    found: List[FoundExpression] = []
    i = 0
    length = len(text)
    while i < length - 1:
        if text[i] == "\\" and i + 1 < length and text[i + 1] == "$":
            i += 2
            continue
        if text[i] == "$" and text[i + 1] in "({":
            opener = text[i + 1]
            closer = ")" if opener == "(" else "}"
            end = _scan_balanced(text, i + 1, opener, closer)
            if end is None:
                raise ExpressionError(f"unterminated expression starting at index {i}: {text!r}")
            found.append(FoundExpression(start=i, end=end + 1,
                                         kind="paren" if opener == "(" else "brace",
                                         body=text[i + 2:end]))
            i = end + 1
            continue
        i += 1
    return tuple(found)


def _scan_balanced(text: str, open_index: int, opener: str, closer: str) -> Optional[int]:
    """Return the index of the matching ``closer`` for the ``opener`` at ``open_index``."""
    depth = 0
    i = open_index
    in_string: Optional[str] = None
    while i < len(text):
        ch = text[i]
        if in_string is not None:
            if ch == "\\":
                i += 2
                continue
            if ch == in_string:
                in_string = None
        elif ch in ("'", '"'):
            in_string = ch
        elif ch == opener:
            depth += 1
        elif ch == closer:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return None


@lru_cache(maxsize=4096)
def is_simple_parameter_reference(body: str) -> bool:
    """Whether ``body`` is a plain dotted/indexed path (no JavaScript needed)."""
    return bool(_SIMPLE_PATH_RE.match(body))


def resolve_parameter_reference(body: str, context: Dict[str, Any]) -> Any:
    """Resolve a simple parameter reference against ``context``.

    ``context`` maps root names (``inputs``, ``self``, ``runtime``) to values.
    Missing intermediate values resolve to ``None`` (matching JS member access
    on missing properties) but a missing *root* is an error.
    """
    return resolve_path_tokens(tokenize_path(body), context, source=body)


def resolve_path_tokens(tokens: Tuple[Any, ...], context: Dict[str, Any],
                        source: str = "") -> Any:
    """Walk a pre-tokenized parameter-reference path against ``context``."""
    if not tokens:
        raise ExpressionError(f"empty parameter reference: {source!r}")
    root = tokens[0]
    if root not in context:
        raise ExpressionError(
            f"unknown parameter reference root {root!r} (expected one of {sorted(context)})"
        )
    value: Any = context[root]
    for token in tokens[1:]:
        if value is None:
            return None
        if isinstance(token, int):
            if isinstance(value, (list, str)) and 0 <= token < len(value):
                value = value[token]
            else:
                return None
        else:
            if isinstance(value, dict):
                value = value.get(token)
            elif token == "length" and isinstance(value, (list, str)):
                value = len(value)
            else:
                value = getattr(value, token, None)
    return value


@lru_cache(maxsize=4096)
def tokenize_path(body: str) -> Tuple[Any, ...]:
    """Split ``inputs.file['basename'][0]`` into ('inputs', 'file', 'basename', 0)."""
    tokens: List[Any] = []
    i = 0
    body = body.strip()
    length = len(body)
    while i < length:
        ch = body[i]
        if ch == ".":
            i += 1
            continue
        if ch == "[":
            end = body.index("]", i)
            inner = body[i + 1:end].strip()
            if inner.startswith(("'", '"')):
                tokens.append(inner[1:-1])
            else:
                tokens.append(int(inner))
            i = end + 1
            continue
        match = re.match(_SIMPLE_SEGMENT, body[i:])
        if not match:
            raise ExpressionError(f"malformed parameter reference {body!r}")
        tokens.append(match.group(0))
        i += len(match.group(0))
    return tuple(tokens)
