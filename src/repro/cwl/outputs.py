"""Output collection.

After a tool's command exits, its declared outputs are collected from the
working/output directory:

* ``type: stdout`` / ``type: stderr`` outputs resolve to the redirected files,
* outputs with an ``outputBinding.glob`` resolve to the matching file(s); the
  glob pattern may itself be an expression,
* ``outputEval`` post-processes the matched value (with ``self`` bound to the
  glob result),
* ``loadContents`` attaches the first 64 KiB of each matched file,
* non-File outputs (e.g. an int parsed from stdout by ``outputEval``) are passed
  through unchanged.
"""

from __future__ import annotations

import glob as globlib
import os
from typing import Any, Dict, List, Optional

from repro.cwl.errors import OutputCollectionError
from repro.cwl.expressions.evaluator import ExpressionEvaluator
from repro.cwl.jobcache import stage_file
from repro.cwl.schema import CommandLineTool, CommandOutputParameter
from repro.cwl.types import build_directory_value, build_file_value, is_directory_value, is_file_value


def _glob_in(outdir: str, pattern: str) -> List[str]:
    """Glob relative to the output directory, returning sorted absolute paths."""
    if os.path.isabs(pattern):
        matches = globlib.glob(pattern)
    else:
        matches = globlib.glob(os.path.join(outdir, pattern))
    return sorted(os.path.abspath(m) for m in matches)


def _load_contents(file_value: Dict[str, Any]) -> Dict[str, Any]:
    path = file_value.get("path")
    if path and os.path.exists(path):
        with open(path, "rb") as handle:
            file_value["contents"] = handle.read(64 * 1024).decode("utf-8", errors="replace")
    return file_value


def collect_output(
    param: CommandOutputParameter,
    outdir: str,
    stdout_path: Optional[str],
    stderr_path: Optional[str],
    job_order: Dict[str, Any],
    runtime: Dict[str, Any],
    evaluator: Optional[ExpressionEvaluator] = None,
    compute_checksum: bool = False,
    tool: Optional[CommandLineTool] = None,
) -> Any:
    """Collect one declared output parameter.

    When no ``evaluator`` is supplied, a ``tool`` that went through
    :func:`~repro.cwl.expressions.compiler.precompile_process` contributes its
    precompiled evaluator; otherwise a fresh uncached one is built.
    """
    if evaluator is None:
        compilation = getattr(tool, "compiled", None)
        evaluator = compilation.evaluator if compilation is not None \
            else ExpressionEvaluator(js_enabled=True)
    context = {"inputs": job_order, "runtime": runtime, "self": None}

    raw_type = param.raw_type
    if raw_type == "stdout":
        if not stdout_path:
            raise OutputCollectionError(f"output {param.id!r} has type stdout but no stdout file was produced")
        return build_file_value(stdout_path, compute_checksum=compute_checksum)
    if raw_type == "stderr":
        if not stderr_path:
            raise OutputCollectionError(f"output {param.id!r} has type stderr but no stderr file was produced")
        return build_file_value(stderr_path, compute_checksum=compute_checksum)

    binding = param.output_binding
    if binding is None:
        # No binding: the output may be satisfied by cwl.output.json (not supported)
        # or simply be absent; optional outputs collect to None.
        if param.type.is_optional:
            return None
        raise OutputCollectionError(f"output {param.id!r} has no outputBinding and is not optional")

    matched_value: Any = None
    glob_matches: List[Dict[str, Any]] = []
    if binding.glob is not None:
        patterns = binding.glob if isinstance(binding.glob, list) else [binding.glob]
        matches: List[str] = []
        for pattern in patterns:
            evaluated = evaluator.evaluate(pattern, context)
            if evaluated is None:
                continue
            for single in (evaluated if isinstance(evaluated, list) else [evaluated]):
                matches.extend(_glob_in(outdir, str(single)))
        glob_matches = [build_file_value(path, compute_checksum=compute_checksum) for path in matches]
        if binding.load_contents:
            glob_matches = [_load_contents(fv) for fv in glob_matches]
        if param.type.is_array:
            matched_value = glob_matches
        else:
            matched_value = glob_matches[0] if glob_matches else None

    if binding.output_eval is not None:
        # Per the CWL spec, `self` in outputEval is the array of files matched by glob
        # (possibly empty), regardless of the declared output type.
        eval_context = dict(context)
        eval_context["self"] = glob_matches
        matched_value = evaluator.evaluate(binding.output_eval, eval_context)

    if matched_value is None and not param.type.is_optional and binding.output_eval is None:
        raise OutputCollectionError(
            f"required output {param.id!r} matched no files (glob={binding.glob!r}) in {outdir}"
        )
    return matched_value


def stage_outputs(outputs: Dict[str, Any], destination: str,
                  compute_checksum: bool = False) -> Dict[str, Any]:
    """Restage every File/Directory of an output object into ``destination``.

    The final-output analogue of ``cwltool --outdir``: each referenced file is
    staged with the shared hardlink-with-copy-fallback helper
    (:func:`repro.cwl.jobcache.stage_file` — zero-copy on the same
    filesystem, never a ``shutil.copy`` when a link suffices) and the value's
    ``path``/``location`` are rewritten to the staged copy.  Values whose
    source no longer exists are passed through unchanged.  Returns a new
    output object; the input is not mutated.
    """

    def restage(value: Any) -> Any:
        if is_file_value(value):
            source = value.get("path")
            if not source or not os.path.isfile(source):
                return value
            target = os.path.join(destination, value.get("basename") or
                                  os.path.basename(source))
            stage_file(source, target)
            staged = build_file_value(target, compute_checksum=compute_checksum)
            staged.update({k: v for k, v in value.items() if k not in staged})
            return staged
        if is_directory_value(value):
            source = value.get("path")
            if not source or not os.path.isdir(source):
                return value
            target = os.path.join(destination, value.get("basename") or
                                  os.path.basename(source))
            for root, _dirs, names in os.walk(source):
                rel = os.path.relpath(root, source)
                os.makedirs(os.path.normpath(os.path.join(target, rel)), exist_ok=True)
                for name in names:
                    stage_file(os.path.join(root, name),
                               os.path.normpath(os.path.join(target, rel, name)))
            return build_directory_value(target, listing="listing" in value)
        if isinstance(value, list):
            return [restage(item) for item in value]
        if isinstance(value, dict):
            return {key: restage(item) for key, item in value.items()}
        return value

    os.makedirs(destination, exist_ok=True)
    return {key: restage(value) for key, value in outputs.items()}


def collect_outputs(
    tool: CommandLineTool,
    outdir: str,
    stdout_path: Optional[str],
    stderr_path: Optional[str],
    job_order: Dict[str, Any],
    runtime: Dict[str, Any],
    evaluator: Optional[ExpressionEvaluator] = None,
    compute_checksum: bool = False,
) -> Dict[str, Any]:
    """Collect every declared output of ``tool`` into an output object."""
    outputs: Dict[str, Any] = {}
    for param in tool.outputs:
        outputs[param.id] = collect_output(
            param,
            outdir=outdir,
            stdout_path=stdout_path,
            stderr_path=stderr_path,
            job_order=job_order,
            runtime=runtime,
            evaluator=evaluator,
            compute_checksum=compute_checksum,
            tool=tool,
        )
    return outputs
