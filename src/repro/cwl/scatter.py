"""Scatter support.

The ``ScatterFeatureRequirement`` lets a workflow step run once per element of
one or more array inputs.  Three methods are defined by CWL:

* ``dotproduct`` — all scattered arrays must have equal length; job *i* takes the
  *i*-th element of each,
* ``flat_crossproduct`` — the cartesian product of all scattered arrays, flattened
  into a single list of jobs,
* ``nested_crossproduct`` — the cartesian product with nested output arrays (one
  nesting level per scattered input).

:func:`build_scatter_jobs` expands a gathered step-input dictionary into the
list of per-job input dictionaries plus the shape information needed to
re-nest outputs for ``nested_crossproduct``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.cwl.errors import ValidationException

SCATTER_METHODS = ("dotproduct", "flat_crossproduct", "nested_crossproduct")


@dataclass
class ScatterPlan:
    """The expansion of one scattered step invocation."""

    jobs: List[Dict[str, Any]]
    #: Lengths of each scattered input, in scatter-key order (used for re-nesting).
    shape: List[int]
    method: str
    scatter_keys: List[str]

    @property
    def is_empty(self) -> bool:
        return len(self.jobs) == 0


def build_scatter_jobs(
    step_inputs: Dict[str, Any],
    scatter_keys: Sequence[str],
    method: str = "dotproduct",
) -> ScatterPlan:
    """Expand ``step_inputs`` into one job per scatter combination."""
    if method not in SCATTER_METHODS:
        raise ValidationException(
            f"unknown scatterMethod {method!r}; expected one of {SCATTER_METHODS}"
        )
    if not scatter_keys:
        raise ValidationException("scatter requested but no scatter keys given")

    arrays: Dict[str, List[Any]] = {}
    for key in scatter_keys:
        value = step_inputs.get(key)
        if value is None:
            value = []
        if not isinstance(value, list):
            raise ValidationException(
                f"scattered input {key!r} must be an array, got {type(value).__name__}"
            )
        arrays[key] = value

    base = {k: v for k, v in step_inputs.items() if k not in scatter_keys}
    shape = [len(arrays[key]) for key in scatter_keys]

    if method == "dotproduct":
        lengths = set(shape)
        if len(lengths) > 1:
            raise ValidationException(
                f"dotproduct scatter requires equal-length arrays, got lengths {shape}"
            )
        count = shape[0] if shape else 0
        jobs = []
        for index in range(count):
            job = dict(base)
            for key in scatter_keys:
                job[key] = arrays[key][index]
            jobs.append(job)
        return ScatterPlan(jobs=jobs, shape=shape, method=method, scatter_keys=list(scatter_keys))

    # Cross products: iterate in row-major order over the scatter keys.
    index_ranges = [range(len(arrays[key])) for key in scatter_keys]
    jobs = []
    for combination in itertools.product(*index_ranges):
        job = dict(base)
        for key, idx in zip(scatter_keys, combination):
            job[key] = arrays[key][idx]
        jobs.append(job)
    return ScatterPlan(jobs=jobs, shape=shape, method=method, scatter_keys=list(scatter_keys))


def nest_outputs(flat: List[Any], shape: List[int]) -> Any:
    """Re-nest a flat row-major list of results according to ``shape``.

    Used for ``nested_crossproduct``; for one scattered input this is the
    identity, for two it produces a list of lists, and so on.
    """
    if not shape:
        return flat
    if len(shape) == 1:
        return list(flat)

    def build(level: int, offset: int) -> tuple:
        if level == len(shape) - 1:
            return list(flat[offset:offset + shape[level]]), offset + shape[level]
        out = []
        for _ in range(shape[level]):
            nested, offset = build(level + 1, offset)
            out.append(nested)
        return out, offset

    nested, _ = build(0, 0)
    return nested
