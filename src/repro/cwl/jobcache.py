"""Content-addressed job cache + zero-copy staging.

Every CommandLineTool invocation is assigned a deterministic **job key**
derived from

* the canonicalized tool document (which covers ``baseCommand``,
  ``arguments``, every binding, the output spec and the requirements),
* the canonicalized job order, with every input ``File`` / ``Directory``
  replaced by its *content* fingerprint (path-independent),
* the runtime context's extra environment variables, and
* the granted ``$(runtime.cores)`` / ``$(runtime.ram)`` resources.

A persistent on-disk store maps that key to the files the job produced.  On a
**hit** the files are restored into a fresh output directory with
hardlink-with-copy-fallback staging (:func:`stage_file` — zero-copy on the
same filesystem) and the subprocess never runs; output *collection* re-runs
against the restored files, so cached results flow through exactly the same
code path as cold ones.  On a **miss** the job executes normally and its
output directory is ingested into the store — again by hardlinking.

The store is shared by all four engines (``reference``, ``toil``, ``parsl``,
``parsl-workflow``): the key is computed from engine-independent data, so a
workflow warmed by one engine is warm for the others.

Store layout (everything under one ``cache_dir``)::

    cache_dir/
      entries/<job key>.json     one manifest per cached invocation
      cas/<sha1>                 content-addressed file bodies (hardlinked)

Manifests are written atomically (tmp + ``os.replace``) and the CAS is
add-only, so concurrent scatter shards — or concurrent sessions — can share
one store without corrupting it: the worst case is two writers racing to
create identical content, and whoever loses simply finds the file already
present.  The manifest additionally records the job's *resolved command line*
(canonicalized: scratch-directory and input paths replaced by stable
placeholders) and folds it into the reported ``fingerprint``; the command
line is fully determined by the key's components, which is what lets a warm
run skip rebuilding it.

Known caveats (shared with cwltool's ``--cachedir`` and Parsl's app
memoizer): restored files are hardlinks, so a consumer that *mutates* an
output in place would corrupt the store — CWL tools treat outputs as
immutable; and a tool that is non-deterministic or depends on un-fingerprinted
ambient state (time, network) will happily replay its first recorded run.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.utils.hashing import hash_file, hash_obj
from repro.utils.logging_config import get_logger

logger = get_logger("cwl.jobcache")

#: Environment variable that both names the default store location and —
#: because setting it counts as opting in — enables the cache for engines
#: left at their ``job_cache=None`` default.
CACHE_DIR_ENV = "REPRO_JOBCACHE_DIR"

MANIFEST_VERSION = 1


def default_cache_dir() -> str:
    """The store location used when caching is enabled without a ``cache_dir``."""
    configured = os.environ.get(CACHE_DIR_ENV)
    if configured:
        return configured
    try:
        tag = f"uid{os.getuid()}"
    except AttributeError:  # pragma: no cover - non-POSIX
        tag = "shared"
    return os.path.join(tempfile.gettempdir(), f"repro-jobcache-{tag}")


# --------------------------------------------------------------------- staging


def stage_file(source: str, destination: str, overwrite: bool = True,
               prefer_copy: bool = False) -> str:
    """Stage ``source`` at ``destination``: hardlink, falling back to a copy.

    The zero-copy primitive shared by the job cache, the Toil-like job store
    and final output collection.  Returns ``"link"`` or ``"copy"`` (or
    ``"kept"`` when the destination existed and ``overwrite`` is false).
    Overwrites are atomic: the replacement is prepared under a temporary name
    in the destination directory and ``os.replace``d into place, so readers
    never observe a half-staged file.

    ``prefer_copy=True`` skips the hardlink attempt — used whenever either
    side of the transfer lives in a *shared* directory whose files may later
    be rewritten in place (a hardlink would alias that rewrite into the other
    side).
    """
    source = os.fspath(source)
    destination = os.fspath(destination)
    parent = os.path.dirname(os.path.abspath(destination))
    if parent:
        os.makedirs(parent, exist_ok=True)

    if not overwrite and os.path.exists(destination):
        return "kept"

    if not prefer_copy and not os.path.exists(destination):
        try:
            os.link(source, destination)
            return "link"
        except FileExistsError:
            if not overwrite:
                return "kept"
        except OSError:
            pass  # cross-device, FS without hardlinks, odd sources: copy below

    tmp = os.path.join(
        parent, f".stage-{os.getpid()}-{threading.get_ident()}-{os.path.basename(destination)}"
    )
    try:
        try:
            if prefer_copy:
                raise OSError("copy requested")
            os.link(source, tmp)
            how = "link"
        except OSError:
            shutil.copy2(source, tmp)
            how = "copy"
        os.replace(tmp, destination)
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass
    return how


# ---------------------------------------------------------------- fingerprints

#: Content-hash memo keyed by (realpath, size, mtime_ns): warm re-runs hash
#: each distinct input file once per content change, not once per job.
_FILE_HASH_MEMO: Dict[Tuple[str, int, int], str] = {}
_FILE_HASH_LOCK = threading.Lock()


def file_fingerprint(path: str) -> str:
    """The sha1 of the file's *content*, memoized on (path, size, mtime)."""
    real = os.path.realpath(path)
    stat = os.stat(real)
    memo_key = (real, stat.st_size, stat.st_mtime_ns)
    with _FILE_HASH_LOCK:
        cached = _FILE_HASH_MEMO.get(memo_key)
    if cached is not None:
        return cached
    digest = hash_file(real).split("$", 1)[1]
    with _FILE_HASH_LOCK:
        _FILE_HASH_MEMO[memo_key] = digest
    return digest


def directory_fingerprint(path: str) -> str:
    """A stable fingerprint of a directory tree (names + file contents)."""
    entries: List[Tuple[str, str]] = []
    for root, dirs, files in os.walk(path):
        dirs.sort()
        rel_root = os.path.relpath(root, path)
        for name in sorted(files):
            full = os.path.join(root, name)
            rel = os.path.normpath(os.path.join(rel_root, name))
            try:
                entries.append((rel, file_fingerprint(full)))
            except OSError:
                entries.append((rel, "unreadable"))
        if not files and not dirs:
            entries.append((os.path.normpath(rel_root), "emptydir"))
    return hash_obj(tuple(entries), algorithm="sha1")


def tool_fingerprint(tool: Any) -> str:
    """Canonical fingerprint of a tool document, pinned on the tool instance.

    Hashes the raw normalised document (dict order independent via
    :func:`~repro.utils.hashing.hash_obj`), which covers the command
    template, bindings, requirements *and* the output spec.
    """
    pinned = getattr(tool, "_jobcache_doc_fp", None)
    if pinned is not None:
        return pinned
    raw = getattr(tool, "raw", None) or {}
    fingerprint = hash_obj(raw, algorithm="sha1")
    try:
        tool._jobcache_doc_fp = fingerprint
    except Exception:  # pragma: no cover - slotted/frozen tool stand-ins
        pass
    return fingerprint


def _canonical_value(value: Any) -> Any:
    """Replace File/Directory values with content identities, recursively."""
    if isinstance(value, dict):
        cls = value.get("class")
        if cls == "File":
            path = value.get("path")
            if path and os.path.exists(path):
                identity = file_fingerprint(path)
            elif value.get("checksum"):
                identity = str(value["checksum"]).split("$", 1)[-1]
            elif value.get("contents") is not None:
                identity = hash_obj(value["contents"], algorithm="sha1")
            else:
                identity = f"missing:{path!r}"
            return ("File", value.get("basename") or os.path.basename(path or ""), identity)
        if cls == "Directory":
            path = value.get("path")
            if path and os.path.isdir(path):
                identity = directory_fingerprint(path)
            else:
                identity = f"missing:{path!r}"
            return ("Directory", value.get("basename") or os.path.basename(path or ""), identity)
        return tuple(sorted((k, _canonical_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(item) for item in value)
    return value


def job_key(tool: Any, job_order: Dict[str, Any], *, cores: int, ram_mb: int,
            extra_env: Optional[Dict[str, str]] = None) -> str:
    """The deterministic cache key of one CommandLineTool invocation.

    ``None``-valued job-order entries are dropped so that an omitted optional
    input and an explicit ``null`` fingerprint identically (they produce the
    same command line).
    """
    canonical_order = tuple(sorted(
        (key, _canonical_value(value))
        for key, value in job_order.items() if value is not None
    ))
    payload = (
        tool_fingerprint(tool),
        canonical_order,
        tuple(sorted((extra_env or {}).items())),
        int(cores),
        int(ram_mb),
    )
    return hash_obj(payload, algorithm="sha1")


def canonical_command(argv: List[str], stdin: Optional[str], stdout: Optional[str],
                      stderr: Optional[str], environment: Dict[str, str],
                      outdir: str, tmpdir: Optional[str],
                      job_order: Dict[str, Any]) -> Dict[str, Any]:
    """The resolved command line with run-specific paths canonicalized.

    Scratch directories become ``$OUTDIR`` / ``$TMPDIR`` and each input
    File/Directory path becomes ``$INPUT[<content-hash>]``, so the recorded
    command is stable across re-runs that only differ in where they staged
    their data.  Folded into the manifest's ``fingerprint``.
    """
    substitutions: List[Tuple[str, str]] = []

    def collect(value: Any) -> None:
        if isinstance(value, dict):
            cls = value.get("class")
            path = value.get("path")
            if cls in ("File", "Directory") and path:
                identity = _canonical_value(value)[-1]
                substitutions.append((str(path), f"$INPUT[{identity}]"))
                return
            for item in value.values():
                collect(item)
        elif isinstance(value, (list, tuple)):
            for item in value:
                collect(item)

    collect(job_order)
    if outdir:
        substitutions.append((outdir, "$OUTDIR"))
    if tmpdir:
        substitutions.append((tmpdir, "$TMPDIR"))
    # Longest-first so nested paths resolve deterministically.
    substitutions.sort(key=lambda pair: len(pair[0]), reverse=True)

    def canon(token: Optional[str]) -> Optional[str]:
        if token is None:
            return None
        for concrete, placeholder in substitutions:
            token = token.replace(concrete, placeholder)
        return token

    return {
        "argv": [canon(token) for token in argv],
        "stdin": canon(stdin),
        "stdout": canon(stdout),
        "stderr": canon(stderr),
        "environment": {name: canon(value) for name, value in sorted(environment.items())},
    }


# ----------------------------------------------------------------------- store


@dataclass
class CacheEntry:
    """One validated manifest loaded from the store."""

    key: str
    fingerprint: str
    files: Dict[str, Dict[str, Any]]    # relpath -> {"cas": id, "size": bytes}
    dirs: List[str]                     # empty directories to recreate
    streams: Dict[str, Optional[str]]   # "stdout"/"stderr" -> relpath (or None)
    exit_code: int = 0
    command: Dict[str, Any] = field(default_factory=dict)

    def stream_name(self, which: str) -> Optional[str]:
        return self.streams.get(which)


@dataclass
class CacheStats:
    """Monotonic per-store counters (snapshot with :meth:`as_dict`)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    restored_files: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "restored_files": self.restored_files}


class JobCache:
    """Persistent content-addressed store of CommandLineTool results."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = os.path.abspath(cache_dir)
        self.entries_dir = os.path.join(self.cache_dir, "entries")
        self.cas_dir = os.path.join(self.cache_dir, "cas")
        os.makedirs(self.entries_dir, exist_ok=True)
        os.makedirs(self.cas_dir, exist_ok=True)
        self.stats = CacheStats()
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------ lookup

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.entries_dir, f"{key}.json")

    def _cas_path(self, cas_id: str) -> str:
        return os.path.join(self.cas_dir, cas_id)

    def lookup(self, key: str, record: bool = True) -> Optional[CacheEntry]:
        """Load and validate the manifest for ``key``; records hit/miss stats.

        A manifest whose CAS bodies have gone missing (a partially deleted
        store) is treated as a miss, so the entry is transparently re-created
        by the run that follows.
        """
        entry = self._load_entry(key)
        if record:
            with self._stats_lock:
                if entry is None:
                    self.stats.misses += 1
                else:
                    self.stats.hits += 1
        return entry

    def record_hit(self) -> None:
        """Count a hit whose lookup ran with ``record=False`` (probe pattern)."""
        with self._stats_lock:
            self.stats.hits += 1

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a damaged store artifact aside (``*.corrupt``) — never raise.

        Quarantining (rather than deleting) keeps the evidence for post-mortem
        while guaranteeing the next lookup is a clean miss and the re-executed
        job re-publishes a fresh body under the same name.
        """
        target = path + ".corrupt"
        try:
            os.replace(path, target)
            logger.warning("quarantined corrupt job-cache artifact %s (%s)",
                           path, reason)
        except OSError:
            logger.warning("could not quarantine job-cache artifact %s (%s)",
                           path, reason, exc_info=True)

    def _load_entry(self, key: str) -> Optional[CacheEntry]:
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError:
            return None  # no entry — the ordinary miss
        except ValueError:
            # Unparseable manifest (torn write, disk damage): quarantine it
            # and fall through to a miss instead of raising mid-run.
            self._quarantine(path, "unparseable manifest")
            return None
        if data.get("version") != MANIFEST_VERSION:
            return None
        files = dict(data.get("files") or {})
        for spec in files.values():
            body = self._cas_path(spec.get("cas", ""))
            # A missing, truncated or bit-flipped body (e.g. a shared file
            # later rewritten in place) quarantines the entry rather than
            # replaying damaged data.  Size is the cheap first gate; the
            # content fingerprint catches same-size corruption and is memoized
            # on (path, size, mtime), so intact warm paths hash once, ever.
            try:
                if os.path.getsize(body) != int(spec.get("size", -1)):
                    self._quarantine(body, f"size mismatch for entry {key}")
                    self._quarantine(path, "stale CAS body")
                    return None
                if file_fingerprint(body) != spec.get("cas"):
                    self._quarantine(body, f"content mismatch for entry {key}")
                    self._quarantine(path, "corrupt CAS body")
                    return None
            except OSError:
                self._quarantine(path, f"missing CAS body {os.path.basename(body)}")
                return None
        return CacheEntry(
            key=key,
            fingerprint=data.get("fingerprint", key),
            files=files,
            dirs=list(data.get("dirs") or []),
            streams=dict(data.get("streams") or {}),
            exit_code=int(data.get("exit_code", 0)),
            command=dict(data.get("command") or {}),
        )

    # ----------------------------------------------------------------- restore

    def restore(self, entry: CacheEntry, outdir: str,
                exclude: Tuple[str, ...] = (),
                prefer_copy: bool = False) -> None:
        """Stage every cached file of ``entry`` into ``outdir``.

        Zero-copy (hardlink) by default; pass ``prefer_copy=True`` when
        ``outdir`` is a *shared* directory whose files may later be rewritten
        in place, which would otherwise alias into the store.
        """
        os.makedirs(outdir, exist_ok=True)
        excluded = {os.path.normpath(rel) for rel in exclude if rel}
        for rel in entry.dirs:
            os.makedirs(os.path.join(outdir, rel), exist_ok=True)
        restored = 0
        for rel, spec in entry.files.items():
            if os.path.normpath(rel) in excluded:
                continue
            stage_file(self._cas_path(spec["cas"]), os.path.join(outdir, rel),
                       prefer_copy=prefer_copy)
            restored += 1
        with self._stats_lock:
            self.stats.restored_files += restored

    def cas_body(self, entry: CacheEntry, rel: str) -> Optional[str]:
        """Absolute CAS path of the body cached for ``rel``, if any."""
        spec = entry.files.get(os.path.normpath(rel)) if rel else None
        return self._cas_path(spec["cas"]) if spec else None

    # ------------------------------------------------------------------- store

    def ingest_file(self, path: str, prefer_copy: bool = False) -> Dict[str, Any]:
        """Add one file body to the CAS; returns its ``{"cas", "size"}`` spec.

        Hardlinked (zero-copy) by default; ``prefer_copy=True`` for files in
        shared directories that may later be rewritten in place.
        """
        cas_id = file_fingerprint(path)
        destination = self._cas_path(cas_id)
        size = os.path.getsize(path)
        if not os.path.exists(destination):
            stage_file(path, destination, overwrite=False, prefer_copy=prefer_copy)
        return {"cas": cas_id, "size": size}

    def store_outdir(self, key: str, outdir: str, *,
                     stdout_name: Optional[str] = None,
                     stderr_name: Optional[str] = None,
                     exit_code: int = 0,
                     command: Optional[Dict[str, Any]] = None) -> CacheEntry:
        """Snapshot a job's entire (private) output directory under ``key``."""
        files: Dict[str, Dict[str, Any]] = {}
        empty_dirs: List[str] = []
        for root, dirs, names in os.walk(outdir):
            rel_root = os.path.relpath(root, outdir)
            for name in names:
                full = os.path.join(root, name)
                if not os.path.isfile(full):
                    continue  # sockets/fifos are not cacheable
                rel = os.path.normpath(os.path.join(rel_root, name))
                files[rel] = self.ingest_file(full)
            if not names and not dirs and rel_root != ".":
                empty_dirs.append(os.path.normpath(rel_root))
        return self._write_entry(key, files, empty_dirs,
                                 stdout_name=stdout_name, stderr_name=stderr_name,
                                 exit_code=exit_code, command=command)

    def store_files(self, key: str, outdir: str, paths: List[str], *,
                    stdout_name: Optional[str] = None,
                    stderr_name: Optional[str] = None,
                    exit_code: int = 0,
                    command: Optional[Dict[str, Any]] = None,
                    prefer_copy: bool = True) -> Optional[CacheEntry]:
        """Store an explicit file list (used where the outdir is shared).

        Paths outside ``outdir`` cannot be expressed as store-relative names,
        and non-regular-file paths (a Directory output, a vanished file)
        cannot be represented by this file-list form at all; either way the
        job is simply not cached (returns ``None``) rather than cached
        incompletely — a partial entry would make the warm run diverge from
        the cold one.  Defaults to copy-ingestion because a shared
        directory's files may later be rewritten in place.
        """
        outdir = os.path.abspath(outdir)
        files: Dict[str, Dict[str, Any]] = {}
        for path in paths:
            full = os.path.abspath(path)
            if not os.path.isfile(full):
                logger.debug("not caching %s: output %s is not a regular file", key, full)
                return None
            rel = os.path.relpath(full, outdir)
            if rel.startswith(".."):
                logger.debug("not caching %s: output %s escapes the job directory", key, full)
                return None
            files[os.path.normpath(rel)] = self.ingest_file(full, prefer_copy=prefer_copy)
        return self._write_entry(key, files, [],
                                 stdout_name=stdout_name, stderr_name=stderr_name,
                                 exit_code=exit_code, command=command)

    def _write_entry(self, key: str, files: Dict[str, Dict[str, Any]],
                     dirs: List[str], *,
                     stdout_name: Optional[str], stderr_name: Optional[str],
                     exit_code: int, command: Optional[Dict[str, Any]]) -> CacheEntry:
        fingerprint = hash_obj((key, command or {}), algorithm="sha1")
        manifest = {
            "version": MANIFEST_VERSION,
            "key": key,
            "fingerprint": fingerprint,
            "files": files,
            "dirs": dirs,
            "streams": {"stdout": stdout_name, "stderr": stderr_name},
            "exit_code": exit_code,
            "command": command or {},
            "created_at": time.time(),
        }
        path = self._entry_path(key)
        tmp = f"{path}.{os.getpid()}-{threading.get_ident()}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
        os.replace(tmp, path)
        with self._stats_lock:
            self.stats.stores += 1
        return CacheEntry(key=key, fingerprint=fingerprint, files=files, dirs=dirs,
                          streams={"stdout": stdout_name, "stderr": stderr_name},
                          exit_code=exit_code, command=command or {})

    # ------------------------------------------------------------------- admin

    def snapshot(self) -> Dict[str, int]:
        """A point-in-time copy of the counters (thread-safe)."""
        with self._stats_lock:
            return self.stats.as_dict()

    def entry_count(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.entries_dir) if name.endswith(".json"))
        except OSError:
            return 0

    def clear(self) -> None:
        """Drop every entry and CAS body (the store directory itself remains)."""
        for directory in (self.entries_dir, self.cas_dir):
            shutil.rmtree(directory, ignore_errors=True)
            os.makedirs(directory, exist_ok=True)

    def __repr__(self) -> str:
        return f"<JobCache {self.cache_dir!r} {self.snapshot()}>"


# -------------------------------------------------------- process-wide handles

_CACHES: Dict[str, JobCache] = {}
_CACHES_LOCK = threading.Lock()


def get_job_cache(cache_dir: Optional[str] = None) -> JobCache:
    """The process-wide :class:`JobCache` for ``cache_dir`` (created on demand).

    Keyed by real path so every engine — and every thread — pointing at the
    same store shares one instance and therefore one set of statistics.
    """
    directory = os.path.realpath(cache_dir or default_cache_dir())
    with _CACHES_LOCK:
        cache = _CACHES.get(directory)
        if cache is None:
            cache = JobCache(directory)
            _CACHES[directory] = cache
        return cache


def resolve_job_cache(candidate: Any) -> Optional[JobCache]:
    """Coerce ``True`` / a directory path / a :class:`JobCache` / ``None``."""
    if candidate is None or candidate is False:
        return None
    if isinstance(candidate, JobCache):
        return candidate
    if candidate is True:
        return get_job_cache(None)
    return get_job_cache(os.fspath(candidate))


def relative_to_outdir(path: Optional[str], outdir: str) -> Optional[str]:
    """``path`` as an outdir-relative name, or ``None`` when it escapes it.

    Shared by the store-ingestion paths (manifest stream names must be
    store-relative).  Both operands are absolutized first.
    """
    if not path:
        return None
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(outdir))
    return None if rel.startswith("..") else rel
