"""Event-driven scheduler for :class:`~repro.cwl.graph.WorkflowGraph` nodes.

Replaces the polling loops the workflow engine used to run (re-scanning every
pending step under a lock, O(V²) in the step count) and the nested
per-scatter-step thread pools.  Scheduling is dependency-counting: every node
carries its predecessor count; a completion event decrements each successor's
count and enqueues the ones that hit zero into a priority heap (critical-path
priority first, insertion order as the tie-break).  Work runs on **one**
bounded pool — ``max_workers`` is a global cap on live worker threads, however
deeply scatter and subworkflows nest — and in serial mode the same bookkeeping
runs inline with no threads at all.

Dynamic expansion: a node's executor may return an :class:`Expansion` —
freshly created nodes (scatter shards, shard subgraphs, a gather node) that
join the running schedule.  ``retarget`` moves the expanding node's successors
onto the expansion's terminal node (the gather), so downstream consumers wait
for assembled scatter outputs while the shards themselves interleave freely
with every other ready node in the shared pool.
"""

from __future__ import annotations

import asyncio
import concurrent.futures as cf
import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cwl.errors import WorkflowException
from repro.cwl.graph import GraphNode, WorkflowGraph

#: A node executor: runs one node, optionally returning new nodes to schedule.
NodeExecutor = Callable[[GraphNode], Optional["Expansion"]]

#: Scheduler node states (also what the run journal records).
NODE_PENDING = "pending"
NODE_RUNNING = "running"
NODE_DONE = "done"
NODE_FAILED = "failed"
NODE_SKIPPED = "skipped"


@dataclass
class Expansion:
    """Nodes created at runtime by executing a node (scatter expansion)."""

    #: The new nodes, in creation order.
    nodes: List[GraphNode] = field(default_factory=list)
    #: node id -> predecessor node ids (all within this expansion).
    preds: Dict[str, List[str]] = field(default_factory=dict)
    #: Successors of the expanding node are moved onto this node (the gather),
    #: so downstream work waits for assembled outputs, not the scatter node.
    retarget: Optional[str] = None


class GraphScheduler:
    """Run every node of a graph, respecting dependencies and ``max_workers``."""

    def __init__(self, graph: WorkflowGraph, execute: NodeExecutor,
                 parallel: bool = False, max_workers: int = 8,
                 on_error: str = "stop", journal: Optional[object] = None) -> None:
        if on_error not in ("stop", "continue"):
            raise ValueError(f"on_error must be 'stop' or 'continue', got {on_error!r}")
        self.graph = graph
        self.execute = execute
        self.parallel = parallel
        self.max_workers = max(1, int(max_workers))
        #: ``"stop"`` aborts the whole DAG on the first failed node;
        #: ``"continue"`` poisons only the failed node's transitive successors
        #: (marked ``skipped``, cwltool-style permanentFail propagation) and
        #: lets independent branches finish.
        self.on_error = on_error
        #: Optional :class:`~repro.cwl.journal.RunJournal`; every node state
        #: transition is appended to it.
        self.journal = journal
        self._lock = threading.Lock()
        self._event = threading.Condition(self._lock)
        self._nodes: Dict[str, GraphNode] = dict(graph.nodes)
        self._indegree: Dict[str, int] = dict(graph.indegree)
        self._successors: Dict[str, List[str]] = {nid: list(succs)
                                                  for nid, succs in graph.successors.items()}
        self._ready: List = []          # heap of (-priority, seq, node_id)
        self._seq = itertools.count()
        self._pending = len(self._nodes)
        self._completed: set = set()
        self._skipped: set = set()
        self._inflight = 0
        self._failure: Optional[BaseException] = None
        self._pool: Optional[cf.ThreadPoolExecutor] = None
        #: Final state per node id (``pending``/``running``/``done``/
        #: ``failed``/``skipped``) — inspect after :meth:`run`.
        self.states: Dict[str, str] = {nid: NODE_PENDING for nid in self._nodes}
        #: node id -> the exception that failed it (``on_error="continue"``).
        self.failures: Dict[str, BaseException] = {}

    # ------------------------------------------------------------------ public

    def run(self) -> None:
        """Execute all nodes; raises the first node failure (``on_error="stop"``).

        With ``on_error="continue"`` node failures do not raise — they are
        collected in :attr:`failures`, their transitive successors are marked
        ``skipped`` in :attr:`states`, and every independent branch still
        executes.
        """
        for node_id in self.graph.topological_order():
            if self._indegree[node_id] == 0:
                self._push(node_id)
        if self.parallel:
            self._run_parallel()
        else:
            self._run_serial()

    # ------------------------------------------------------------------ serial

    def _run_serial(self) -> None:
        while self._ready:
            node_id = self._pop()
            node = self._nodes[node_id]
            self._set_state(node_id, NODE_RUNNING)
            try:
                expansion = self.execute(node)
                self._complete(node_id, expansion)
            except BaseException as exc:  # noqa: BLE001 — classified below
                with self._lock:
                    self._node_failed_locked(node_id, exc)
                if self._failure is not None:
                    raise self._failure
        self._check_drained()

    # ---------------------------------------------------------------- parallel

    def _run_parallel(self) -> None:
        self._pool = cf.ThreadPoolExecutor(max_workers=self.max_workers,
                                           thread_name_prefix="cwl-dag")
        try:
            with self._lock:
                self._dispatch()
                while self._pending and self._failure is None:
                    if self._inflight == 0 and not self._ready:
                        break  # stalled; reported by _check_drained below
                    self._event.wait()
            # Let in-flight workers finish before surfacing the outcome.
        except BaseException as exc:  # interrupt: stop feeding, don't block
            with self._lock:
                if self._failure is None:
                    self._failure = exc
            # wait=False: in-flight jobs may sit in minutes-long subprocess
            # waits; the caller reaps those (RuntimeContext.terminate_processes)
            # and the workers then drain on their own threads.
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            raise
        self._pool.shutdown(wait=True)
        self._pool = None
        if self._failure is not None:
            raise self._failure
        self._check_drained()

    def _worker(self, node_id: str) -> None:
        node = self._nodes[node_id]
        expansion: Optional[Expansion] = None
        failure: Optional[BaseException] = None
        try:
            expansion = self.execute(node)
        except BaseException as exc:  # noqa: BLE001 — re-raised by run()
            failure = exc
        with self._lock:
            self._inflight -= 1
            try:
                if failure is not None:
                    self._node_failed_locked(node_id, failure)
                elif self._failure is None:
                    self._complete(node_id, expansion)
                if self._failure is None:
                    self._dispatch()
            except BaseException as exc:  # noqa: BLE001 — bookkeeping fault
                # A bug in completion bookkeeping (e.g. a malformed dynamic
                # expansion) must surface as the run's failure — swallowing it
                # here would leave run() blocked in _event.wait() forever.
                if self._failure is None:
                    self._failure = exc
            finally:
                self._event.notify_all()

    def _dispatch(self) -> None:
        """Submit ready nodes, highest priority first, up to the worker cap."""
        while self._ready and self._inflight < self.max_workers and self._failure is None:
            node_id = self._pop()
            self._set_state(node_id, NODE_RUNNING)
            self._inflight += 1
            self._pool.submit(self._worker, node_id)

    # ------------------------------------------------------------- bookkeeping

    def _push(self, node_id: str) -> None:
        heapq.heappush(self._ready, (-self._nodes[node_id].priority,
                                     next(self._seq), node_id))

    def _pop(self) -> str:
        return heapq.heappop(self._ready)[2]

    def _set_state(self, node_id: str, state: str) -> None:
        self.states[node_id] = state
        if self.journal is not None:
            self.journal.node_state(node_id, state)

    def _complete(self, node_id: str, expansion: Optional[Expansion]) -> None:
        """Record a completion: integrate any expansion, wake successors."""
        if expansion is not None and expansion.nodes:
            self._apply_expansion(node_id, expansion)
        for successor in self._successors.get(node_id, ()):
            self._indegree[successor] -= 1
            if self._indegree[successor] == 0 and successor not in self._skipped:
                self._push(successor)
        self._completed.add(node_id)
        self._pending -= 1
        self._set_state(node_id, NODE_DONE)

    def _node_failed_locked(self, node_id: str, exc: BaseException) -> None:
        """Record a node failure (caller holds the lock in parallel mode).

        ``on_error="stop"``: the exception becomes the run's failure and
        aborts the DAG.  ``on_error="continue"``: the failure poisons only the
        node's transitive successors — each is marked ``skipped`` and removed
        from the schedule — while every independent branch keeps running.
        """
        self.failures[node_id] = exc
        self._set_state(node_id, NODE_FAILED)
        if self.on_error != "continue":
            if self._failure is None:
                self._failure = exc
            return
        self._pending -= 1
        for skipped_id in self._transitive_successors(node_id):
            if (skipped_id in self._completed or skipped_id in self._skipped
                    or skipped_id in self.failures):
                continue
            self._skipped.add(skipped_id)
            self._pending -= 1
            self._set_state(skipped_id, NODE_SKIPPED)

    def _transitive_successors(self, node_id: str) -> List[str]:
        """Every node reachable from ``node_id`` via dependency edges."""
        seen: set = set()
        frontier = list(self._successors.get(node_id, ()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._successors.get(current, ()))
        return sorted(seen)

    def _apply_expansion(self, node_id: str, expansion: Expansion) -> None:
        base_priority = self._nodes[node_id].priority
        for node in expansion.nodes:
            if node.id in self._nodes:
                raise WorkflowException(f"duplicate dynamic node id {node.id!r}")
            # Dynamic nodes inherit the expanding node's critical-path rank.
            node.priority = base_priority
            self._nodes[node.id] = node
            self.states[node.id] = NODE_PENDING
            self._successors[node.id] = []
            self._indegree[node.id] = 0
        for new_id, preds in expansion.preds.items():
            self._indegree[new_id] = len(preds)
            for pred in preds:
                self._successors[pred].append(new_id)
        self._pending += len(expansion.nodes)
        if expansion.retarget is not None:
            moved = self._successors.get(node_id, [])
            self._successors[expansion.retarget].extend(moved)
            self._successors[node_id] = []
        for node in expansion.nodes:
            if self._indegree[node.id] == 0:
                self._push(node.id)

    def _check_drained(self) -> None:
        if not self._pending:
            return
        resolved = self._completed | self._skipped | set(self.failures)
        stalled = sorted(set(self._nodes) - resolved)
        predecessors: Dict[str, List[str]] = {nid: [] for nid in self._nodes}
        for pred, succs in self._successors.items():
            for succ in succs:
                predecessors.setdefault(succ, []).append(pred)
        details = []
        for node_id in stalled[:20]:
            unmet = sorted(p for p in predecessors.get(node_id, ())
                           if p not in self._completed)
            details.append(
                f"{node_id} (indegree {self._indegree.get(node_id)}, "
                f"unmet: {', '.join(unmet) if unmet else '<none>'})")
        if len(stalled) > 20:
            details.append(f"... and {len(stalled) - 20} more")
        raise WorkflowException(
            f"workflow stalled: {len(stalled)} node(s) cannot run with "
            f"{self._inflight} in flight; stalled nodes: " + "; ".join(details))


class _CallableStageExecutor:
    """Adapt a plain :data:`NodeExecutor` to the three-stage protocol.

    The whole node runs in the exec lane; stage and collect are no-ops and
    nothing is tiny.  Used when :class:`PipelineScheduler` is handed a bare
    callable instead of a stage executor.
    """

    __slots__ = ("_execute",)

    def __init__(self, execute: NodeExecutor) -> None:
        self._execute = execute

    def is_tiny(self, node: GraphNode) -> bool:
        return False

    def stage(self, node: GraphNode) -> Any:
        return None

    def execute(self, node: GraphNode, staged: Any) -> Any:
        return self._execute(node)

    def collect(self, node: GraphNode, staged: Any, result: Any) -> Optional[Expansion]:
        return result


class PipelineScheduler(GraphScheduler):
    """Asyncio-cored scheduler: each node is a stage→exec→collect pipeline.

    The dispatcher is one event loop; staging of ready successors and output
    collection of finished jobs run on a small blocking pool (``max_workers``
    threads, ``cwl-pipe`` prefix) while subprocess execution runs on a
    supervised exec lane (at most ``max_inflight`` threads, ``cwl-exec``
    prefix), so the three steps of *different* jobs overlap freely.  An
    admission semaphore bounds the in-flight window to ``max_inflight`` and
    per-stage semaphores backpressure staging/collection, so a 10k-node
    ready frontier never explodes threads or memory: the thread bound is
    ``max_workers + max_inflight`` regardless of graph width.

    Tiny-job batching: nodes the executor declares *tiny* (cache-hit replays,
    zero-cost expression/plumbing nodes) are coalesced — consecutive ready
    runs execute inline on the event loop with no task, no pool round-trip
    and no per-node loop iteration, then yield once per batch.

    The executor is duck-typed: ``stage(node)``, ``execute(node, staged)``,
    ``collect(node, staged, result) -> Optional[Expansion]``,
    ``is_tiny(node)``.  A plain callable is adapted (everything in the exec
    lane, nothing tiny).  All :class:`GraphScheduler` bookkeeping — heap
    order, dynamic expansion, ``on_error`` poisoning, journal state
    transitions, stall reporting — is inherited unchanged, which is what
    keeps the two cores' observable semantics identical.
    """

    #: Upper bound on one inline tiny run before yielding to the loop.
    TINY_BATCH_MAX = 64

    def __init__(self, graph: WorkflowGraph, execute: Optional[NodeExecutor] = None,
                 *, executor: Optional[Any] = None, max_inflight: int = 64,
                 max_workers: int = 8, on_error: str = "stop",
                 journal: Optional[object] = None) -> None:
        if executor is None:
            if execute is None:
                raise ValueError("PipelineScheduler needs an executor or a callable")
            executor = _CallableStageExecutor(execute)
        super().__init__(graph, execute or (lambda node: None), parallel=True,
                         max_workers=max_workers, on_error=on_error,
                         journal=journal)
        self.executor = executor
        self.max_inflight = max(1, int(max_inflight))
        #: Cumulative wall time spent in each pipeline step, plus node/batch
        #: counts — surfaced as ``ExecutionResult.stage_timings``.
        self.stage_timings: Dict[str, Any] = {
            "stage_s": 0.0, "exec_s": 0.0, "collect_s": 0.0,
            "nodes": 0, "tiny_nodes": 0, "tiny_batches": 0,
        }
        self._blocking_pool: Optional[cf.ThreadPoolExecutor] = None
        self._exec_pool: Optional[cf.ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ public

    def run(self) -> None:
        for node_id in self.graph.topological_order():
            if self._indegree[node_id] == 0:
                self._push(node_id)
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # interrupt: stop feeding, don't block
            with self._lock:
                if self._failure is None:
                    self._failure = exc
            for pool in (self._blocking_pool, self._exec_pool):
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
            self._blocking_pool = self._exec_pool = None
            raise
        if self._failure is not None:
            raise self._failure
        self._check_drained()

    # -------------------------------------------------------------- dispatcher

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._admission = asyncio.Semaphore(self.max_inflight)
        self._stage_sem = asyncio.Semaphore(self.max_workers)
        self._collect_sem = asyncio.Semaphore(self.max_workers)
        self._wake = asyncio.Event()
        blocking = self._blocking_pool = cf.ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="cwl-pipe")
        exec_pool = self._exec_pool = cf.ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="cwl-exec")
        tasks = self._task_set = set()
        try:
            while True:
                progressed = await self._dispatch_ready(loop, blocking,
                                                        exec_pool, tasks)
                with self._lock:
                    finished = self._pending == 0 or self._failure is not None
                if not tasks and (finished or not progressed):
                    # Done, failed-and-drained, or stalled (reported by
                    # _check_drained after the pools wind down).
                    break
                if not progressed:
                    # Nothing dispatchable (admission full, or ready empty).
                    # Consume one wake signal per rescan: if a completion
                    # already landed, rescan immediately; otherwise park.
                    # Never skip the await based on heap state alone — a
                    # ready-but-inadmissible top would busy-spin the loop
                    # and starve the very tasks that would free a slot.
                    if self._wake.is_set():
                        self._wake.clear()
                        continue
                    await self._wake.wait()
        except BaseException as exc:  # interrupt unwinding the dispatcher
            with self._lock:
                if self._failure is None:
                    self._failure = exc
            for task in list(tasks):
                task.cancel()
            # wait=False: in-flight jobs may sit in minutes-long subprocess
            # waits; the caller reaps those (RuntimeContext.terminate_processes)
            # and the workers then drain on their own threads.
            blocking.shutdown(wait=False, cancel_futures=True)
            exec_pool.shutdown(wait=False, cancel_futures=True)
            raise
        blocking.shutdown(wait=True)
        exec_pool.shutdown(wait=True)
        self._blocking_pool = self._exec_pool = None

    async def _dispatch_ready(self, loop, blocking, exec_pool, tasks) -> bool:
        """Drain the ready heap in priority order; return whether we did work.

        Tiny runs execute inline; heavy nodes become pipeline tasks while
        admission slots remain.  Stops (without busy-waiting) when the heap
        is empty, the in-flight window is full, or the run has failed.
        """
        progressed = False
        while True:
            with self._lock:
                if self._failure is not None or not self._ready:
                    return progressed
                top_id = self._ready[0][2]
                tiny = self.executor.is_tiny(self._nodes[top_id])
                if not tiny and self._admission.locked():
                    return progressed  # backpressure: wait for a completion
                node_id = self._pop()
                self._set_state(node_id, NODE_RUNNING)
            progressed = True
            if tiny:
                await self._run_tiny_batch(node_id)
            else:
                await self._admission.acquire()
                with self._lock:
                    self._inflight += 1
                task = loop.create_task(
                    self._pipeline(node_id, loop, blocking, exec_pool))
                tasks.add(task)

    async def _run_tiny_batch(self, first_id: str) -> None:
        """Execute ``first_id`` plus consecutive ready tiny nodes inline.

        No task, no pool round-trip, no per-node event-loop iteration: the
        whole run executes synchronously on the loop, then yields once so
        completions of heavy jobs can interleave between batches.
        """
        batch = 0
        node_id: Optional[str] = first_id
        started = time.perf_counter()
        while node_id is not None:
            node = self._nodes[node_id]
            try:
                staged = self.executor.stage(node)
                result = self.executor.execute(node, staged)
                expansion = self.executor.collect(node, staged, result)
                with self._lock:
                    self._complete(node_id, expansion)
            except BaseException as exc:  # noqa: BLE001 — classified below
                with self._lock:
                    self._node_failed_locked(node_id, exc)
            batch += 1
            node_id = None
            if batch < self.TINY_BATCH_MAX:
                with self._lock:
                    if self._failure is None and self._ready:
                        top_id = self._ready[0][2]
                        if self.executor.is_tiny(self._nodes[top_id]):
                            node_id = self._pop()
                            self._set_state(node_id, NODE_RUNNING)
        with self._lock:
            self.stage_timings["tiny_nodes"] += batch
            self.stage_timings["tiny_batches"] += 1
            self.stage_timings["exec_s"] += time.perf_counter() - started
        await asyncio.sleep(0)

    async def _pipeline(self, node_id: str, loop, blocking, exec_pool) -> None:
        """One heavy node's three-stage lifecycle, then completion bookkeeping."""
        node = self._nodes[node_id]
        expansion: Optional[Expansion] = None
        failure: Optional[BaseException] = None
        stage_s = exec_s = collect_s = 0.0
        try:
            t0 = time.perf_counter()
            async with self._stage_sem:
                staged = await loop.run_in_executor(
                    blocking, self.executor.stage, node)
            t1 = time.perf_counter()
            result = await loop.run_in_executor(
                exec_pool, self.executor.execute, node, staged)
            t2 = time.perf_counter()
            async with self._collect_sem:
                expansion = await loop.run_in_executor(
                    blocking, self.executor.collect, node, staged, result)
            t3 = time.perf_counter()
            stage_s, exec_s, collect_s = t1 - t0, t2 - t1, t3 - t2
        except BaseException as exc:  # noqa: BLE001 — re-raised by run()
            failure = exc
        with self._lock:
            self._inflight -= 1
            self.stage_timings["stage_s"] += stage_s
            self.stage_timings["exec_s"] += exec_s
            self.stage_timings["collect_s"] += collect_s
            self.stage_timings["nodes"] += 1
            try:
                if failure is not None:
                    self._node_failed_locked(node_id, failure)
                elif self._failure is None:
                    self._complete(node_id, expansion)
            except BaseException as exc:  # noqa: BLE001 — bookkeeping fault
                # A bug in completion bookkeeping must surface as the run's
                # failure — swallowing it would park the dispatcher forever.
                if self._failure is None:
                    self._failure = exc
        # Leave the task set before signalling the dispatcher, so its
        # "all drained?" check never sees this finished task as live.
        self._task_set.discard(asyncio.current_task())
        self._admission.release()
        self._wake.set()
