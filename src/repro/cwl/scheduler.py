"""Event-driven scheduler for :class:`~repro.cwl.graph.WorkflowGraph` nodes.

Replaces the polling loops the workflow engine used to run (re-scanning every
pending step under a lock, O(V²) in the step count) and the nested
per-scatter-step thread pools.  Scheduling is dependency-counting: every node
carries its predecessor count; a completion event decrements each successor's
count and enqueues the ones that hit zero into a priority heap (critical-path
priority first, insertion order as the tie-break).  Work runs on **one**
bounded pool — ``max_workers`` is a global cap on live worker threads, however
deeply scatter and subworkflows nest — and in serial mode the same bookkeeping
runs inline with no threads at all.

Dynamic expansion: a node's executor may return an :class:`Expansion` —
freshly created nodes (scatter shards, shard subgraphs, a gather node) that
join the running schedule.  ``retarget`` moves the expanding node's successors
onto the expansion's terminal node (the gather), so downstream consumers wait
for assembled scatter outputs while the shards themselves interleave freely
with every other ready node in the shared pool.
"""

from __future__ import annotations

import concurrent.futures as cf
import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cwl.errors import WorkflowException
from repro.cwl.graph import GraphNode, WorkflowGraph

#: A node executor: runs one node, optionally returning new nodes to schedule.
NodeExecutor = Callable[[GraphNode], Optional["Expansion"]]

#: Scheduler node states (also what the run journal records).
NODE_PENDING = "pending"
NODE_RUNNING = "running"
NODE_DONE = "done"
NODE_FAILED = "failed"
NODE_SKIPPED = "skipped"


@dataclass
class Expansion:
    """Nodes created at runtime by executing a node (scatter expansion)."""

    #: The new nodes, in creation order.
    nodes: List[GraphNode] = field(default_factory=list)
    #: node id -> predecessor node ids (all within this expansion).
    preds: Dict[str, List[str]] = field(default_factory=dict)
    #: Successors of the expanding node are moved onto this node (the gather),
    #: so downstream work waits for assembled outputs, not the scatter node.
    retarget: Optional[str] = None


class GraphScheduler:
    """Run every node of a graph, respecting dependencies and ``max_workers``."""

    def __init__(self, graph: WorkflowGraph, execute: NodeExecutor,
                 parallel: bool = False, max_workers: int = 8,
                 on_error: str = "stop", journal: Optional[object] = None) -> None:
        if on_error not in ("stop", "continue"):
            raise ValueError(f"on_error must be 'stop' or 'continue', got {on_error!r}")
        self.graph = graph
        self.execute = execute
        self.parallel = parallel
        self.max_workers = max(1, int(max_workers))
        #: ``"stop"`` aborts the whole DAG on the first failed node;
        #: ``"continue"`` poisons only the failed node's transitive successors
        #: (marked ``skipped``, cwltool-style permanentFail propagation) and
        #: lets independent branches finish.
        self.on_error = on_error
        #: Optional :class:`~repro.cwl.journal.RunJournal`; every node state
        #: transition is appended to it.
        self.journal = journal
        self._lock = threading.Lock()
        self._event = threading.Condition(self._lock)
        self._nodes: Dict[str, GraphNode] = dict(graph.nodes)
        self._indegree: Dict[str, int] = dict(graph.indegree)
        self._successors: Dict[str, List[str]] = {nid: list(succs)
                                                  for nid, succs in graph.successors.items()}
        self._ready: List = []          # heap of (-priority, seq, node_id)
        self._seq = itertools.count()
        self._pending = len(self._nodes)
        self._completed: set = set()
        self._skipped: set = set()
        self._inflight = 0
        self._failure: Optional[BaseException] = None
        self._pool: Optional[cf.ThreadPoolExecutor] = None
        #: Final state per node id (``pending``/``running``/``done``/
        #: ``failed``/``skipped``) — inspect after :meth:`run`.
        self.states: Dict[str, str] = {nid: NODE_PENDING for nid in self._nodes}
        #: node id -> the exception that failed it (``on_error="continue"``).
        self.failures: Dict[str, BaseException] = {}

    # ------------------------------------------------------------------ public

    def run(self) -> None:
        """Execute all nodes; raises the first node failure (``on_error="stop"``).

        With ``on_error="continue"`` node failures do not raise — they are
        collected in :attr:`failures`, their transitive successors are marked
        ``skipped`` in :attr:`states`, and every independent branch still
        executes.
        """
        for node_id in self.graph.topological_order():
            if self._indegree[node_id] == 0:
                self._push(node_id)
        if self.parallel:
            self._run_parallel()
        else:
            self._run_serial()

    # ------------------------------------------------------------------ serial

    def _run_serial(self) -> None:
        while self._ready:
            node_id = self._pop()
            node = self._nodes[node_id]
            self._set_state(node_id, NODE_RUNNING)
            try:
                expansion = self.execute(node)
                self._complete(node_id, expansion)
            except BaseException as exc:  # noqa: BLE001 — classified below
                with self._lock:
                    self._node_failed_locked(node_id, exc)
                if self._failure is not None:
                    raise self._failure
        self._check_drained()

    # ---------------------------------------------------------------- parallel

    def _run_parallel(self) -> None:
        self._pool = cf.ThreadPoolExecutor(max_workers=self.max_workers,
                                           thread_name_prefix="cwl-dag")
        try:
            with self._lock:
                self._dispatch()
                while self._pending and self._failure is None:
                    if self._inflight == 0 and not self._ready:
                        break  # stalled; reported by _check_drained below
                    self._event.wait()
            # Let in-flight workers finish before surfacing the outcome.
        except BaseException as exc:  # interrupt: stop feeding, don't block
            with self._lock:
                if self._failure is None:
                    self._failure = exc
            # wait=False: in-flight jobs may sit in minutes-long subprocess
            # waits; the caller reaps those (RuntimeContext.terminate_processes)
            # and the workers then drain on their own threads.
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            raise
        self._pool.shutdown(wait=True)
        self._pool = None
        if self._failure is not None:
            raise self._failure
        self._check_drained()

    def _worker(self, node_id: str) -> None:
        node = self._nodes[node_id]
        expansion: Optional[Expansion] = None
        failure: Optional[BaseException] = None
        try:
            expansion = self.execute(node)
        except BaseException as exc:  # noqa: BLE001 — re-raised by run()
            failure = exc
        with self._lock:
            self._inflight -= 1
            try:
                if failure is not None:
                    self._node_failed_locked(node_id, failure)
                elif self._failure is None:
                    self._complete(node_id, expansion)
                if self._failure is None:
                    self._dispatch()
            except BaseException as exc:  # noqa: BLE001 — bookkeeping fault
                # A bug in completion bookkeeping (e.g. a malformed dynamic
                # expansion) must surface as the run's failure — swallowing it
                # here would leave run() blocked in _event.wait() forever.
                if self._failure is None:
                    self._failure = exc
            finally:
                self._event.notify_all()

    def _dispatch(self) -> None:
        """Submit ready nodes, highest priority first, up to the worker cap."""
        while self._ready and self._inflight < self.max_workers and self._failure is None:
            node_id = self._pop()
            self._set_state(node_id, NODE_RUNNING)
            self._inflight += 1
            self._pool.submit(self._worker, node_id)

    # ------------------------------------------------------------- bookkeeping

    def _push(self, node_id: str) -> None:
        heapq.heappush(self._ready, (-self._nodes[node_id].priority,
                                     next(self._seq), node_id))

    def _pop(self) -> str:
        return heapq.heappop(self._ready)[2]

    def _set_state(self, node_id: str, state: str) -> None:
        self.states[node_id] = state
        if self.journal is not None:
            self.journal.node_state(node_id, state)

    def _complete(self, node_id: str, expansion: Optional[Expansion]) -> None:
        """Record a completion: integrate any expansion, wake successors."""
        if expansion is not None and expansion.nodes:
            self._apply_expansion(node_id, expansion)
        for successor in self._successors.get(node_id, ()):
            self._indegree[successor] -= 1
            if self._indegree[successor] == 0 and successor not in self._skipped:
                self._push(successor)
        self._completed.add(node_id)
        self._pending -= 1
        self._set_state(node_id, NODE_DONE)

    def _node_failed_locked(self, node_id: str, exc: BaseException) -> None:
        """Record a node failure (caller holds the lock in parallel mode).

        ``on_error="stop"``: the exception becomes the run's failure and
        aborts the DAG.  ``on_error="continue"``: the failure poisons only the
        node's transitive successors — each is marked ``skipped`` and removed
        from the schedule — while every independent branch keeps running.
        """
        self.failures[node_id] = exc
        self._set_state(node_id, NODE_FAILED)
        if self.on_error != "continue":
            if self._failure is None:
                self._failure = exc
            return
        self._pending -= 1
        for skipped_id in self._transitive_successors(node_id):
            if (skipped_id in self._completed or skipped_id in self._skipped
                    or skipped_id in self.failures):
                continue
            self._skipped.add(skipped_id)
            self._pending -= 1
            self._set_state(skipped_id, NODE_SKIPPED)

    def _transitive_successors(self, node_id: str) -> List[str]:
        """Every node reachable from ``node_id`` via dependency edges."""
        seen: set = set()
        frontier = list(self._successors.get(node_id, ()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._successors.get(current, ()))
        return sorted(seen)

    def _apply_expansion(self, node_id: str, expansion: Expansion) -> None:
        base_priority = self._nodes[node_id].priority
        for node in expansion.nodes:
            if node.id in self._nodes:
                raise WorkflowException(f"duplicate dynamic node id {node.id!r}")
            # Dynamic nodes inherit the expanding node's critical-path rank.
            node.priority = base_priority
            self._nodes[node.id] = node
            self.states[node.id] = NODE_PENDING
            self._successors[node.id] = []
            self._indegree[node.id] = 0
        for new_id, preds in expansion.preds.items():
            self._indegree[new_id] = len(preds)
            for pred in preds:
                self._successors[pred].append(new_id)
        self._pending += len(expansion.nodes)
        if expansion.retarget is not None:
            moved = self._successors.get(node_id, [])
            self._successors[expansion.retarget].extend(moved)
            self._successors[node_id] = []
        for node in expansion.nodes:
            if self._indegree[node.id] == 0:
                self._push(node.id)

    def _check_drained(self) -> None:
        if not self._pending:
            return
        resolved = self._completed | self._skipped | set(self.failures)
        stalled = sorted(set(self._nodes) - resolved)
        predecessors: Dict[str, List[str]] = {nid: [] for nid in self._nodes}
        for pred, succs in self._successors.items():
            for succ in succs:
                predecessors.setdefault(succ, []).append(pred)
        details = []
        for node_id in stalled[:20]:
            unmet = sorted(p for p in predecessors.get(node_id, ())
                           if p not in self._completed)
            details.append(
                f"{node_id} (indegree {self._indegree.get(node_id)}, "
                f"unmet: {', '.join(unmet) if unmet else '<none>'})")
        if len(stalled) > 20:
            details.append(f"... and {len(stalled) - 20} more")
        raise WorkflowException(
            f"workflow stalled: {len(stalled)} node(s) cannot run with "
            f"{self._inflight} in flight; stalled nodes: " + "; ".join(details))
