"""Structural validation of CWL documents.

``validate_process`` walks a loaded document and returns a list of problems
(empty when the document is valid).  The checks mirror the useful subset of
``cwltool --validate``:

* every tool input/output has a resolvable type,
* workflow step inputs reference existing workflow inputs or step outputs,
* workflow outputs reference existing step outputs,
* scattered inputs are declared on the step,
* the step graph is acyclic,
* requirements that the implementation cannot honour are flagged.
"""

from __future__ import annotations

from typing import List, Set

from repro.cwl.errors import ValidationException
from repro.cwl.schema import CommandLineTool, ExpressionTool, Process, Workflow

#: Requirement classes the execution engine understands.
SUPPORTED_REQUIREMENTS = {
    "InlineJavascriptRequirement",
    "InlinePythonRequirement",          # paper extension (§V)
    "StepInputExpressionRequirement",
    "SubworkflowFeatureRequirement",
    "ScatterFeatureRequirement",
    "MultipleInputFeatureRequirement",
    "EnvVarRequirement",
    "ResourceRequirement",
    "InitialWorkDirRequirement",
    "ShellCommandRequirement",
    "DockerRequirement",                # parsed; executed without containers
    "SoftwareRequirement",
    "WorkReuse",
    "NetworkAccess",
    "InplaceUpdateRequirement",
    "LoadListingRequirement",
    "SchemaDefRequirement",
    "ToolTimeLimit",
}


def validate_process(process: Process, strict: bool = False) -> List[str]:
    """Validate any loaded process; returns a list of problem strings."""
    problems: List[str] = []
    problems.extend(_validate_requirements(process, strict))
    if isinstance(process, Workflow):
        problems.extend(_validate_workflow(process))
    elif isinstance(process, CommandLineTool):
        problems.extend(_validate_tool(process))
    elif isinstance(process, ExpressionTool):
        if not process.expression:
            problems.append("ExpressionTool has an empty expression")
    return problems


def ensure_valid(process: Process, strict: bool = False) -> None:
    """Raise :class:`ValidationException` if the process has problems."""
    problems = validate_process(process, strict=strict)
    if problems:
        raise ValidationException(
            f"document {process.id or '<anonymous>'} failed validation", issues=problems
        )


def _validate_requirements(process: Process, strict: bool) -> List[str]:
    problems: List[str] = []
    for requirement in process.requirements:
        class_name = requirement.get("class", "")
        if class_name not in SUPPORTED_REQUIREMENTS:
            level = "unsupported requirement" if strict else "unrecognised requirement (ignored)"
            message = f"{level}: {class_name}"
            if strict:
                problems.append(message)
    return problems


def _validate_tool(tool: CommandLineTool) -> List[str]:
    problems: List[str] = []
    if not tool.base_command and not tool.arguments:
        problems.append("CommandLineTool has neither baseCommand nor arguments")
    seen: Set[str] = set()
    for param in tool.inputs:
        if param.id in seen:
            problems.append(f"duplicate input id {param.id!r}")
        seen.add(param.id)
    seen_outputs: Set[str] = set()
    for out in tool.outputs:
        if out.id in seen_outputs:
            problems.append(f"duplicate output id {out.id!r}")
        seen_outputs.add(out.id)
        if out.raw_type not in ("stdout", "stderr") and out.output_binding is None \
                and not out.type.is_optional:
            problems.append(
                f"output {out.id!r} needs an outputBinding (or must be optional / stdout / stderr)"
            )
    if any(o.raw_type == "stdout" for o in tool.outputs) and tool.stdout is None:
        # Allowed by the spec (a random name is generated) but worth surfacing.
        pass
    return problems


def _validate_workflow(workflow: Workflow) -> List[str]:
    problems: List[str] = []
    input_ids = {p.id for p in workflow.inputs}
    step_ids = {s.id for s in workflow.steps}

    if not workflow.steps:
        problems.append("workflow has no steps")

    # Known sources: workflow inputs and step outputs.
    step_output_refs: Set[str] = set()
    for step in workflow.steps:
        for out_id in step.out:
            step_output_refs.add(f"{step.id}/{out_id}")

    for step in workflow.steps:
        declared_step_inputs = {si.id for si in step.in_}
        for scatter_key in step.scatter:
            if scatter_key not in declared_step_inputs:
                problems.append(
                    f"step {step.id!r} scatters over {scatter_key!r} which is not one of its inputs"
                )
        if step.scatter and step.scatter_method not in ("dotproduct", "flat_crossproduct",
                                                        "nested_crossproduct"):
            problems.append(f"step {step.id!r} uses unknown scatterMethod {step.scatter_method!r}")
        for step_input in step.in_:
            for source in step_input.source:
                if "/" in source:
                    if source not in step_output_refs:
                        problems.append(
                            f"step {step.id!r} input {step_input.id!r} references unknown "
                            f"step output {source!r}"
                        )
                elif source not in input_ids:
                    problems.append(
                        f"step {step.id!r} input {step_input.id!r} references unknown "
                        f"workflow input {source!r}"
                    )
        # The step's process must declare the inputs it is given (when resolvable).
        if step.embedded_process is not None:
            process_inputs = set(step.embedded_process.input_ids())
            for step_input in step.in_:
                if step_input.id not in process_inputs:
                    problems.append(
                        f"step {step.id!r} passes input {step_input.id!r} which its process "
                        f"does not declare (declares {sorted(process_inputs)})"
                    )
            process_outputs = set(step.embedded_process.output_ids())
            for out_id in step.out:
                if out_id not in process_outputs:
                    problems.append(
                        f"step {step.id!r} exposes output {out_id!r} which its process does not "
                        f"declare (declares {sorted(process_outputs)})"
                    )

    for output in workflow.workflow_outputs:
        for source in output.output_source:
            if "/" in source:
                if source not in step_output_refs:
                    problems.append(
                        f"workflow output {output.id!r} references unknown step output {source!r}"
                    )
            elif source not in input_ids:
                problems.append(
                    f"workflow output {output.id!r} references unknown workflow input {source!r}"
                )

    # Cycle detection is shared with the dataflow IR (repro.cwl.graph), so
    # `ensure_valid` names the cyclic steps in dependency order — the same
    # diagnosis the graph build raises — instead of deferring to a runtime
    # "workflow deadlock" error.
    from repro.cwl.graph import find_step_cycle

    cycle = find_step_cycle(workflow)
    if cycle:
        problems.append("dependency cycle between steps: " + " -> ".join(cycle))
    return problems
