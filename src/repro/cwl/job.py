"""Single-tool job execution.

A :class:`CommandLineJob` takes a tool, a job order and a runtime context and
can either *build* the command (used by the Parsl bridge, which executes it
through a Parsl bash app) or *execute* it directly as a subprocess (used by the
cwltool-like and Toil-like runners).
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cwl.command_line import CommandLineParts, build_command_line, fill_in_defaults
from repro.cwl.errors import InputValidationError, JobFailure, JobTimeout
from repro.cwl.expressions.evaluator import ExpressionEvaluator
from repro.cwl.outputs import collect_outputs
from repro.cwl.runtime import RuntimeContext
from repro.cwl.schema import CommandLineTool
from repro.cwl.types import coerce_file_inputs, matches
from repro.utils.logging_config import get_logger

logger = get_logger("cwl.job")


@dataclass
class JobResult:
    """Everything produced by one tool invocation."""

    outputs: Dict[str, Any]
    exit_code: int
    command: List[str]
    outdir: str
    stdout_path: Optional[str] = None
    stderr_path: Optional[str] = None
    #: True when the result was restored from the job cache instead of
    #: executing the subprocess (see :mod:`repro.cwl.jobcache`).
    cache_hit: bool = False


@dataclass
class StagedJob:
    """Everything :meth:`CommandLineJob.stage_execution` prepares up front.

    Produced by the *stage* step of the pipelined lifecycle and consumed by
    *launch* (the subprocess) and *collect* (output collection + cache store),
    so the three steps can run on different workers without re-deriving any
    of this state.  ``cache_entry`` non-None means the invocation is a job
    cache hit: launch is a no-op and collect restores instead of collecting.
    """

    outdir: str
    tmpdir: str
    runtime: Dict[str, Any]
    evaluator: Any = None
    parts: Optional[CommandLineParts] = None
    cache: Any = None
    cache_key: Optional[str] = None
    cache_entry: Any = None
    stdout_path: Optional[str] = None
    stderr_path: Optional[str] = None

    @property
    def cache_hit(self) -> bool:
        return self.cache_entry is not None


class _AsyncProcessHandle:
    """Popen-shaped view of an asyncio subprocess for interrupt-time reaping.

    ``RuntimeContext.terminate_processes`` expects ``pid``/``poll``/
    ``send_signal``/``wait(timeout)``; asyncio's Process has a coroutine
    ``wait`` instead, so this adapter polls ``returncode`` (only exercised
    during interrupt teardown, never on the hot path).
    """

    def __init__(self, proc: "asyncio.subprocess.Process") -> None:
        self._proc = proc

    @property
    def pid(self) -> int:
        return self._proc.pid

    def poll(self) -> Optional[int]:
        return self._proc.returncode

    def send_signal(self, sig: int) -> None:
        self._proc.send_signal(sig)

    def wait(self, timeout: Optional[float] = None) -> int:
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._proc.returncode is None:
            if deadline is not None and time.monotonic() >= deadline:
                raise subprocess.TimeoutExpired("<async job>", timeout or 0)
            time.sleep(0.02)
        return self._proc.returncode


@dataclass
class CommandLineJob:
    """One concrete invocation of a CommandLineTool."""

    tool: CommandLineTool
    job_order: Dict[str, Any]
    runtime_context: RuntimeContext = field(default_factory=RuntimeContext)

    def __post_init__(self) -> None:
        self.job_order = {k: coerce_file_inputs(v) for k, v in self.job_order.items()}
        self.job_order = fill_in_defaults(self.tool.inputs, self.job_order)
        self.job_order = {k: coerce_file_inputs(v) for k, v in self.job_order.items()}

    # ------------------------------------------------------------- validation

    def validate_inputs(self) -> List[str]:
        """Return a list of problems with the job order (empty = valid)."""
        problems: List[str] = []
        declared = {p.id for p in self.tool.inputs}
        for param in self.tool.inputs:
            value = self.job_order.get(param.id)
            if value is None:
                if param.type.is_optional or param.has_default:
                    continue
                problems.append(f"missing required input {param.id!r}")
                continue
            if not matches(value, param.type):
                problems.append(
                    f"input {param.id!r} value {value!r} does not match declared type {param.type}"
                )
        for key in self.job_order:
            if key not in declared and not key.startswith("__"):
                problems.append(f"unknown input {key!r} (tool declares {sorted(declared)})")
        return problems

    # -------------------------------------------------------------- building

    def make_evaluator(self):
        """Build the expression evaluator configured by the tool's requirements.

        With ``runtime_context.compile_expressions`` on, this returns the
        tool's precompiled :class:`~repro.cwl.expressions.compiler.CompiledEvaluator`
        (parse-once, shared library scope); otherwise the cwltool-fidelity
        :class:`ExpressionEvaluator`, optionally with a cached engine.
        """
        if self.runtime_context.compile_expressions:
            from repro.cwl.expressions.compiler import precompile_process

            return precompile_process(self.tool).evaluator
        js_req = self.tool.get_requirement("InlineJavascriptRequirement")
        expression_lib = list(js_req.get("expressionLib", [])) if js_req else []
        return ExpressionEvaluator(
            expression_lib=expression_lib,
            js_enabled=True,
            cache_engine=self.runtime_context.cache_js_engine,
        )

    def build(self, outdir: Optional[str] = None) -> CommandLineParts:
        """Construct the command line (without running it)."""
        problems = self.validate_inputs()
        if problems:
            raise InputValidationError(
                f"job order for tool {self.tool.id!r} is invalid: " + "; ".join(problems)
            )
        outdir = outdir or self.runtime_context.ensure_outdir()
        tmpdir = self.runtime_context.make_tmpdir()
        runtime = self.runtime_context.with_resources(self.tool).runtime_object(outdir, tmpdir)
        return build_command_line(self.tool, self.job_order, runtime, self.make_evaluator())

    # -------------------------------------------------------------- execution

    def cached_result(self) -> Optional[JobResult]:
        """Probe the job cache without executing anything; restore on a hit.

        Lets runners short-circuit *before* entering their dispatch machinery
        (the Toil-like runner skips the batch-system round trip entirely).
        A hit implies this exact invocation previously validated and executed
        successfully, so input validation is not repeated.  A miss is not
        counted here — the :meth:`execute` that follows records it.
        """
        cache = self.runtime_context.get_job_cache()
        if cache is None:
            return None
        from repro.cwl.jobcache import job_key

        context = self.runtime_context.with_resources(self.tool)
        key = job_key(self.tool, self.job_order,
                      cores=context.cores, ram_mb=context.ram_mb,
                      extra_env=context.env)
        entry = cache.lookup(key, record=False)
        if entry is None:
            return None
        cache.record_hit()
        outdir = self.runtime_context.make_job_dir(
            name=(self.tool.id or "tool").replace("/", "_") or "tool"
        )
        tmpdir = self.runtime_context.make_tmpdir()
        runtime = context.runtime_object(outdir, tmpdir)
        return self._restore_from_cache(cache, entry, outdir, tmpdir, runtime)

    def execute(self, outdir: Optional[str] = None) -> JobResult:
        """Run the tool as a subprocess and collect its outputs.

        With the job cache enabled (see
        :meth:`~repro.cwl.runtime.RuntimeContext.get_job_cache`), a previous
        invocation with the same tool document, input contents, environment
        and granted resources is *restored* — its files hardlinked into this
        job's fresh working directory — and the subprocess never runs; output
        collection still executes against the restored files, so hits and
        misses flow through identical collection code.

        Synchronous composition of the three pipeline steps — the reference
        runner's serial path.  The pipelined scheduler calls
        :meth:`stage_execution` / :meth:`launch` / :meth:`collect_execution`
        individually so the steps of different jobs can overlap.
        """
        staged = self.stage_execution(outdir)
        exit_code = self.launch(staged)
        return self.collect_execution(staged, exit_code)

    async def execute_async(self, outdir: Optional[str] = None) -> JobResult:
        """:meth:`execute`, but awaiting the subprocess on the event loop.

        Same stage and collect steps; the exec step uses
        ``asyncio.create_subprocess_exec`` with identical environment,
        session/process-group, timeout and reaping semantics, so one event
        loop can supervise thousands of concurrent subprocesses without a
        thread parked in ``wait()`` per job.
        """
        staged = self.stage_execution(outdir)
        exit_code = await self.launch_async(staged)
        return self.collect_execution(staged, exit_code)

    # ------------------------------------------------- pipeline: stage inputs

    def stage_execution(self, outdir: Optional[str] = None) -> StagedJob:
        """Prepare everything the subprocess needs: dirs, validation, cache
        probe, command line.  Pure staging — nothing is executed yet."""
        outdir = outdir or self.runtime_context.make_job_dir(
            name=(self.tool.id or "tool").replace("/", "_") or "tool"
        )
        os.makedirs(outdir, exist_ok=True)
        tmpdir = self.runtime_context.make_tmpdir()
        runtime = self.runtime_context.with_resources(self.tool).runtime_object(outdir, tmpdir)

        problems = self.validate_inputs()
        if problems:
            raise InputValidationError(
                f"job order for tool {self.tool.id!r} is invalid: " + "; ".join(problems)
            )

        staged = StagedJob(outdir=outdir, tmpdir=tmpdir, runtime=runtime)
        cache = self.runtime_context.get_job_cache()
        if cache is not None:
            from repro.cwl.jobcache import job_key

            staged.cache = cache
            staged.cache_key = job_key(self.tool, self.job_order,
                                       cores=runtime["cores"], ram_mb=runtime["ram"],
                                       extra_env=self.runtime_context.env)
            staged.cache_entry = cache.lookup(staged.cache_key)
            if staged.cache_entry is not None:
                # Hit: skip command-line construction entirely (the key
                # proves the resolved command would be identical).
                return staged

        staged.evaluator = self.make_evaluator()
        staged.parts = build_command_line(self.tool, self.job_order, runtime,
                                          staged.evaluator)
        if staged.parts.stdout:
            staged.stdout_path = os.path.join(outdir, staged.parts.stdout)
        if staged.parts.stderr:
            staged.stderr_path = os.path.join(outdir, staged.parts.stderr)
        return staged

    # ---------------------------------------------- pipeline: run the process

    def _open_launch_handles(self, staged: StagedJob) -> Tuple[Any, Any, Any, Dict[str, str]]:
        parts = staged.parts
        assert parts is not None
        stdin_handle = open(parts.stdin, "rb") if parts.stdin else subprocess.DEVNULL
        stdout_handle = open(staged.stdout_path, "wb") if staged.stdout_path \
            else subprocess.DEVNULL
        stderr_handle = open(staged.stderr_path, "wb") if staged.stderr_path \
            else subprocess.DEVNULL

        from repro.utils.environment import subprocess_environment

        env = subprocess_environment()
        env.update(self.runtime_context.env)
        env.update(parts.environment)
        env.setdefault("HOME", staged.outdir)
        env.setdefault("TMPDIR", staged.tmpdir)
        return stdin_handle, stdout_handle, stderr_handle, env

    @staticmethod
    def _close_launch_handles(*handles: Any) -> None:
        for handle in handles:
            if handle is not subprocess.DEVNULL and hasattr(handle, "close"):
                handle.close()

    def launch(self, staged: StagedJob) -> int:
        """Run the staged subprocess to completion and return its exit code.

        A no-op on a cache hit (the cached exit code is returned so collect
        sees the same value either way).  Raises :class:`JobTimeout` after
        group-reaping on timeout and :class:`JobFailure` on a non-success
        exit code, exactly like the pre-split monolithic ``execute``.
        """
        if staged.cache_entry is not None:
            return staged.cache_entry.exit_code
        parts = staged.parts
        assert parts is not None
        stdin_handle, stdout_handle, stderr_handle, env = \
            self._open_launch_handles(staged)

        logger.debug("executing %s in %s", parts.argv, staged.outdir)
        proc = None
        try:
            proc = subprocess.Popen(
                parts.argv,
                cwd=staged.outdir,
                env=env,
                stdin=stdin_handle,
                stdout=stdout_handle,
                stderr=stderr_handle,
                # Own session ⇒ own process group: timeout/interrupt reaping
                # signals the whole group, so a shell wrapper cannot orphan
                # grandchildren (sh -c '...; sleep N').
                start_new_session=True,
            )
            self.runtime_context.register_process(proc)
            try:
                exit_code = proc.wait(timeout=self.runtime_context.timeout_s)
            except subprocess.TimeoutExpired:
                self._reap(proc)
                self.runtime_context.cleanup_dir(staged.tmpdir)
                raise JobTimeout(self.tool.id or "<tool>",
                                 float(self.runtime_context.timeout_s or 0))
            except BaseException:
                # Interrupted mid-wait (KeyboardInterrupt/SIGTERM unwinding
                # the serial path): reap before the finally unregisters the
                # process, or the tool would outlive the runner.
                self._reap(proc)
                raise
        finally:
            if proc is not None:
                self.runtime_context.unregister_process(proc)
            self._close_launch_handles(stdin_handle, stdout_handle, stderr_handle)

        if exit_code not in self.tool.success_codes:
            raise JobFailure(self.tool.id or "<tool>", exit_code, " ".join(parts.argv))
        return exit_code

    async def launch_async(self, staged: StagedJob) -> int:
        """:meth:`launch` as a coroutine via ``asyncio.create_subprocess_exec``.

        The subprocess still leads its own session/process group and is
        registered with the runtime context (through a Popen-shaped adapter)
        so interrupt-time ``terminate_processes`` reaps it like any other
        job; timeout reaping SIGTERMs then SIGKILLs the whole group.
        """
        if staged.cache_entry is not None:
            return staged.cache_entry.exit_code
        parts = staged.parts
        assert parts is not None
        stdin_handle, stdout_handle, stderr_handle, env = \
            self._open_launch_handles(staged)

        logger.debug("executing %s in %s (async)", parts.argv, staged.outdir)
        handle = None
        try:
            proc = await asyncio.create_subprocess_exec(
                *parts.argv,
                cwd=staged.outdir,
                env=env,
                stdin=stdin_handle,
                stdout=stdout_handle,
                stderr=stderr_handle,
                start_new_session=True,
            )
            handle = _AsyncProcessHandle(proc)
            self.runtime_context.register_process(handle)
            try:
                exit_code = await asyncio.wait_for(
                    proc.wait(), timeout=self.runtime_context.timeout_s)
            except asyncio.TimeoutError:
                await self._reap_async(proc)
                self.runtime_context.cleanup_dir(staged.tmpdir)
                raise JobTimeout(self.tool.id or "<tool>",
                                 float(self.runtime_context.timeout_s or 0))
            except BaseException:
                # Cancelled mid-wait (scheduler shutdown): reap before the
                # finally unregisters, or the tool would outlive the runner.
                await self._reap_async(proc)
                raise
        finally:
            if handle is not None:
                self.runtime_context.unregister_process(handle)
            self._close_launch_handles(stdin_handle, stdout_handle, stderr_handle)

        if exit_code not in self.tool.success_codes:
            raise JobFailure(self.tool.id or "<tool>", exit_code, " ".join(parts.argv))
        return exit_code

    # -------------------------------------------- pipeline: collect + persist

    def collect_execution(self, staged: StagedJob, exit_code: int) -> JobResult:
        """Collect outputs, store into the cache, journal, clean up.

        On a cache hit this restores the cached invocation instead (hits and
        misses still flow through identical output-collection code inside
        :meth:`_restore_from_cache`).
        """
        if staged.cache_entry is not None:
            return self._restore_from_cache(staged.cache, staged.cache_entry,
                                            staged.outdir, staged.tmpdir,
                                            staged.runtime)
        parts = staged.parts
        assert parts is not None
        outputs = collect_outputs(
            self.tool,
            outdir=staged.outdir,
            stdout_path=staged.stdout_path,
            stderr_path=staged.stderr_path,
            job_order=self.job_order,
            runtime=staged.runtime,
            evaluator=staged.evaluator,
            compute_checksum=self.runtime_context.compute_checksum,
        )
        cacheable = not any(name and os.path.isabs(name)
                            for name in (parts.stdout, parts.stderr))
        if staged.cache is not None and staged.cache_key is not None and cacheable:
            from repro.cwl.jobcache import canonical_command

            try:
                staged.cache.store_outdir(
                    staged.cache_key, staged.outdir,
                    stdout_name=parts.stdout, stderr_name=parts.stderr,
                    exit_code=exit_code,
                    command=canonical_command(parts.argv, parts.stdin, parts.stdout,
                                              parts.stderr, parts.environment,
                                              outdir=staged.outdir, tmpdir=staged.tmpdir,
                                              job_order=self.job_order),
                )
            except Exception:
                # A full/read-only store must never fail a job that succeeded.
                logger.warning("could not store job %s in the cache at %s",
                               self.tool.id, staged.cache.cache_dir, exc_info=True)
        self.runtime_context.cleanup_dir(staged.tmpdir)
        if self.runtime_context.journal is not None:
            self.runtime_context.journal.record(
                "job", tool=self.tool.id, key=staged.cache_key, cache="miss",
                exit_code=exit_code)
        return JobResult(
            outputs=outputs,
            exit_code=exit_code,
            command=parts.argv,
            outdir=staged.outdir,
            stdout_path=staged.stdout_path,
            stderr_path=staged.stderr_path,
        )

    @staticmethod
    def _reap(proc: "subprocess.Popen", grace_s: float = 2.0) -> None:
        """SIGTERM the timed-out subprocess (and its group), then SIGKILL."""
        import signal

        from repro.cwl.runtime import signal_job_process

        try:
            signal_job_process(proc, signal.SIGTERM)
            proc.wait(timeout=grace_s)
        except subprocess.TimeoutExpired:
            signal_job_process(proc, signal.SIGKILL)
            try:
                proc.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                logger.warning("timed-out job pid %s survived SIGKILL", proc.pid)
        except OSError:
            pass

    @staticmethod
    async def _reap_async(proc: "asyncio.subprocess.Process",
                          grace_s: float = 2.0) -> None:
        """:meth:`_reap` for the asyncio exec path — same SIGTERM→SIGKILL
        escalation against the whole process group, awaited instead of
        blocked on."""
        import signal

        from repro.cwl.runtime import signal_job_process

        try:
            signal_job_process(proc, signal.SIGTERM)
            await asyncio.wait_for(proc.wait(), timeout=grace_s)
        except asyncio.TimeoutError:
            signal_job_process(proc, signal.SIGKILL)
            try:
                await asyncio.wait_for(proc.wait(), timeout=grace_s)
            except asyncio.TimeoutError:
                logger.warning("timed-out job pid %s survived SIGKILL", proc.pid)
        except OSError:
            pass

    def _restore_from_cache(self, cache, entry, outdir: str, tmpdir: str,
                            runtime: Dict[str, Any]) -> JobResult:
        """Stage a cached invocation into ``outdir`` and re-collect its outputs.

        Skips command-line construction entirely (the key proves the resolved
        command would be identical), which is what makes warm re-runs of
        expression-heavy tools near-constant time.
        """
        logger.debug("job cache hit for %s (key %s)", self.tool.id, entry.key)
        cache.restore(entry, outdir)
        stdout_name = entry.stream_name("stdout")
        stderr_name = entry.stream_name("stderr")
        stdout_path = os.path.join(outdir, stdout_name) if stdout_name else None
        stderr_path = os.path.join(outdir, stderr_name) if stderr_name else None
        outputs = collect_outputs(
            self.tool,
            outdir=outdir,
            stdout_path=stdout_path,
            stderr_path=stderr_path,
            job_order=self.job_order,
            runtime=runtime,
            evaluator=self.make_evaluator(),
            compute_checksum=self.runtime_context.compute_checksum,
        )
        self.runtime_context.cleanup_dir(tmpdir)
        if self.runtime_context.journal is not None:
            self.runtime_context.journal.record(
                "job", tool=self.tool.id, key=entry.key, cache="hit",
                exit_code=entry.exit_code)
        return JobResult(
            outputs=outputs,
            exit_code=entry.exit_code,
            command=list(entry.command.get("argv") or []),
            outdir=outdir,
            stdout_path=stdout_path,
            stderr_path=stderr_path,
            cache_hit=True,
        )
