"""The CWL document model.

Documents are loaded (see :mod:`repro.cwl.loader`) into the dataclasses below.
The model keeps close to the CWL v1.2 specification's field names, with Python
naming only where a CWL name collides with a keyword (``in`` → ``in_``,
``class`` → ``class_``).

Two extension fields support the paper's §V prototype:

* ``CommandInputParameter.validate`` — a Python expression evaluated against the
  job order before execution (Listing 6),
* the ``InlinePythonRequirement`` requirement class, carried like any other
  requirement dictionary and interpreted by :mod:`repro.core.inline_python`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.cwl.types import CWLType, normalize_type


@dataclass
class CommandLineBinding:
    """How one input (or extra argument) appears on the command line."""

    position: Optional[int] = None
    prefix: Optional[str] = None
    separate: bool = True
    item_separator: Optional[str] = None
    value_from: Optional[str] = None
    shell_quote: bool = True
    load_contents: bool = False

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CommandLineBinding":
        return cls(
            position=data.get("position"),
            prefix=data.get("prefix"),
            separate=data.get("separate", True),
            item_separator=data.get("itemSeparator"),
            value_from=data.get("valueFrom"),
            shell_quote=data.get("shellQuote", True),
            load_contents=data.get("loadContents", False),
        )


@dataclass
class CommandOutputBinding:
    """How one output is collected after the tool runs."""

    glob: Union[None, str, List[str]] = None
    load_contents: bool = False
    output_eval: Optional[str] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CommandOutputBinding":
        return cls(
            glob=data.get("glob"),
            load_contents=data.get("loadContents", False),
            output_eval=data.get("outputEval"),
        )


@dataclass
class CommandInputParameter:
    """One declared tool or workflow input."""

    id: str
    type: CWLType = field(default_factory=lambda: normalize_type("Any"))
    raw_type: Any = "Any"
    doc: Optional[str] = None
    label: Optional[str] = None
    default: Any = None
    has_default: bool = False
    input_binding: Optional[CommandLineBinding] = None
    secondary_files: Sequence[Any] = ()
    streamable: bool = False
    format: Optional[str] = None
    #: Paper extension (§V, Listing 6): a Python expression validating this input.
    validate: Optional[str] = None

    @classmethod
    def from_dict(cls, param_id: str, data: Any) -> "CommandInputParameter":
        if not isinstance(data, dict):
            # Shorthand: ``message: string``
            data = {"type": data}
        binding = data.get("inputBinding")
        return cls(
            id=param_id,
            type=normalize_type(data.get("type", "Any")),
            raw_type=data.get("type", "Any"),
            doc=data.get("doc"),
            label=data.get("label"),
            default=data.get("default"),
            has_default="default" in data,
            input_binding=CommandLineBinding.from_dict(binding) if binding is not None else None,
            secondary_files=data.get("secondaryFiles", ()),
            streamable=data.get("streamable", False),
            format=data.get("format"),
            validate=data.get("validate"),
        )


@dataclass
class CommandOutputParameter:
    """One declared tool output."""

    id: str
    type: CWLType = field(default_factory=lambda: normalize_type("Any"))
    raw_type: Any = "Any"
    doc: Optional[str] = None
    label: Optional[str] = None
    output_binding: Optional[CommandOutputBinding] = None
    secondary_files: Sequence[Any] = ()
    format: Optional[str] = None

    @classmethod
    def from_dict(cls, param_id: str, data: Any) -> "CommandOutputParameter":
        if not isinstance(data, dict):
            data = {"type": data}
        binding = data.get("outputBinding")
        return cls(
            id=param_id,
            type=normalize_type(data.get("type", "Any")),
            raw_type=data.get("type", "Any"),
            doc=data.get("doc"),
            label=data.get("label"),
            output_binding=CommandOutputBinding.from_dict(binding) if binding is not None else None,
            secondary_files=data.get("secondaryFiles", ()),
            format=data.get("format"),
        )


@dataclass
class Process:
    """Fields shared by CommandLineTool, ExpressionTool and Workflow."""

    id: str = ""
    cwl_version: str = "v1.2"
    label: Optional[str] = None
    doc: Optional[str] = None
    inputs: List[CommandInputParameter] = field(default_factory=list)
    outputs: List[CommandOutputParameter] = field(default_factory=list)
    requirements: List[Dict[str, Any]] = field(default_factory=list)
    hints: List[Dict[str, Any]] = field(default_factory=list)
    #: Path of the file this process was loaded from (used to resolve relative refs).
    source_path: Optional[str] = None
    #: The raw normalised dictionary (kept for round-tripping and provenance).
    raw: Dict[str, Any] = field(default_factory=dict)
    #: Filled by :func:`repro.cwl.expressions.compiler.precompile_process` —
    #: the document's expressions compiled once (a ``ProcessCompilation``).
    compiled: Optional[Any] = field(default=None, repr=False, compare=False)

    def get_requirement(self, class_name: str, include_hints: bool = True) -> Optional[Dict[str, Any]]:
        """Return the requirement dictionary with the given ``class``, if present."""
        for req in self.requirements:
            if req.get("class") == class_name:
                return req
        if include_hints:
            for hint in self.hints:
                if hint.get("class") == class_name:
                    return hint
        return None

    def input_ids(self) -> List[str]:
        return [p.id for p in self.inputs]

    def output_ids(self) -> List[str]:
        return [p.id for p in self.outputs]

    def get_input(self, param_id: str) -> Optional[CommandInputParameter]:
        for param in self.inputs:
            if param.id == param_id:
                return param
        return None

    def get_output(self, param_id: str) -> Optional[CommandOutputParameter]:
        for param in self.outputs:
            if param.id == param_id:
                return param
        return None


@dataclass
class CommandLineTool(Process):
    """A CWL ``CommandLineTool``."""

    class_: str = "CommandLineTool"
    base_command: List[str] = field(default_factory=list)
    arguments: List[Union[str, CommandLineBinding]] = field(default_factory=list)
    stdin: Optional[str] = None
    stdout: Optional[str] = None
    stderr: Optional[str] = None
    success_codes: Sequence[int] = (0,)
    temporary_fail_codes: Sequence[int] = ()
    permanent_fail_codes: Sequence[int] = ()


@dataclass
class ExpressionTool(Process):
    """A CWL ``ExpressionTool`` — outputs are produced purely by an expression."""

    class_: str = "ExpressionTool"
    expression: str = "$({})"


@dataclass
class WorkflowStepInput:
    """Mapping from a step's input to its source(s) in the enclosing workflow."""

    id: str
    source: List[str] = field(default_factory=list)
    default: Any = None
    has_default: bool = False
    value_from: Optional[str] = None
    link_merge: str = "merge_nested"

    @classmethod
    def from_dict(cls, input_id: str, data: Any) -> "WorkflowStepInput":
        if isinstance(data, str):
            return cls(id=input_id, source=[data])
        if isinstance(data, list):
            return cls(id=input_id, source=[str(s) for s in data])
        if data is None:
            return cls(id=input_id)
        source = data.get("source", [])
        if isinstance(source, str):
            source = [source]
        return cls(
            id=input_id,
            source=[str(s) for s in source],
            default=data.get("default"),
            has_default="default" in data,
            value_from=data.get("valueFrom"),
            link_merge=data.get("linkMerge", "merge_nested"),
        )


@dataclass
class WorkflowStep:
    """One step of a workflow."""

    id: str
    run: Union[str, Process]
    in_: List[WorkflowStepInput] = field(default_factory=list)
    out: List[str] = field(default_factory=list)
    scatter: List[str] = field(default_factory=list)
    scatter_method: str = "dotproduct"
    when: Optional[str] = None
    requirements: List[Dict[str, Any]] = field(default_factory=list)
    hints: List[Dict[str, Any]] = field(default_factory=list)
    doc: Optional[str] = None
    #: The resolved process once ``run`` has been loaded.
    embedded_process: Optional[Process] = None

    def get_input(self, input_id: str) -> Optional[WorkflowStepInput]:
        for step_input in self.in_:
            if step_input.id == input_id:
                return step_input
        return None


@dataclass
class WorkflowOutputParameter:
    """A workflow-level output wired to a step output (or workflow input)."""

    id: str
    type: CWLType = field(default_factory=lambda: normalize_type("Any"))
    raw_type: Any = "Any"
    output_source: List[str] = field(default_factory=list)
    link_merge: str = "merge_nested"
    doc: Optional[str] = None

    @classmethod
    def from_dict(cls, param_id: str, data: Any) -> "WorkflowOutputParameter":
        if not isinstance(data, dict):
            data = {"type": data}
        source = data.get("outputSource", [])
        if isinstance(source, str):
            source = [source]
        return cls(
            id=param_id,
            type=normalize_type(data.get("type", "Any")),
            raw_type=data.get("type", "Any"),
            output_source=[str(s) for s in source],
            link_merge=data.get("linkMerge", "merge_nested"),
            doc=data.get("doc"),
        )


@dataclass
class Workflow(Process):
    """A CWL ``Workflow``: steps connected by data dependencies."""

    class_: str = "Workflow"
    steps: List[WorkflowStep] = field(default_factory=list)
    workflow_outputs: List[WorkflowOutputParameter] = field(default_factory=list)

    def get_step(self, step_id: str) -> Optional[WorkflowStep]:
        for step in self.steps:
            if step.id == step_id:
                return step
        return None

    def step_ids(self) -> List[str]:
        return [s.id for s in self.steps]
