"""Exception types for the CWL implementation."""

from __future__ import annotations

from typing import List, Optional


class CWLError(Exception):
    """Base class for all CWL errors."""


class ValidationException(CWLError):
    """A document is structurally invalid.

    Collects one or more individual problems so that a validator run can report
    everything wrong with a document at once (matching cwltool's behaviour of
    listing all validation messages).
    """

    def __init__(self, message: str, issues: Optional[List[str]] = None) -> None:
        self.issues = issues or [message]
        super().__init__(message if not issues else message + "\n  - " + "\n  - ".join(issues))


class UnsupportedRequirement(CWLError):
    """A document uses a CWL feature outside the supported subset."""


class ExpressionError(CWLError):
    """An embedded expression failed to parse or evaluate."""


class JavaScriptError(ExpressionError):
    """The mini-JavaScript engine rejected or failed to run an expression."""


class WorkflowException(CWLError):
    """Runtime failure while executing a tool or workflow."""


class JobFailure(WorkflowException):
    """A command-line job exited with a non-zero (non-permitted) code."""

    def __init__(self, tool_id: str, exit_code: int, command: Optional[str] = None) -> None:
        self.tool_id = tool_id
        self.exit_code = exit_code
        self.command = command
        message = f"tool {tool_id!r} failed with exit code {exit_code}"
        if command:
            message += f" (command: {command})"
        super().__init__(message)


class OutputCollectionError(WorkflowException):
    """Declared outputs could not be collected after a job ran."""


class InputValidationError(WorkflowException):
    """A job order does not satisfy the tool's input schema (or a ``validate:`` rule)."""
