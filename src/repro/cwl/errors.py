"""Exception types for the CWL implementation."""

from __future__ import annotations

from typing import List, Optional


class CWLError(Exception):
    """Base class for all CWL errors."""


class ValidationException(CWLError):
    """A document is structurally invalid.

    Collects one or more individual problems so that a validator run can report
    everything wrong with a document at once (matching cwltool's behaviour of
    listing all validation messages).
    """

    def __init__(self, message: str, issues: Optional[List[str]] = None) -> None:
        self.issues = issues or [message]
        super().__init__(message if not issues else message + "\n  - " + "\n  - ".join(issues))


class UnsupportedRequirement(CWLError):
    """A document uses a CWL feature outside the supported subset."""


class ExpressionError(CWLError):
    """An embedded expression failed to parse or evaluate."""


class JavaScriptError(ExpressionError):
    """The mini-JavaScript engine rejected or failed to run an expression."""


class WorkflowException(CWLError):
    """Runtime failure while executing a tool or workflow."""


class JobFailure(WorkflowException):
    """A command-line job exited with a non-zero (non-permitted) code."""

    def __init__(self, tool_id: str, exit_code: int, command: Optional[str] = None) -> None:
        self.tool_id = tool_id
        self.exit_code = exit_code
        self.command = command
        message = f"tool {tool_id!r} failed with exit code {exit_code}"
        if command:
            message += f" (command: {command})"
        super().__init__(message)


class JobTimeout(WorkflowException):
    """A command-line job exceeded its wall-clock deadline and was reaped.

    Raised after the SIGTERM→SIGKILL escalation in
    :meth:`~repro.cwl.job.CommandLineJob.execute` (or after the in-shell
    ``timeout(1)`` wrapper on the Parsl paths).  Timeouts are *transient* by
    definition — a :class:`~repro.cwl.retry.RetryPolicy` retries them.
    """

    def __init__(self, tool_id: str, timeout_s: float) -> None:
        self.tool_id = tool_id
        self.timeout_s = timeout_s
        super().__init__(
            f"tool {tool_id!r} exceeded its wall-clock timeout of {timeout_s:g}s "
            f"and was terminated")


class InjectedFault(JobFailure):
    """A deterministic failure injected by a :class:`~repro.cwl.faults.FaultPlan`.

    Subclasses :class:`JobFailure` so that every engine classifies an injected
    failure exactly like a real non-zero tool exit (``exit_class ==
    "permanentFail"``) — the property the fault-injection differential matrix
    asserts on.
    """

    def __init__(self, tool_id: str, exit_code: int, attempt: int) -> None:
        self.attempt = attempt
        super().__init__(tool_id, exit_code,
                         command=f"<injected fault, attempt {attempt}>")


class OutputCollectionError(WorkflowException):
    """Declared outputs could not be collected after a job ran."""


class InputValidationError(WorkflowException):
    """A job order does not satisfy the tool's input schema (or a ``validate:`` rule)."""


# --------------------------------------------------------------------- classes
#
# The conformance/differential harness (:mod:`repro.testing`) compares *how*
# executions fail across engines, not just whether they fail.  Two levels:
#
# * :func:`error_class` — the most specific stable class name of an exception
#   (``"JobFailure"``, ``"UnsupportedRequirement"``, ...), independent of the
#   engine that raised it.
# * :func:`exit_class` — the coarse conformance outcome every engine must
#   agree on.  Different engines legitimately raise different exception
#   *types* for the same condition (a non-zero tool exit is a
#   :class:`JobFailure` from the runners but a Parsl ``BashExitFailure`` from
#   the bridge); the exit class is the normalisation that makes them
#   comparable.

#: The coarse conformance outcomes of :func:`exit_class`.
EXIT_CLASSES = (
    "success",          # produced outputs
    "permanentFail",    # a tool command exited with a non-permitted code
    "invalid",          # document or job order rejected before execution
    "unsupported",      # feature outside the engine's supported subset
    "expressionError",  # an embedded expression failed to parse or evaluate
    "outputError",      # declared outputs could not be collected
    "workflowError",    # any other runtime workflow failure
    "error",            # anything else (engine/internal errors)
)


def unwrap_failure(exc: BaseException) -> BaseException:
    """Peel engine-level wrappers down to the root failure.

    Parsl resolves a task whose *dependency* failed with a ``DependencyError``
    carrying the underlying exceptions; conformance comparisons care about the
    original failure, so the first dependent exception is followed
    recursively.
    """
    dependents = getattr(exc, "dependent_exceptions", None)
    if dependents:
        return unwrap_failure(dependents[0])
    return exc


def error_class(exc: BaseException) -> str:
    """The most specific stable class name for ``exc``.

    For errors defined in this module the class name itself is the stable
    label; for anything else (engine-specific exceptions) the type name is
    returned unchanged.
    """
    return type(unwrap_failure(exc)).__name__


def exit_class(exc: Optional[BaseException]) -> str:
    """Normalise an execution failure to its engine-independent outcome.

    ``None`` (no failure) maps to ``"success"``.  See :data:`EXIT_CLASSES`.
    """
    if exc is None:
        return "success"
    exc = unwrap_failure(exc)
    # Parsl-side classes, named here rather than imported so this module never
    # depends on repro.parsl.
    parsl_name = type(exc).__name__
    if isinstance(exc, JobFailure) or parsl_name == "BashExitFailure":
        return "permanentFail"
    if isinstance(exc, UnsupportedRequirement):
        return "unsupported"
    if isinstance(exc, ExpressionError):
        return "expressionError"
    if isinstance(exc, OutputCollectionError) or parsl_name == "MissingOutputs":
        return "outputError"
    if isinstance(exc, (ValidationException, InputValidationError)):
        return "invalid"
    if isinstance(exc, WorkflowException):
        return "workflowError"
    return "error"
