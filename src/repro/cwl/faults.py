"""Deterministic fault injection.

A :class:`FaultPlan` describes failures to inject into an execution — *which*
jobs fail, *how* (exit code), for *how many* attempts, plus artificial delays
— as a pure function of ``(seed, job name, attempt)``.  Plans are carried on
:class:`~repro.cwl.runtime.RuntimeContext` (and threaded to the Parsl paths)
and consulted by the shared retry loop
(:func:`repro.cwl.retry.execute_with_retries`) *before* each attempt, ahead of
any cache probe, so every engine × cache × compiled configuration observes
identical injected behaviour.  That is what lets the differential matrix
(:mod:`repro.api.matrix`) treat fault injection as just another axis: under a
deterministic plan the engines must still converge to identical outputs or
identical failure classes.

Jobs are matched by their *tool id* (``fnmatch`` patterns), the one name that
is stable across all four engines; seeded selection (``probability < 1``)
hashes ``(seed, job)`` so the same subset of jobs misbehaves in every run.

Beyond pre-attempt faults the plan can also vandalise durable state —
:meth:`FaultPlan.corrupt_file` bit-flips a produced output,
:meth:`FaultPlan.truncate_cas_body` truncates a content-addressed cache body —
which the cache-degradation tests use to prove the store quarantines damage
instead of replaying it.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cwl.errors import InjectedFault


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: which jobs, what fault, for how many attempts."""

    #: ``fnmatch`` pattern matched against the job's tool id.
    job: str = "*"
    #: ``"fail"`` raises :class:`~repro.cwl.errors.InjectedFault`;
    #: ``"delay"`` sleeps before the attempt runs.
    action: str = "fail"
    #: Exit code carried by the injected failure.
    exit_code: int = 11
    #: Inject on attempts ``1..attempts`` of each invocation; a large value
    #: makes the fault permanent (the job fails however often it retries).
    attempts: int = 1
    #: Seconds to sleep for ``action="delay"``.
    delay_s: float = 0.0
    #: Deterministic sampling: the rule applies to a job exactly when
    #: ``hash(seed, job) < probability`` — ``1.0`` selects every match.
    probability: float = 1.0


@dataclass
class FaultPlan:
    """A seeded, deterministic set of :class:`FaultSpec` rules.

    ``apply(job, attempt)`` is called by the shared retry loop; it either
    returns (no fault), sleeps (delay fault) or raises
    :class:`~repro.cwl.errors.InjectedFault`.  Every injection is recorded in
    :attr:`injected` for assertions.  The decision is stateless — a pure
    function of ``(seed, job, attempt)`` — so concurrent engines, cache modes
    and resumed runs all see the same faults.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    #: ``(job, attempt, action)`` triples, in injection order (thread-safe).
    injected: List[Tuple[str, int, str]] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)
    _sleep: Callable[[float], None] = field(default=time.sleep,
                                            repr=False, compare=False)

    def selection_fraction(self, job: str) -> float:
        """Deterministic ``[0, 1)`` fraction for seeded job selection."""
        digest = hashlib.sha1(f"{self.seed}\x00{job}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def _selected(self, spec: FaultSpec, job: str) -> bool:
        if not fnmatch.fnmatch(job, spec.job):
            return False
        if spec.probability >= 1.0:
            return True
        return self.selection_fraction(job) < spec.probability

    def faults_for(self, job: str, attempt: int) -> List[FaultSpec]:
        """The specs that fire for this ``(job, attempt)`` pair."""
        return [spec for spec in self.specs
                if attempt <= spec.attempts and self._selected(spec, job)]

    def apply(self, job: str, attempt: int) -> None:
        """Inject whatever the plan dictates for this attempt (or nothing)."""
        for spec in self.faults_for(job, attempt):
            with self._lock:
                self.injected.append((job, attempt, spec.action))
            if spec.action == "delay":
                if spec.delay_s > 0:
                    self._sleep(spec.delay_s)
            elif spec.action == "fail":
                raise InjectedFault(job, spec.exit_code, attempt)
            else:
                raise ValueError(f"unknown fault action {spec.action!r}")

    def max_failed_attempts(self, job: str) -> int:
        """Attempts that will fail before ``job`` can succeed (for sizing caps)."""
        return max((spec.attempts for spec in self.specs
                    if spec.action == "fail" and self._selected(spec, job)),
                   default=0)

    # ------------------------------------------------- durable-state vandalism

    @staticmethod
    def corrupt_file(path: str, offset: int = 0) -> None:
        """Bit-flip one byte of ``path`` in place (keeps the size identical)."""
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            if not byte:
                raise ValueError(f"cannot corrupt empty file {path!r}")
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))

    @staticmethod
    def truncate_cas_body(store_dir: str, digest: Optional[str] = None) -> str:
        """Truncate one ``cas/<sha1>`` body in a job-cache store.

        Picks the first body (sorted) when ``digest`` is not given; returns
        the digest that was damaged.
        """
        cas_dir = os.path.join(store_dir, "cas")
        if digest is None:
            bodies = sorted(os.listdir(cas_dir))
            if not bodies:
                raise ValueError(f"no CAS bodies under {cas_dir!r}")
            digest = bodies[0]
        with open(os.path.join(cas_dir, digest), "r+b") as handle:
            handle.truncate(0)
        return digest


# ----------------------------------------------------------------- profiles
#
# Named fault profiles pair a plan with the retry policy that tolerates it —
# the unit the differential matrix and the conformance CLI select by name
# (``--faults transient-all``).  Keeping profiles *named* keeps
# :class:`~repro.api.matrix.MatrixConfig` a frozen, hashable dataclass.

@dataclass(frozen=True)
class FaultProfile:
    """A named (plan factory, retry policy) pair for the matrix axis."""

    name: str
    description: str
    make_plan: Callable[[], FaultPlan]
    policy: "Any"  # RetryPolicy; typed loosely to avoid an import cycle


def _profile_registry() -> Dict[str, FaultProfile]:
    from repro.cwl.retry import RetryPolicy

    return {
        # Every job's first attempt fails with a transient exit code; the
        # paired policy retries it, so every engine converges to success.
        "transient-all": FaultProfile(
            name="transient-all",
            description="first attempt of every job fails with exit 11; "
                        "retried to success",
            make_plan=lambda: FaultPlan(
                specs=(FaultSpec(job="*", action="fail", exit_code=11,
                                 attempts=1),),
                seed=1101),
            policy=RetryPolicy(max_attempts=3, backoff_s=0.01,
                               max_backoff_s=0.05, seed=1101,
                               retryable_exit_codes=(11,)),
        ),
        # A seeded half of the jobs fail their first two attempts; the policy
        # allows three, so the outcome is still success everywhere.
        "flaky-half": FaultProfile(
            name="flaky-half",
            description="seeded ~half of jobs fail attempts 1-2 with exit 7; "
                        "retried to success",
            make_plan=lambda: FaultPlan(
                specs=(FaultSpec(job="*", action="fail", exit_code=7,
                                 attempts=2, probability=0.5),),
                seed=4242),
            policy=RetryPolicy(max_attempts=4, backoff_s=0.01,
                               max_backoff_s=0.05, seed=4242,
                               retryable_exit_codes=(7,)),
        ),
        # Every attempt fails: retries exhaust and every engine must classify
        # the run as permanentFail.
        "fatal-all": FaultProfile(
            name="fatal-all",
            description="every attempt of every job fails with exit 13; "
                        "all engines converge to permanentFail",
            make_plan=lambda: FaultPlan(
                specs=(FaultSpec(job="*", action="fail", exit_code=13,
                                 attempts=10 ** 6),),
                seed=7),
            policy=RetryPolicy(max_attempts=2, backoff_s=0.01,
                               max_backoff_s=0.02, seed=7,
                               retryable_exit_codes=(13,)),
        ),
    }


def fault_profiles() -> Dict[str, FaultProfile]:
    """All named fault profiles (fresh dict; profiles are immutable)."""
    return _profile_registry()


def get_fault_profile(name: str) -> FaultProfile:
    """Look up a named profile; raises ``KeyError`` with the known names."""
    registry = _profile_registry()
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown fault profile {name!r} (known: {known})") from None
