"""Append-only run journal for crash-safe resume.

A run directory holds everything needed to pick an interrupted execution back
up: a ``journal.jsonl`` of state transitions and the run's private job-cache
store.  The journal is append-only JSONL — each record is one ``json.dumps``
line written and flushed atomically under a lock, so a crash (or SIGKILL)
mid-run leaves at worst a truncated *final* line, which :func:`read_journal`
skips.  Layout::

    <run_dir>/
      journal.jsonl   # header record, then node/job transitions
      jobcache/       # content-addressed store scoped to this run

The first record is a ``{"kind": "header", ...}`` carrying the process path,
job order, engine and a fingerprint of the document, letting
:func:`repro.api.resume.resume` re-run the same workflow with the same store:
nodes that completed before the crash replay as cache hits, so only
incomplete nodes re-execute.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

JOURNAL_NAME = "journal.jsonl"
CACHE_SUBDIR = "jobcache"
FORMAT_VERSION = 1


class RunJournal:
    """Thread-safe append-only JSONL journal for one run."""

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")

    def record(self, kind: str, **fields: Any) -> None:
        """Append one record; the line is flushed+fsynced before returning."""
        entry = {"kind": kind, "t": time.time()}
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            try:
                os.fsync(self._handle.fileno())
            except OSError:
                pass

    def node_state(self, node_id: str, state: str, **fields: Any) -> None:
        """Record a scheduler node transition (``running``/``done``/...)."""
        self.record("node", node=node_id, state=state, **fields)

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def document_fingerprint(path: str) -> str:
    """sha1 of the process document, to refuse resuming a changed workflow."""
    digest = hashlib.sha1()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


def journal_path(run_dir: str) -> str:
    return os.path.join(run_dir, JOURNAL_NAME)


def run_cache_dir(run_dir: str) -> str:
    return os.path.join(run_dir, CACHE_SUBDIR)


def open_run_dir(run_dir: str, *, process_path: str,
                 job_order: Dict[str, Any], engine: str) -> RunJournal:
    """Create/open a run directory and journal, appending the header record."""
    os.makedirs(run_dir, exist_ok=True)
    os.makedirs(run_cache_dir(run_dir), exist_ok=True)
    journal = RunJournal(journal_path(run_dir))
    journal.record(
        "header",
        version=FORMAT_VERSION,
        process=os.path.abspath(process_path),
        fingerprint=document_fingerprint(process_path),
        job_order=job_order,
        engine=engine,
        pid=os.getpid(),
    )
    return journal


def read_journal(run_dir: str) -> List[Dict[str, Any]]:
    """All intact records of a run directory's journal, oldest first.

    A torn final line (crash mid-append) is silently dropped; a torn line in
    the *middle* of the file means the journal is not append-only damage and
    raises.
    """
    path = journal_path(run_dir)
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            if index == len(lines) - 1:
                break  # torn tail from a crash — expected, drop it
            raise ValueError(
                f"corrupt journal record at {path}:{index + 1}")
    return records


def journal_header(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The header record (first ``kind=="header"`` seen, latest run wins last)."""
    header: Optional[Dict[str, Any]] = None
    for record in records:
        if record.get("kind") == "header":
            header = record
    if header is None:
        raise ValueError("journal has no header record")
    return header


def node_states(records: List[Dict[str, Any]]) -> Dict[str, str]:
    """Final recorded state per node id (later records win)."""
    states: Dict[str, str] = {}
    for record in records:
        if record.get("kind") == "node" and "node" in record:
            states[str(record["node"])] = str(record.get("state", ""))
    return states
