"""Legacy setuptools entry point.

The offline environment has no ``wheel`` package, so PEP 660 editable installs
(``pip install -e .`` with build isolation) cannot build an editable wheel.
This ``setup.py`` enables the legacy development-install path::

    pip install -e . --no-build-isolation --no-use-pep517

All project metadata lives in ``pyproject.toml``; this file only exists so the
legacy code path has something to execute.
"""

from setuptools import setup

setup()
