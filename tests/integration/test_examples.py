"""Smoke tests that the shipped example scripts run end to end.

Each example is executed in a subprocess (as a user would run it) with small
parameters; the scripts chdir into their own temporary directories so they do
not pollute the repository.
"""

from __future__ import annotations

import subprocess
import sys

import pytest


def run_example(repo_root, name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(repo_root / "examples" / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\nSTDOUT:\n{result.stdout}\nSTDERR:\n{result.stderr}"
    return result.stdout


def test_quickstart_example(repo_root):
    stdout = run_example(repo_root, "quickstart.py")
    assert "hello.txt contains: Hello, World!" in stdout


def test_image_pipeline_example(repo_root):
    stdout = run_example(repo_root, "image_pipeline_parsl.py", "--images", "3", "--size", "32")
    assert "processed 3 images" in stdout


def test_inline_python_example(repo_root):
    stdout = run_example(repo_root, "inline_python_expressions.py")
    assert "Towards Combining The Python And Cwl Ecosystems" in stdout
    assert "rejected before execution" in stdout


def test_parsl_cwl_cli_demo_example(repo_root):
    stdout = run_example(repo_root, "parsl_cwl_cli_demo.py")
    assert "parsl-cwl exit code: 0" in stdout
    assert "hello.txt" in stdout


@pytest.mark.slow
def test_runner_comparison_example(repo_root):
    stdout = run_example(repo_root, "runner_comparison.py", "--images", "2", "--workers", "4",
                         timeout=360)
    assert "parsl-cwl (ThreadPoolExecutor)" in stdout
