"""Integration tests: the three execution paths produce equivalent results.

The paper's core claim is that a CWL workflow behaves the same whether it runs
through cwltool, Toil or the Parsl integration — only performance differs.
These tests run the same documents through all three paths on small inputs and
compare the outputs pixel-for-pixel / byte-for-byte.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import CWLApp, CWLWorkflowBridge
from repro.cwl import ReferenceRunner, ToilStyleRunner, load_document
from repro.cwl.runtime import RuntimeContext
from repro.imaging.png import read_png


@pytest.fixture
def pipeline_inputs(small_image):
    return {"input_image": {"class": "File", "path": small_image},
            "size": 20, "sepia": True, "radius": 1}


def test_reference_and_toil_produce_identical_images(cwl_dir, tmp_path, pipeline_inputs):
    workflow = load_document(cwl_dir / "image_pipeline.cwl")

    reference = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path / "ref")))
    ref_out = reference.run(workflow, dict(pipeline_inputs)).outputs["final_output"]

    toil = ToilStyleRunner(job_store_dir=str(tmp_path / "jobstore"),
                           runtime_context=RuntimeContext(basedir=str(tmp_path / "toil")))
    toil_out = toil.run(workflow, dict(pipeline_inputs)).outputs["final_output"]
    toil.close()

    assert np.array_equal(read_png(ref_out["path"]), read_png(toil_out["path"]))


def test_parsl_bridge_matches_reference_runner(cwl_dir, tmp_path, pipeline_inputs,
                                               parsl_threads):
    workflow = load_document(cwl_dir / "image_pipeline.cwl")
    reference = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path / "ref")))
    ref_image = read_png(reference.run(workflow, dict(pipeline_inputs))
                         .outputs["final_output"]["path"])

    bridge = CWLWorkflowBridge(str(cwl_dir / "image_pipeline.cwl"))
    bridge_out = bridge.run(dict(pipeline_inputs))
    bridge_image = read_png(bridge_out["final_output"].filepath)

    assert np.array_equal(ref_image, bridge_image)


def test_chained_cwlapps_match_reference_runner(cwl_dir, tmp_path, pipeline_inputs,
                                                parsl_threads, small_image):
    """The hand-written Parsl program (Listing 4 style) produces the same final image."""
    workflow = load_document(cwl_dir / "image_pipeline.cwl")
    reference = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path / "ref")))
    ref_image = read_png(reference.run(workflow, dict(pipeline_inputs))
                         .outputs["final_output"]["path"])

    resize = CWLApp(str(cwl_dir / "resize_image.cwl"))
    filt = CWLApp(str(cwl_dir / "filter_image.cwl"))
    blur = CWLApp(str(cwl_dir / "blur_image.cwl"))
    resized = resize(input_image=small_image, size=20, output_image="r.png")
    filtered = filt(input_image=resized.outputs[0], sepia=True, output_image="f.png")
    blurred = blur(input_image=filtered.outputs[0], radius=1, output_image="b.png")
    blurred.result()

    assert np.array_equal(ref_image, read_png(tmp_path / "b.png"))


def test_inline_python_and_js_expressions_agree(cwl_dir, tmp_path, parsl_threads):
    """capitalize_python.cwl (InlinePython via Parsl) and capitalize_js.cwl (JS via the
    reference runner) produce the same capitalised message (Fig. 2's functional core)."""
    message = "parsl and cwl together at last"

    js_tool = load_document(cwl_dir / "capitalize_js.cwl")
    reference = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path / "js")))
    js_out = reference.run(js_tool, {"message": message}).outputs["output"]
    js_text = open(js_out["path"]).read().strip()

    py_app = CWLApp(str(cwl_dir / "capitalize_python.cwl"))
    future = py_app(message=message, stdout="py.txt")
    future.result()
    py_text = (tmp_path / "py.txt").read_text().strip()

    assert js_text == py_text == "Parsl And Cwl Together At Last"


def test_scatter_workflow_counts_match_across_runners(cwl_dir, tmp_path, image_batch):
    workflow = load_document(cwl_dir / "scatter_images.cwl")
    job_order = {"input_images": [{"class": "File", "path": p} for p in image_batch],
                 "size": 12, "sepia": False, "radius": 1}

    reference = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path / "ref")),
                                parallel=True, max_workers=4)
    ref_outputs = reference.run(workflow, dict(job_order)).outputs["final_outputs"]

    toil = ToilStyleRunner(job_store_dir=str(tmp_path / "jobstore"),
                           runtime_context=RuntimeContext(basedir=str(tmp_path / "toil")),
                           max_workers=4)
    toil_outputs = toil.run(workflow, dict(job_order)).outputs["final_outputs"]
    toil.close()

    assert len(ref_outputs) == len(toil_outputs) == len(image_batch)
    for ref_file, toil_file in zip(ref_outputs, toil_outputs):
        assert np.array_equal(read_png(ref_file["path"]), read_png(toil_file["path"]))
