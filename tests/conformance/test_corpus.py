"""The conformance corpus: size, schema, determinism and materialisation."""

from __future__ import annotations

import pytest

from repro.cwl.errors import ValidationException
from repro.testing.corpus import (
    load_case,
    load_corpus,
    materialize_job_order,
)
from repro.utils.yamlio import dump_yaml


def test_corpus_has_at_least_25_cases(corpus):
    """Acceptance: the declarative corpus carries >= 25 cases."""
    assert len(corpus) >= 25


def test_corpus_ids_unique_and_sorted(corpus):
    ids = [case.id for case in corpus]
    assert len(ids) == len(set(ids))
    assert ids == sorted(ids)


def test_every_case_states_an_expectation(corpus):
    """Each case either pins its outputs or declares the failure class."""
    for case in corpus:
        assert (case.expect.outputs is not None) or (case.expect.failure is not None), \
            f"case {case.id} has no expectation"


def test_corpus_covers_the_required_scenario_families(corpus):
    tags = {tag for case in corpus for tag in case.tags}
    for family in ("scatter", "subworkflow", "when", "expression", "stdin",
                   "stdout", "should-fail"):
        assert family in tags, f"no corpus case tagged {family!r}"


def test_tier1_subset_is_nonempty_and_strict(corpus, tier1_corpus):
    assert 0 < len(tier1_corpus) < len(corpus)
    assert all(case.tier1 for case in tier1_corpus)


def test_loading_is_deterministic(corpus):
    again = load_corpus()
    assert [case.id for case in again] == [case.id for case in corpus]


def test_overrides_fall_back_to_default_expectation(corpus):
    case = next(case for case in corpus if case.id == "wf_scattered_subworkflow")
    assert case.expectation_for("reference").failure is None
    assert case.expectation_for("parsl").failure == "unsupported"
    assert case.expectation_for("parsl-workflow").failure == "unsupported"


def test_materialize_writes_content_files(tmp_path):
    job = {
        "single": {"class": "File", "basename": "a.txt", "contents": "alpha\n"},
        "many": [{"class": "File", "basename": "b.txt", "contents": "beta\n"}],
        "plain": "untouched",
    }
    resolved = materialize_job_order(job, tmp_path / "inputs")
    assert (tmp_path / "inputs" / "a.txt").read_text() == "alpha\n"
    assert (tmp_path / "inputs" / "b.txt").read_text() == "beta\n"
    assert resolved["single"]["path"].endswith("a.txt")
    assert "contents" not in resolved["single"]
    assert resolved["plain"] == "untouched"
    # The original job order is not mutated.
    assert "contents" in job["single"]


def test_unknown_case_keys_are_rejected(tmp_path):
    path = tmp_path / "bad.yaml"
    dump_yaml({"process": {"class": "CommandLineTool"}, "jobs": {}}, path)
    with pytest.raises(ValidationException, match="unknown keys"):
        load_case(path)


def test_unknown_failure_class_is_rejected(tmp_path):
    path = tmp_path / "bad.yaml"
    dump_yaml({"process": {"class": "CommandLineTool"},
               "expect": {"failure": "spontaneous"}}, path)
    with pytest.raises(ValidationException, match="failure class"):
        load_case(path)


def test_missing_process_file_is_rejected(tmp_path):
    path = tmp_path / "bad.yaml"
    dump_yaml({"process": "no/such/file.cwl"}, path)
    with pytest.raises(ValidationException, match="does not exist"):
        load_case(path)


def test_duplicate_ids_are_rejected(tmp_path):
    for name in ("one.yaml", "two.yaml"):
        dump_yaml({"id": "same", "process": {"class": "CommandLineTool"},
                   "expect": {"failure": "invalid"}}, tmp_path / name)
    with pytest.raises(ValidationException, match="duplicate"):
        load_corpus(tmp_path)
