"""Session-scoped fixtures for the conformance tier.

The corpus and the generated suite are immutable inputs, loaded/generated
once per session; differential runs get their own tmp dirs per test.
"""

from __future__ import annotations

import pytest

from repro.testing.corpus import load_corpus
from repro.testing.generator import generate_suite

#: The generated-suite seed the whole tier pins (the flakiness guard: every
#: test derives its workflows from this constant, never from time or hash
#: ordering).
TIER_SEED = 1000


@pytest.fixture(scope="session")
def corpus():
    """Every corpus case, loaded once."""
    return load_corpus()


@pytest.fixture(scope="session")
def tier1_corpus():
    """The fast tier-1 subset."""
    return load_corpus(tier1_only=True)


@pytest.fixture(scope="session")
def generated_suite():
    """A small deterministic generated suite shared by the tier."""
    return generate_suite(4, base_seed=TIER_SEED)
