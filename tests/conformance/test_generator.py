"""The property-based workflow generator: determinism, bounds, validity."""

from __future__ import annotations

import pytest

from repro.cwl.graph import build_graph
from repro.cwl.loader import load_document
from repro.cwl.validate import ensure_valid
from repro.testing.generator import (
    DEFAULT_SUITE_SIZE,
    GeneratedWorkflow,
    generate_suite,
    generate_workflow,
)

from tests.conformance.conftest import TIER_SEED


@pytest.mark.parametrize("seed", [TIER_SEED + offset for offset in range(6)])
def test_same_seed_same_workflow(seed):
    """The flakiness guard: byte-identical documents and job orders per seed."""
    first = generate_workflow(seed)
    second = generate_workflow(seed)
    assert first.doc == second.doc
    assert first.job == second.job
    assert first.features == second.features


def test_different_seeds_differ():
    suite = generate_suite(10, base_seed=TIER_SEED)
    docs = [workflow.doc for workflow in suite]
    assert any(docs[0] != other for other in docs[1:]), \
        "ten seeds produced ten identical workflows"


def test_generated_documents_validate_and_build_graphs(generated_suite):
    for workflow in generated_suite:
        process = load_document(dict(workflow.doc))
        ensure_valid(process)
        graph = build_graph(process)
        assert graph.nodes


def test_every_step_has_a_declared_source(generated_suite):
    """Step inputs only reference workflow inputs or upstream step outputs."""
    for workflow in generated_suite:
        step_outputs = {f"{name}/{out}"
                        for name, step in workflow.doc["steps"].items()
                        for out in step["out"]}
        for name, step in workflow.doc["steps"].items():
            for source in step["in"].values():
                if "/" in str(source):
                    assert source in step_outputs, (workflow.id, name, source)
                else:
                    assert source in workflow.doc["inputs"], (workflow.id, name, source)


def test_width_and_depth_are_bounded():
    for seed in range(TIER_SEED, TIER_SEED + 30):
        workflow = generate_workflow(seed, max_width=3, max_depth=3)
        # sources <= 3, scatter <= 1, subworkflow <= 1, cats <= 2, guard <= 1
        assert len(workflow.doc["steps"]) <= 8
        for step in workflow.doc["steps"].values():
            run = step["run"]
            if run.get("class") == "Workflow":
                # Nesting stops at one level.
                assert all(child["run"].get("class") == "CommandLineTool"
                           for child in run["steps"].values())


def test_job_order_satisfies_workflow_inputs(generated_suite):
    for workflow in generated_suite:
        assert set(workflow.job) == set(workflow.doc["inputs"])


def test_suite_size_and_ids():
    suite = generate_suite(DEFAULT_SUITE_SIZE)
    assert len(suite) >= 20  # acceptance: >= 20 generated workflows per CI run
    ids = [workflow.id for workflow in suite]
    assert len(set(ids)) == len(ids)
    assert all(isinstance(workflow, GeneratedWorkflow) for workflow in suite)


def test_bounds_are_validated():
    with pytest.raises(ValueError):
        generate_workflow(1, max_width=0)
    with pytest.raises(ValueError):
        generate_workflow(1, max_depth=0)


# ------------------------------------------------------------- layered DAGs

def test_layered_dag_structure_is_deterministic_and_scales_to_10k():
    from repro.testing.generator import layered_dag_structure

    structure = layered_dag_structure(10_000, seed=3)
    assert structure == layered_dag_structure(10_000, seed=3)
    assert len(structure) == 10_000
    names = [name for name, _deps in structure]
    assert len(set(names)) == 10_000
    produced = set()
    fanins = []
    for name, deps in structure:
        assert all(dep in produced for dep in deps), "dep from a later layer"
        produced.add(name)
        fanins.append(len(deps))
    assert max(fanins) <= 2
    assert any(fanins), "no edges at all"


def test_layered_dag_document_validates_and_builds_a_graph():
    from repro.testing.generator import generate_layered_dag

    case = generate_layered_dag(300, seed=5)
    assert case.doc == generate_layered_dag(300, seed=5).doc
    assert len(case.doc["steps"]) == 300
    workflow = load_document(case.doc)
    ensure_valid(workflow)
    graph = build_graph(workflow)
    # 300 steps plus the ingress/egress plumbing nodes.
    step_nodes = [n for n in graph.nodes.values() if n.kind == "step"]
    assert len(step_nodes) == 300
